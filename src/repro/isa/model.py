"""The assembled POWER ISA model.

``IsaModel`` plays the role of the paper's ``context``: the complete ISA
definition.  At construction it parses (and sanity-checks) the Sail
pseudocode of every instruction specification, builds the decode table, and
wires up the interpreter and the exhaustive footprint analysis.  Decoded
instructions and their initial interpreter states are cached per opcode so
that AST node identity is stable across the whole exploration (which the
interpreter-state hashing relies on).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..sail.analysis import Footprint, FootprintAnalysis
from ..sail.ast import FunctionClause
from ..sail.compile import CompiledBackend, CompiledState
from ..sail.interp import Interp, InterpState, initial_state, resume
from ..sail.parser import parse_execute_clause
from .defs import ALL_SPECS
from .registers import Registry, power_registry
from .spec import DecodeTable, InstructionSpec

#: Environment switch for the Sail execution backend, read when a model is
#: constructed without an explicit ``sail_backend`` (the CLI/bench paths).
SAIL_BACKEND_ENV = "PPCMEM2_SAIL_BACKEND"

#: Default execution backend: the ahead-of-time compiled bodies
#: (``sail/compile.py``); ``"interp"`` selects the reference CEK
#: interpreter.  Both produce bit-identical outcome sequences (pinned by
#: ``tests/test_sail_compile.py``).
DEFAULT_SAIL_BACKEND = "compiled"

_SAIL_BACKENDS = ("compiled", "interp")


def resolve_sail_backend(explicit: Optional[str] = None) -> str:
    """The backend to use: explicit argument, else environment, else default."""
    backend = explicit or os.environ.get(SAIL_BACKEND_ENV) or DEFAULT_SAIL_BACKEND
    if backend not in _SAIL_BACKENDS:
        raise ValueError(
            f"unknown sail backend {backend!r} (choose from {_SAIL_BACKENDS})"
        )
    return backend


class DecodeError(Exception):
    """An opcode that does not correspond to any known instruction."""


@dataclass(frozen=True)
class DecodedInstruction:
    """One decoded instruction: spec + concrete field values.

    Corresponds to an element of the paper's instruction AST type; the
    ``fields`` are the operand field values extracted from the opcode.
    """

    spec: InstructionSpec
    word: int
    fields: Tuple[Tuple[str, int], ...]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    def field(self, name: str) -> int:
        for key, value in self.fields:
            if key == name:
                return value
        raise KeyError(name)

    @property
    def is_invalid_form(self) -> bool:
        return self.spec.is_invalid_form(dict(self.fields))

    def __str__(self) -> str:
        operands = " ".join(f"{k}={v}" for k, v in self.fields)
        return f"{self.mnemonic} {operands}".strip()


class IsaModel:
    """The complete ISA definition (decode + execute + analysis)."""

    def __init__(self, specs=None, sail_backend: Optional[str] = None):
        self.registry: Registry = power_registry()
        self._view = self.registry.parser_view()
        self.interp = Interp(self.registry)
        self.analysis = FootprintAnalysis(self.interp)
        self.sail_backend = resolve_sail_backend(sail_backend)
        self.compiled = CompiledBackend(self.registry, self.interp)
        self.table = DecodeTable(specs if specs is not None else ALL_SPECS)
        self._clauses: Dict[str, FunctionClause] = {}
        self._decode_cache: Dict[int, Optional[DecodedInstruction]] = {}
        self._initial_cache: Dict[int, object] = {}
        self._outcome_cache: Dict[object, object] = {}
        self._resume_cache: Dict[Tuple, object] = {}
        for spec in self.table.all_specs():
            clause = parse_execute_clause(spec.pseudocode, self._view)
            if clause.ast_name != spec.name:
                raise ValueError(
                    f"pseudocode clause {clause.ast_name} does not match "
                    f"spec {spec.name}"
                )
            field_names = {f.name for f in spec.operand_fields()}
            unknown = set(clause.fields) - field_names
            if unknown:
                raise ValueError(
                    f"{spec.name}: clause fields {sorted(unknown)} not in encoding"
                )
            self._clauses[spec.name] = clause

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------

    def decode(self, word: int) -> Optional[DecodedInstruction]:
        """Decode a 32-bit opcode; None when unrecognised."""
        if word in self._decode_cache:
            return self._decode_cache[word]
        spec = self.table.lookup(word)
        decoded = None
        if spec is not None:
            decoded = DecodedInstruction(
                spec, word, tuple(sorted(spec.decode_fields(word).items()))
            )
        self._decode_cache[word] = decoded
        return decoded

    def decode_or_raise(self, word: int) -> DecodedInstruction:
        decoded = self.decode(word)
        if decoded is None:
            raise DecodeError(f"cannot decode opcode 0x{word:08x}")
        return decoded

    # ------------------------------------------------------------------
    # Instruction states
    # ------------------------------------------------------------------

    def initial_state(self, instruction: DecodedInstruction):
        """The Sail instruction state at the start of execution.

        Cached per opcode so instances share AST and initial state; restarts
        (section 5) reset an instance to exactly this state.  The state's
        concrete type depends on ``sail_backend``: a ``CompiledState`` for
        the compiled backend, an ``InterpState`` for the interpreter -- both
        speak the same resumable outcome protocol through
        ``run_to_outcome`` / ``resume``.
        """
        cached = self._initial_cache.get(instruction.word)
        if cached is not None:
            return cached
        clause = self._clauses[instruction.name]
        fields = instruction.spec.field_bits(instruction.word)
        if self.sail_backend == "compiled":
            state = self.compiled.initial_state(
                instruction.spec, clause, instruction.word, fields
            )
        else:
            state = initial_state(clause.body, fields)
        self._initial_cache[instruction.word] = state
        return state

    def run_to_outcome(self, state):
        """Run ``state`` to its next externally visible outcome, memoised.

        ``run_to_outcome`` is a pure function of an immutable state, and the
        exhaustive explorer re-executes identical instruction states along
        every interleaving, so the concurrency model's deterministic Sail
        stepping is served from this (bounded) cache.  Dispatches on the
        state's type, so both backends' states can flow through one model.
        """
        cache = self._outcome_cache
        outcome = cache.get(state)
        if outcome is None:
            if len(cache) >= 65536:
                cache.clear()
            if type(state) is CompiledState:
                outcome = self.compiled.run_to_outcome(state)
            else:
                outcome = self.interp.run_to_outcome(state)
            cache[state] = outcome
        return outcome

    def resume(self, state, value):
        """Resume a pending instruction state with a value, memoised.

        ``resume`` is pure, and the explorer resumes identical pending
        states with identical values along every interleaving; returning
        the *same* state object each time also makes the downstream
        ``run_to_outcome`` memo and state-key hashing hit by identity.
        """
        cache = self._resume_cache
        key = (state, value)
        resumed = cache.get(key)
        if resumed is None:
            if len(cache) >= 65536:
                cache.clear()
            if type(state) is CompiledState:
                resumed = self.compiled.resume(state, value)
            else:
                resumed = resume(state, value)
            cache[key] = resumed
        return resumed

    # ------------------------------------------------------------------
    # Footprints
    # ------------------------------------------------------------------

    def interp_state(self, state) -> InterpState:
        """The reference-interpreter equivalent of an instruction state.

        Exhaustive lifted exploration (``fork_on_lifted`` / ``_UnknownInt``)
        lives in the interpreter only; callers that drive it directly
        convert compiled states here first.  Interpreter states pass
        through unchanged.
        """
        if type(state) is CompiledState:
            return self.compiled.to_interp_state(state)
        return state

    def footprint(self, state, cia: Optional[int] = None) -> Footprint:
        """Exhaustive analysis of a (possibly partially executed) state.

        Always runs on the reference interpreter (the ``fork_on_lifted`` /
        ``_UnknownInt`` machinery lives there); compiled states are
        converted by replaying their recorded values first.
        """
        if type(state) is CompiledState:
            state = self.compiled.to_interp_state(state)
        return self.analysis.analyze(state, cia)

    def static_footprint(
        self, instruction: DecodedInstruction, cia: Optional[int] = None
    ) -> Footprint:
        return self.footprint(self.initial_state(instruction), cia)


_DEFAULT_MODEL: Optional[IsaModel] = None


def default_model() -> IsaModel:
    """A process-wide shared ISA model (parsing the corpus takes a moment)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = IsaModel()
    return _DEFAULT_MODEL
