"""Whole-corpus invariants of the instruction pseudocode.

Section 2.1.3 of the paper: after rewriting self-reads through local
variables, "for most instructions the register-read and register-write
footprints can be calculated statically ... and [the instruction] will
dynamically read and write exactly once to each element of those".  These
tests enforce the discipline mechanically over every instruction, with
worst-case register aliasing (all operand registers equal) -- the scenario
that exposed a real read-after-own-write bug in the divide family's
overflow checks during development.
"""

import pytest

from repro.isa.model import default_model
from repro.sail.interp import LiftedBranch, resume
from repro.sail.outcomes import (
    Barrier,
    Done,
    ReadMem,
    ReadReg,
    WriteMem,
    WriteReg,
)
from repro.sail.values import Bits, FALSE, TRUE

MODEL = default_model()
PSEUDO = ("CIA", "NIA")


class PathExplosion(Exception):
    """The aliased walk forked too much (e.g. popcntb's 64 bit tests)."""


def _aliased_instruction(spec):
    """Encode the instruction with register operands as equal as validity
    allows (worst-case aliasing, falling back for invalid update forms)."""
    fields = {}
    for field in spec.operand_fields():
        fields[field.name] = 1 if field.name in ("RT", "RA", "RB", "RS") else 0
    if "SPR" in fields:
        fields["SPR"] = (1 & 0x1F) << 5  # XER
    if "FXM" in fields:
        fields["FXM"] = 1
    if spec.is_invalid_form(fields) and "RT" in fields:
        fields["RT"] = 2  # update-form loads forbid RA == RT
    if spec.is_invalid_form(fields):
        return None
    word = spec.encode(fields)
    decoded = MODEL.decode(word)
    if decoded is None or decoded.spec.name != spec.name:
        return None
    return decoded


def _walk_paths(instruction):
    """Yield (reads, writes) slice traces for every execution path.

    The walk drives the interpreter's lifted-forking mode directly, so it
    starts from the interpreter-equivalent state whatever the model's
    configured execution backend.
    """
    stack = [(MODEL.interp_state(MODEL.initial_state(instruction)), (), ())]
    steps = 0
    while stack:
        state, reads, writes = stack.pop()
        steps += 1
        if steps >= 5000:
            raise PathExplosion(instruction.name)
        try:
            outcome = MODEL.interp.run_to_outcome(state, fork_on_lifted=True)
        except LiftedBranch as fork:
            stack.extend((s, reads, writes) for s in fork.states)
            continue
        if isinstance(outcome, Done):
            yield reads, writes
        elif isinstance(outcome, ReadReg):
            record = reads
            if outcome.slice.reg not in PSEUDO:
                record = reads + (outcome.slice,)
            stack.append(
                (
                    resume(outcome.state, Bits.unknown(outcome.slice.width)),
                    record,
                    writes,
                )
            )
        elif isinstance(outcome, WriteReg):
            record = writes
            if outcome.slice.reg not in PSEUDO:
                record = writes + (outcome.slice,)
            stack.append((resume(outcome.state, None), reads, record))
        elif isinstance(outcome, ReadMem):
            stack.append(
                (
                    resume(outcome.state, Bits.unknown(8 * outcome.size)),
                    reads,
                    writes,
                )
            )
        elif isinstance(outcome, WriteMem):
            if outcome.kind == "conditional":
                stack.append((resume(outcome.state, TRUE), reads, writes))
                stack.append((resume(outcome.state, FALSE), reads, writes))
            else:
                stack.append((resume(outcome.state, None), reads, writes))
        elif isinstance(outcome, Barrier):
            stack.append((resume(outcome.state, None), reads, writes))
        else:  # pragma: no cover
            raise AssertionError(f"unexpected outcome {outcome!r}")


SPEC_NAMES = sorted(s.name for s in MODEL.table.all_specs())


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_no_read_after_own_write(spec_name):
    """No path reads a register slice the instruction already wrote."""
    instruction = _aliased_instruction(MODEL.table.by_name(spec_name))
    if instruction is None:
        pytest.skip("aliased operands not encodable")
    try:
        for _trace in _paths_with_prefix_check(instruction):
            pass  # assertions inside the generator
    except PathExplosion:
        pytest.skip("per-bit forking explodes the aliased walk (popcntb)")


def _paths_with_prefix_check(instruction):
    stack = [(MODEL.interp_state(MODEL.initial_state(instruction)), ())]
    steps = 0
    while stack:
        state, written = stack.pop()
        steps += 1
        if steps >= 5000:
            raise PathExplosion(instruction.name)
        try:
            outcome = MODEL.interp.run_to_outcome(state, fork_on_lifted=True)
        except LiftedBranch as fork:
            stack.extend((s, written) for s in fork.states)
            continue
        if isinstance(outcome, Done):
            yield written
        elif isinstance(outcome, ReadReg):
            if outcome.slice.reg not in PSEUDO:
                overlapping = [w for w in written if outcome.slice.overlaps(w)]
                assert not overlapping, (
                    f"{instruction.name} reads {outcome.slice} after "
                    f"writing {overlapping}"
                )
            stack.append(
                (resume(outcome.state, Bits.unknown(outcome.slice.width)),
                 written)
            )
        elif isinstance(outcome, WriteReg):
            new = written
            if outcome.slice.reg not in PSEUDO:
                new = written + (outcome.slice,)
            stack.append((resume(outcome.state, None), new))
        elif isinstance(outcome, ReadMem):
            stack.append(
                (resume(outcome.state, Bits.unknown(8 * outcome.size)),
                 written)
            )
        elif isinstance(outcome, WriteMem):
            if outcome.kind == "conditional":
                stack.append((resume(outcome.state, TRUE), written))
                stack.append((resume(outcome.state, FALSE), written))
            else:
                stack.append((resume(outcome.state, None), written))
        elif isinstance(outcome, Barrier):
            stack.append((resume(outcome.state, None), written))


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_writes_at_most_once_per_slice(spec_name):
    """On every path, each register slice is written at most once."""
    instruction = _aliased_instruction(MODEL.table.by_name(spec_name))
    if instruction is None:
        pytest.skip("aliased operands not encodable")
    try:
        paths = list(_walk_paths(instruction))
    except PathExplosion:
        pytest.skip("per-bit forking explodes the aliased walk (popcntb)")
    for _reads, writes in paths:
        for i, a in enumerate(writes):
            for b in writes[i + 1 :]:
                assert not a.overlaps(b), (
                    f"{spec_name}: writes {a} and {b} overlap on one path"
                )


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_static_footprint_covers_dynamic(spec_name):
    """Every dynamic read/write slice is inside the static footprint."""
    instruction = _aliased_instruction(MODEL.table.by_name(spec_name))
    if instruction is None:
        pytest.skip("aliased operands not encodable")
    try:
        static = MODEL.static_footprint(instruction, cia=0x1000)
        paths = list(_walk_paths(instruction))
    except PathExplosion:
        pytest.skip("per-bit forking explodes the aliased walk (popcntb)")
    for reads, writes in paths:
        for read in reads:
            assert any(s.contains(read) or s.overlaps(read)
                       for s in static.regs_in), (
                f"{spec_name}: dynamic read {read} outside static regs_in"
            )
        for write in writes:
            assert any(s.contains(write) or s.overlaps(write)
                       for s in static.regs_out), (
                f"{spec_name}: dynamic write {write} outside static regs_out"
            )
