"""Memoisation-key support for the fast state engine.

The exhaustive explorer deduplicates states through ``SystemState.key()``,
which used to rebuild (and re-hash) a large nested tuple on every call.
``CachedKey`` wraps a key tuple together with its precomputed hash so that

  * hashing a composite key touches only the cached hashes of its parts
    (instances, storage) instead of re-walking the whole structure, and
  * equality checks can short-circuit on object identity, which COW cloning
    makes common: an instance untouched since its last mutation shares its
    key object with every descendant state.

``intern_key`` additionally interns the keys of *finished* instruction
instances -- immutable from then on and heavily shared between converging
interleavings -- so that equal keys reached along different paths compare
by identity as well.
"""

from __future__ import annotations

from typing import Dict, Tuple


class CachedKey:
    """An immutable key value paired with its precomputed hash."""

    __slots__ = ("value", "cached_hash")

    def __init__(self, value):
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "cached_hash", hash(value))

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("CachedKey is immutable")

    def __hash__(self) -> int:
        return self.cached_hash

    def __eq__(self, other):
        if self is other:
            return True
        if isinstance(other, CachedKey):
            return (
                self.cached_hash == other.cached_hash
                and self.value == other.value
            )
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachedKey({self.value!r})"


def orbit_representative(candidates) -> Tuple["CachedKey", int]:
    """The sorted orbit representative of a list of encodings.

    ``candidates`` holds one structural encoding of a state per group
    element (see ``symmetry.CanonicalKeys``); the representative is the
    minimum, wrapped as a ``CachedKey``, plus the index of the element
    that realised it.  Encodings are type-stable nested tuples so plain
    tuple comparison works; a defensive fallback orders by ``repr`` if
    an exotic value ever slips in (still a total, deterministic order,
    so still a sound canonicalisation).
    """
    best = 0
    try:
        for index in range(1, len(candidates)):
            if candidates[index] < candidates[best]:
                best = index
    except TypeError:  # pragma: no cover - defensive
        best = min(range(len(candidates)), key=lambda i: repr(candidates[i]))
    return CachedKey(candidates[best]), best


#: Bounded intern table: CachedKey -> the canonical (first-seen) CachedKey.
#: Keyed by the ``CachedKey`` itself rather than the raw tuple so the probe
#: reuses the hash computed at construction instead of re-walking the value.
_INTERN_LIMIT = 1 << 15
_interned: Dict[CachedKey, CachedKey] = {}


def intern_key(value) -> CachedKey:
    """Return a canonical ``CachedKey`` for ``value`` (bounded intern table)."""
    key = CachedKey(value)
    found = _interned.get(key)
    if found is not None:
        return found
    if len(_interned) >= _INTERN_LIMIT:
        _interned.clear()
    _interned[key] = key
    return key
