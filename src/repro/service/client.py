"""HTTP client for the ``ppcmem2 serve`` daemon.

``ServiceClient`` wraps the small JSON protocol (stdlib ``urllib``
only), and is what ``ppcmem2 client`` drives so the familiar CLI verbs
can run against a warm daemon instead of paying cold-start exploration:

    ppcmem2 serve --port 8765 --cache verdicts.sqlite &
    ppcmem2 client run TEST.litmus        # synchronous, cache-backed
    ppcmem2 client submit suite/*.litmus --wait
    ppcmem2 client stats
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .daemon import DEFAULT_HOST, DEFAULT_PORT


class ServiceError(RuntimeError):
    """A non-2xx response from the daemon (carries the decoded body)."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        super().__init__(
            f"service error {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload


class ServiceClient:
    def __init__(
        self,
        url: Optional[str] = None,
        timeout: float = 600.0,
    ):
        self.base_url = (url or f"http://{DEFAULT_HOST}:{DEFAULT_PORT}").rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, json.JSONDecodeError):
                body = {"error": str(exc)}
            raise ServiceError(exc.code, body) from None

    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def submit(
        self,
        tests: Sequence[Tuple[Optional[str], str]] = (),
        options: Optional[Dict[str, Any]] = None,
        gen: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a batch of (name, source) tests and/or a generator spec."""
        body: Dict[str, Any] = {
            "tests": [
                {"name": name, "source": source} for name, source in tests
            ]
        }
        if options:
            body["options"] = options
        if gen:
            body["gen"] = gen
        return self._request("POST", "/v1/jobs", body)

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job finishes; returns its results payload."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] == "done":
                return self.results(job_id)
            if status["state"] == "failed":
                raise ServiceError(500, status)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def query(
        self,
        source: str,
        name: Optional[str] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run one test synchronously (microseconds on a cache hit)."""
        body: Dict[str, Any] = {"source": source}
        if name:
            body["name"] = name
        if options:
            body["options"] = options
        return self._request("POST", "/v1/query", body)


def format_verdict(payload: Dict[str, Any]) -> List[str]:
    """Render one verdict payload in the ``ppcmem2 run`` output shape."""
    stats = payload.get("stats", {})
    lines = [
        f"Test {payload['name']}: {payload['status']}"
        + ("  [cached]" if payload.get("cached") else ""),
        f"States: {stats.get('states_visited', 0)}  "
        f"final: {stats.get('final_states', 0)}  "
        f"time: {stats.get('seconds', 0.0):.2f}s",
    ]
    for text, satisfied in payload.get("outcome_lines", []):
        marker = "*" if satisfied else " "
        lines.append(f"  {marker} {text}")
    witnessed = payload.get("witnessed")
    lines.append(
        f"Condition ({payload.get('quantifier')}): "
        f"{'witnessed' if witnessed else 'never satisfied'}"
    )
    if payload.get("error"):
        lines.append(f"  !! {payload['error']}")
    return lines
