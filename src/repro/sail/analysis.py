"""Exhaustive analysis of (partially executed) instruction states.

Section 2.2 of the paper: "To calculate the potential register and memory
footprints of an instruction (from either its initial state or a partially
executed state) we can simply run the interpreter exhaustively, feeding in a
distinguished unknown value to the continuations for any reads".

The thread model uses this for:

  * static ``regs_in`` / ``regs_out`` footprints at fetch time (needed to
    decide when register reads must block, section 2.1.2);
  * possible next-instruction addresses (NIA values) for speculative fetch;
  * dynamic re-calculation of the potential memory footprint of an
    instruction in progress, after some but not all of its register reads
    are resolved (section 2.1.6 -- this is what lets ``LB+datas+WW`` go
    ahead while blocking ``LB+addrs+WW``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from .interp import Interp, InterpState, LiftedBranch, resume
from .outcomes import (
    Barrier,
    Done,
    ReadMem,
    ReadReg,
    RegSlice,
    WriteMem,
    WriteReg,
)
from .values import Bits, FALSE, TRUE

#: Pseudo-registers that never contribute to footprints (section 2.1.4).
_PSEUDO = ("CIA", "NIA")

#: Cap on distinct analysis paths; instructions in our corpus are small, so
#: hitting this indicates a modelling bug rather than a big instruction.
_MAX_PATHS = 4096


@dataclass(frozen=True)
class Footprint:
    """Everything the thread model needs to know about an instruction's future.

    Memory footprints are sets of (address, size) pairs; ``*_undetermined``
    records that some path's address involved unresolved bits, in which case
    the instruction "might access anything" until more reads resolve.
    """

    regs_in: FrozenSet[RegSlice]
    regs_out: FrozenSet[RegSlice]
    mem_reads: FrozenSet[Tuple[int, int]]
    mem_reads_undetermined: bool
    mem_writes: FrozenSet[Tuple[int, int]]
    mem_writes_undetermined: bool
    barriers: FrozenSet[str]
    nias: FrozenSet[int]
    nia_fallthrough: bool
    nia_indirect: bool
    reads_reserve: bool
    writes_conditional: bool

    @property
    def is_load(self) -> bool:
        return bool(self.mem_reads) or self.mem_reads_undetermined

    @property
    def is_store(self) -> bool:
        return bool(self.mem_writes) or self.mem_writes_undetermined

    @property
    def is_memory_access(self) -> bool:
        return self.is_load or self.is_store

    @property
    def memory_determined(self) -> bool:
        """True when every possible memory access has a concrete footprint."""
        return not (self.mem_reads_undetermined or self.mem_writes_undetermined)

    def may_write_reg(self, target: RegSlice) -> bool:
        return any(out.overlaps(target) for out in self.regs_out)

    def may_touch_memory(self, addr: int, size: int) -> bool:
        """Could any possible access of this instruction overlap [addr, addr+size)?"""
        if self.mem_reads_undetermined or self.mem_writes_undetermined:
            return True
        for base, length in self.mem_reads | self.mem_writes:
            if base < addr + size and addr < base + length:
                return True
        return False

    def may_write_memory(self, addr: int, size: int) -> bool:
        if self.mem_writes_undetermined:
            return True
        return any(
            base < addr + size and addr < base + length
            for base, length in self.mem_writes
        )


class FootprintAnalysis:
    """Exhaustive-interpretation analysis with per-state memoisation."""

    def __init__(self, interp: Interp):
        self._interp = interp
        self._cache = {}

    def analyze(self, state: InterpState, cia: Optional[int] = None) -> Footprint:
        """Explore all executions from ``state``, summarising the footprint."""
        key = (state, cia)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        footprint = self._run(state, cia)
        self._cache[key] = footprint
        return footprint

    def _run(self, state: InterpState, cia: Optional[int]) -> Footprint:
        regs_in = set()
        regs_out = set()
        mem_reads = set()
        mem_writes = set()
        barriers = set()
        nias = set()
        reads_undet = writes_undet = False
        nia_fallthrough = nia_indirect = False
        reads_reserve = writes_conditional = False

        pending = [(state, False)]  # (state, wrote_nia_on_this_path)
        paths = 0
        while pending:
            current, wrote_nia = pending.pop()
            paths += 1
            if paths > _MAX_PATHS:
                raise RuntimeError("footprint analysis path explosion")
            try:
                outcome = self._interp.run_to_outcome(current, fork_on_lifted=True)
            except LiftedBranch as fork:
                pending.extend((s, wrote_nia) for s in fork.states)
                continue
            if isinstance(outcome, Done):
                if not wrote_nia:
                    nia_fallthrough = True
                continue
            if isinstance(outcome, ReadReg):
                reg_slice = outcome.slice
                if reg_slice.reg == "CIA" and cia is not None:
                    value = Bits.from_int(cia, 64)
                else:
                    if reg_slice.reg not in _PSEUDO:
                        regs_in.add(reg_slice)
                    value = Bits.unknown(reg_slice.width)
                pending.append((resume(outcome.state, value), wrote_nia))
                continue
            if isinstance(outcome, WriteReg):
                reg_slice = outcome.slice
                if reg_slice.reg == "NIA":
                    wrote_nia = True
                    if outcome.value.is_known:
                        nias.add(outcome.value.to_int())
                    else:
                        nia_indirect = True
                elif reg_slice.reg not in _PSEUDO:
                    regs_out.add(reg_slice)
                pending.append((resume(outcome.state, None), wrote_nia))
                continue
            if isinstance(outcome, ReadMem):
                if outcome.kind == "reserve":
                    reads_reserve = True
                if outcome.addr.is_known:
                    mem_reads.add((outcome.addr.to_int(), outcome.size))
                else:
                    reads_undet = True
                value = Bits.unknown(8 * outcome.size)
                pending.append((resume(outcome.state, value), wrote_nia))
                continue
            if isinstance(outcome, WriteMem):
                if outcome.kind == "conditional":
                    writes_conditional = True
                if outcome.addr.is_known:
                    mem_writes.add((outcome.addr.to_int(), outcome.size))
                else:
                    writes_undet = True
                if outcome.kind == "conditional":
                    # Explore both success and failure continuations.
                    pending.append((resume(outcome.state, TRUE), wrote_nia))
                    pending.append((resume(outcome.state, FALSE), wrote_nia))
                else:
                    pending.append((resume(outcome.state, None), wrote_nia))
                continue
            if isinstance(outcome, Barrier):
                barriers.add(outcome.kind)
                pending.append((resume(outcome.state, None), wrote_nia))
                continue
            raise RuntimeError(f"unexpected outcome {outcome!r}")

        return Footprint(
            regs_in=frozenset(regs_in),
            regs_out=frozenset(regs_out),
            mem_reads=frozenset(mem_reads),
            mem_reads_undetermined=reads_undet,
            mem_writes=frozenset(mem_writes),
            mem_writes_undetermined=writes_undet,
            barriers=frozenset(barriers),
            nias=frozenset(nias),
            nia_fallthrough=nia_fallthrough,
            nia_indirect=nia_indirect,
            reads_reserve=reads_reserve,
            writes_conditional=writes_conditional,
        )
