"""Regression tests for the fast state engine.

Covers the three layers of the exploration hot path:

  * determinism and key stability: exploring a test twice yields identical
    outcome sets and identical statistics, and states produced through
    copy-on-write cloning are ``key()``-identical to states produced
    through the eager deep-clone reference path;
  * the shared frontier bookkeeping: ``find_witness`` reports the same
    ``ExplorationStats`` accounting as ``explore``;
  * the parallel corpus runner: worker-sharded runs agree bit-for-bit with
    in-process runs.
"""

import pytest

from repro.concurrency.exhaustive import explore, find_witness, run_one
from repro.concurrency.thread import ModelError
from repro.isa.model import default_model
from repro.litmus.library import by_name
from repro.litmus.runner import build_system, run_corpus, run_litmus
from repro.tools.cli import main

DETERMINISM_TESTS = ["MP", "SB+syncs", "WRC+sync+addr"]


@pytest.fixture(scope="module")
def model():
    return default_model()


class TestExplorationDeterminism:
    @pytest.mark.parametrize("name", DETERMINISM_TESTS)
    def test_two_explorations_identical(self, model, name):
        test = by_name(name).parse()
        first = run_litmus(test, model)
        second = run_litmus(test, model)
        assert first.outcomes == second.outcomes
        assert (
            first.exploration.stats.states_visited
            == second.exploration.stats.states_visited
        )
        assert (
            first.exploration.stats.transitions_taken
            == second.exploration.stats.transitions_taken
        )
        assert first.status == second.status

    @pytest.mark.parametrize("name", DETERMINISM_TESTS)
    def test_cow_apply_matches_eager_clone(self, model, name):
        """COW successors are key()-identical to eagerly deep-cloned ones."""
        system, _addresses = build_system(by_name(name).parse(), model)
        frontier = [system]
        seen = {system.key()}
        checked = 0
        while frontier and checked < 25:
            state = frontier.pop()
            if state.is_final():
                continue
            parent_key = state.key()
            for transition in state.enumerate_transitions():
                cow = state.apply(transition)
                reference = state.clone_eager()
                reference._apply_in_place(transition)
                reference.eager_closure()
                assert cow.key() == reference.key(), (
                    f"{name}: COW and eager-clone apply diverge "
                    f"on {transition}"
                )
                # Applying a transition must not disturb the parent.
                assert state.key() == parent_key
                checked += 1
                if cow.key() not in seen:
                    seen.add(cow.key())
                    frontier.append(cow)
        assert checked > 0

    def test_clone_is_isolated(self, model):
        """Mutating a COW clone leaves the original state untouched."""
        system, _addresses = build_system(by_name("MP").parse(), model)
        key_before = system.key()
        transitions = system.enumerate_transitions()
        assert transitions
        successor = system.apply(transitions[0])
        assert system.key() == key_before
        assert successor.key() != key_before


class TestWitnessStats:
    def test_find_witness_reports_stats(self, model):
        system, _addresses = build_system(by_name("MP").parse(), model)

        def always(outcome):
            return True

        witness = find_witness(system, always)
        assert witness is not None
        trace, final = witness  # two-tuple unpacking is preserved
        assert final.is_final()
        assert witness.stats.states_visited > 0
        assert witness.stats.max_frontier > 0

    def test_unsatisfiable_search_visits_whole_graph(self, model):
        system, _addresses = build_system(by_name("MP").parse(), model)
        witness = find_witness(system, lambda outcome: False)
        assert witness is None


class TestRunOneDiagnostics:
    def test_step_budget_error_reports_steps_and_last_transition(self, model):
        system, _addresses = build_system(by_name("MP").parse(), model)
        with pytest.raises(ModelError) as excinfo:
            run_one(system, max_steps=0)
        message = str(excinfo.value)
        assert "0 steps" in message
        assert "last transition" in message


class TestParallelCorpusRunner:
    NAMES = ["CoRR", "MP", "SB", "LB"]

    def test_parallel_matches_serial(self, model):
        entries = [by_name(name) for name in self.NAMES]
        serial = {
            entry.name: run_litmus(entry.parse(), model) for entry in entries
        }
        report = run_corpus(entries, jobs=2)
        assert report.jobs == 2
        assert [r.name for r in report.results] == self.NAMES
        for result in report.results:
            reference = serial[result.name]
            assert result.status == reference.status
            assert result.outcomes == reference.outcomes
            assert (
                result.stats.states_visited
                == reference.exploration.stats.states_visited
            )

    def test_merged_stats_are_sums(self, model):
        entries = [by_name(name) for name in self.NAMES]
        report = run_corpus(entries, jobs=1)
        merged = report.merged_stats()
        assert merged.states_visited == sum(
            r.stats.states_visited for r in report.results
        )
        assert merged.transitions_taken == sum(
            r.stats.transitions_taken for r in report.results
        )
        assert merged.max_frontier == max(
            r.stats.max_frontier for r in report.results
        )

    def test_accepts_name_source_pairs(self, model):
        entry = by_name("MP")
        report = run_corpus([(entry.name, entry.source)], jobs=1)
        assert report.results[0].name == "MP"
        assert report.results[0].status == "Allowed"


class TestLitmusCli:
    def test_litmus_command_parallel(self, tmp_path, capsys):
        paths = []
        for name in ["MP", "CoRR"]:
            path = tmp_path / f"{name}.litmus"
            path.write_text(by_name(name).source)
            paths.append(str(path))
        assert main(["litmus", *paths, "--jobs", "2"]) == 0
        output = capsys.readouterr().out
        assert "MP" in output and "CoRR" in output
        assert "2 worker(s)" in output
        assert "Merged stats:" in output

    def test_corpus_jobs_flag_is_accepted(self, tmp_path, capsys):
        # Not the full corpus (slow); just check the flag parses and the
        # parallel path produces the same report format via `litmus`.
        path = tmp_path / "MP.litmus"
        path.write_text(by_name("MP").source)
        assert main(["litmus", str(path), "--jobs", "1"]) == 0
        output = capsys.readouterr().out
        assert "1 worker(s)" in output
