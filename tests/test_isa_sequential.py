"""Tests for the sequential executor and selected instruction semantics."""

import pytest

from repro.isa.assembler import Assembler
from repro.isa.model import default_model
from repro.isa.sequential import SequentialError, SequentialMachine
from repro.sail.values import Bits

MODEL = default_model()
ASM = Assembler(MODEL)


def run_program(lines, setup=None, base=0x10000, machine=None):
    machine = machine or SequentialMachine(MODEL)
    if setup:
        setup(machine)
    words, _ = ASM.assemble_program(lines, base)
    for i, word in enumerate(words):
        machine.memory.load_bytes(base + 4 * i, word.to_bytes(4, "big"))
    machine.run(base)
    return machine


class TestArithmetic:
    def test_addi_li_chain(self):
        machine = run_program(["li r1,100", "addi r2,r1,-1"])
        assert machine.gpr(2).to_int() == 99

    def test_add_record_sets_cr0_gt(self):
        machine = run_program(["li r1,1", "li r2,2", "add. r3,r1,r2"])
        assert machine.gpr(3).to_int() == 3
        assert machine.reg("CR").to_int() >> 28 == 0b0100  # GT

    def test_add_record_sets_cr0_lt(self):
        machine = run_program(["li r1,-5", "li r2,2", "add. r3,r1,r2"])
        assert machine.reg("CR").to_int() >> 28 == 0b1000  # LT

    def test_addc_carry(self):
        machine = run_program(
            ["li r1,-1", "li r2,1", "addc r3,r1,r2"]
        )
        assert machine.gpr(3).to_int() == 0
        assert machine.reg("XER").to_int() >> 29 & 1 == 1  # CA

    def test_adde_consumes_carry(self):
        machine = run_program(
            ["li r1,-1", "li r2,1", "addc r3,r1,r2", "li r4,0",
             "adde r5,r4,r4"]
        )
        assert machine.gpr(5).to_int() == 1

    def test_addo_overflow_sets_so_and_ov(self):
        # r1 = 0x7FFF...F (64-bit maxint); r1 + r1 overflows.
        machine = run_program(
            ["li r1,-1", "srdi r1,r1,1", "addo r3,r1,r1"]
        )
        xer = machine.reg("XER").to_int()
        assert xer >> 31 & 1 == 1  # SO
        assert xer >> 30 & 1 == 1  # OV

    def test_addo_no_overflow_clears_ov(self):
        machine = run_program(["li r1,1", "addo r3,r1,r1"])
        assert machine.reg("XER").to_int() >> 30 & 1 == 0

    def test_neg_minint(self):
        machine = run_program(["li r1,1", "sldi r1,r1,63", "nego r2,r1"])
        assert machine.gpr(2).to_int() == 1 << 63  # -minint == minint
        assert machine.reg("XER").to_int() >> 30 & 1 == 1  # OV

    def test_mullw_and_mulhw(self):
        machine = run_program(
            ["li r1,-2", "li r2,3", "mullw r3,r1,r2", "mulhw r4,r1,r2"]
        )
        assert machine.gpr(3).to_signed() == -6
        # mulhw: high word of -6 is 0xFFFFFFFF; top half of r4 is undef.
        low = machine.gpr(4).slice(32, 63)
        assert low.to_int() == 0xFFFFFFFF

    def test_divw(self):
        machine = run_program(["li r1,-7", "li r2,2", "divw r3,r1,r2"])
        assert machine.gpr(3).slice(32, 63).to_signed() == -3

    def test_divide_by_zero_result_is_undef(self):
        machine = run_program(["li r1,5", "li r2,0", "divw r3,r1,r2"])
        assert machine.gpr(3).has_undef


class TestLogicalAndRotates:
    def test_and_or_xor(self):
        machine = run_program(
            ["li r1,0b1100", "li r2,0b1010",
             "and r3,r1,r2", "or r4,r1,r2", "xor r5,r1,r2"]
        )
        assert machine.gpr(3).to_int() == 0b1000
        assert machine.gpr(4).to_int() == 0b1110
        assert machine.gpr(5).to_int() == 0b0110

    def test_xor_same_register_is_zero(self):
        machine = run_program(["li r1,0x1234", "xor r2,r1,r1"])
        assert machine.gpr(2) == Bits.zeros(64)

    def test_extsb(self):
        machine = run_program(["li r1,0x80", "extsb r2,r1"])
        assert machine.gpr(2).to_signed() == -128

    def test_cntlzw(self):
        machine = run_program(["li r1,1", "cntlzw r2,r1"])
        assert machine.gpr(2).to_int() == 31

    def test_rlwinm_mask(self):
        machine = run_program(["li r1,0xFF", "rlwinm r2,r1,4,24,27"])
        # rotate 0xFF left 4 -> 0xFF0; mask bits 24..27 -> 0xF0.
        assert machine.gpr(2).to_int() == 0xF0

    def test_sldi_srdi(self):
        machine = run_program(["li r1,1", "sldi r2,r1,40", "srdi r3,r2,8"])
        assert machine.gpr(2).to_int() == 1 << 40
        assert machine.gpr(3).to_int() == 1 << 32

    def test_srawi_carry(self):
        machine = run_program(["li r1,-5", "srawi r2,r1,1"])
        assert machine.gpr(2).to_signed() == -3
        assert machine.reg("XER").to_int() >> 29 & 1 == 1


class TestMemory:
    def test_store_load_roundtrip_all_sizes(self):
        machine = run_program(
            ["lis r1,2", "li r2,0x1234",
             "stb r2,0(r1)", "lbz r3,0(r1)",
             "sth r2,8(r1)", "lhz r4,8(r1)",
             "stw r2,16(r1)", "lwz r5,16(r1)",
             "std r2,24(r1)", "ld r6,24(r1)"]
        )
        assert machine.gpr(3).to_int() == 0x34
        assert machine.gpr(4).to_int() == 0x1234
        assert machine.gpr(5).to_int() == 0x1234
        assert machine.gpr(6).to_int() == 0x1234

    def test_update_form_writes_base(self):
        machine = run_program(
            ["lis r1,2", "li r2,0xAB", "stbu r2,4(r1)"]
        )
        assert machine.gpr(1).to_int() == 0x20004
        assert machine.memory.read(0x20004, 1).to_int() == 0xAB

    def test_byte_reversed_load(self):
        machine = run_program(
            ["lis r1,2", "lis r2,0x1122", "addi r2,r2,0x3344",
             "stw r2,0(r1)", "lwbrx r3,r0,r1"]
        )
        assert machine.gpr(3).to_int() == 0x44332211

    def test_big_endian_layout(self):
        machine = run_program(["lis r1,2", "li r2,0x0102", "sth r2,0(r1)"])
        assert machine.memory.read(0x20000, 1).to_int() == 0x01
        assert machine.memory.read(0x20001, 1).to_int() == 0x02


class TestBranches:
    def test_forward_branch_skips(self):
        machine = run_program(
            ["li r1,1", "b skip", "li r1,2", "skip:", "li r3,3"]
        )
        assert machine.gpr(1).to_int() == 1
        assert machine.gpr(3).to_int() == 3

    def test_conditional_taken_and_not(self):
        machine = run_program(
            ["li r1,5", "cmpwi r1,5", "beq eq", "li r2,0", "b out",
             "eq:", "li r2,1", "out:", "nop"]
        )
        assert machine.gpr(2).to_int() == 1

    def test_bdnz_loop(self):
        machine = run_program(
            ["li r1,4", "mtctr r1", "li r2,0",
             "loop:", "addi r2,r2,1", "bdnz loop"]
        )
        assert machine.gpr(2).to_int() == 4
        assert machine.reg("CTR").to_int() == 0

    def test_bl_sets_lr_and_blr_returns(self):
        machine = run_program(
            ["bl func", "li r3,1", "b end",
             "func:", "li r4,2", "blr",
             "end:", "nop"]
        )
        assert machine.gpr(3).to_int() == 1
        assert machine.gpr(4).to_int() == 2

    def test_bctr(self):
        machine = run_program(
            ["lis r1,1", "addi r1,r1,0x10", "mtctr r1", "bctr"],
            base=0x10000,
        )
        # Jumped to 0x10010, past the program: halted there.
        assert machine.cia == 0x10010


class TestAtomicsSequential:
    def test_lwarx_stwcx_success(self):
        machine = run_program(
            ["lis r1,2", "li r2,9", "lwarx r3,r0,r1", "stwcx. r2,r0,r1",
             "lwz r4,0(r1)", "mfcr r5"]
        )
        assert machine.gpr(4).to_int() == 9
        assert machine.gpr(5).to_int() >> 29 & 1 == 1  # CR0.EQ

    def test_stwcx_fails_without_reservation(self):
        machine = run_program(
            ["lis r1,2", "li r2,9", "stwcx. r2,r0,r1", "lwz r4,0(r1)"]
        )
        assert machine.gpr(4).to_int() == 0  # store not performed


class TestMachineInterface:
    def test_invalid_form_raises(self):
        machine = SequentialMachine(MODEL)
        # lwzu with RA == RT is an invalid form.
        word = ASM.assemble_instruction("lwzu r5,0(r5)")
        with pytest.raises(SequentialError):
            machine.execute(MODEL.decode_or_raise(word))

    def test_undecodable_word_raises(self):
        machine = SequentialMachine(MODEL)
        machine.memory.load_bytes(0x100, (0xFFFFFFFF).to_bytes(4, "big"))
        machine.cia = 0x100
        with pytest.raises(SequentialError):
            machine.step()

    def test_barrier_kinds_recorded(self):
        machine = run_program(["sync", "lwsync", "eieio", "isync"])
        assert machine.barriers_seen == ["sync", "lwsync", "eieio", "isync"]

    def test_mtspr_mfspr_roundtrip(self):
        machine = run_program(["li r1,0x77", "mtlr r1", "mflr r2"])
        assert machine.gpr(2).to_int() == 0x77
