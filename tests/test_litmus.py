"""Tests for the litmus parser, condition evaluation, and runner plumbing."""

import pytest

from repro.isa.model import default_model
from repro.litmus.library import by_name, corpus, families
from repro.litmus.parser import LitmusSyntaxError, parse_litmus
from repro.litmus.runner import build_system, run_litmus
from repro.litmus.test import (
    And,
    MemoryEquals,
    Not,
    Or,
    RegisterEquals,
    evaluate_condition,
)

MP_SOURCE = """
POWER MP
"simple message passing"
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
"""


class TestParser:
    def test_header(self):
        test = parse_litmus(MP_SOURCE)
        assert test.arch == "POWER"
        assert test.name == "MP"

    def test_init_registers(self):
        test = parse_litmus(MP_SOURCE)
        assert test.init_registers[0]["GPR7"] == 1
        assert test.init_registers[0]["GPR1"] == "x"  # symbolic address

    def test_init_memory(self):
        test = parse_litmus(MP_SOURCE)
        assert test.init_memory == {"x": 0, "y": 0}

    def test_programs_by_column(self):
        test = parse_litmus(MP_SOURCE)
        assert test.programs[0] == ["stw r7,0(r1)", "stw r8,0(r2)"]
        assert test.programs[1] == ["lwz r5,0(r2)", "lwz r4,0(r1)"]

    def test_condition_structure(self):
        test = parse_litmus(MP_SOURCE)
        assert test.quantifier == "exists"
        assert isinstance(test.condition, And)
        assert test.condition.left == RegisterEquals(1, "GPR5", 1)
        assert test.condition.right == RegisterEquals(1, "GPR4", 0)

    def test_memory_condition_forms(self):
        source = MP_SOURCE.replace(
            "exists (1:r5=1 /\\ 1:r4=0)", "exists ([x]=1 \\/ y=0)"
        )
        test = parse_litmus(source)
        assert isinstance(test.condition, Or)
        assert test.condition.left == MemoryEquals("x", 1)
        assert test.condition.right == MemoryEquals("y", 0)

    def test_negated_quantifier(self):
        source = MP_SOURCE.replace("exists", "~exists")
        assert parse_litmus(source).quantifier == "not exists"

    def test_negated_atom(self):
        source = MP_SOURCE.replace(
            "exists (1:r5=1 /\\ 1:r4=0)", "exists (~(1:r5=1))"
        )
        test = parse_litmus(source)
        assert isinstance(test.condition, Not)

    def test_doubleword_detection(self):
        source = MP_SOURCE.replace("stw", "std").replace("lwz", "ld")
        assert parse_litmus(source).doubleword
        assert not parse_litmus(MP_SOURCE).doubleword

    def test_locations(self):
        test = parse_litmus(MP_SOURCE)
        assert test.locations() == ["x", "y"]

    def test_missing_init_block_rejected(self):
        with pytest.raises(LitmusSyntaxError):
            parse_litmus("POWER broken\n P0;\n nop;\nexists (0:r1=0)")

    def test_ragged_code_table_rejected(self):
        bad = MP_SOURCE.replace("stw r8,0(r2) | lwz r4,0(r1) ;",
                                "stw r8,0(r2) ;")
        with pytest.raises(LitmusSyntaxError):
            parse_litmus(bad)


class TestConditionEvaluation:
    def test_register_match(self):
        condition = RegisterEquals(1, "GPR5", 1)
        assert evaluate_condition(condition, {(1, "GPR5"): 1}, {})
        assert not evaluate_condition(condition, {(1, "GPR5"): 2}, {})

    def test_undef_register_never_matches(self):
        condition = RegisterEquals(0, "GPR5", 0)
        assert not evaluate_condition(condition, {(0, "GPR5"): None}, {})

    def test_boolean_connectives(self):
        regs = {(0, "GPR1"): 1, (0, "GPR2"): 2}
        a = RegisterEquals(0, "GPR1", 1)
        b = RegisterEquals(0, "GPR2", 3)
        assert evaluate_condition(Or(a, b), regs, {})
        assert not evaluate_condition(And(a, b), regs, {})
        assert evaluate_condition(Not(b), regs, {})

    def test_memory_atom(self):
        condition = MemoryEquals("x", 2)
        assert evaluate_condition(condition, {}, {"x": 2})
        assert not evaluate_condition(condition, {}, {"x": 1})


class TestBuildSystem:
    def test_symbolic_addresses_assigned(self):
        test = parse_litmus(MP_SOURCE)
        system, addresses = build_system(test)
        assert set(addresses) == {"x", "y"}
        assert addresses["x"] != addresses["y"]
        # Registers initialised with the symbol's address.
        r1 = system.threads[0].initial_registers["GPR1"]
        assert r1.to_int() == addresses["x"]

    def test_programs_in_code_memory(self):
        test = parse_litmus(MP_SOURCE)
        system, _ = build_system(test)
        assert len(system.program_memory) == 4  # four instructions


class TestRunner:
    def test_mp_is_allowed(self):
        result = run_litmus(parse_litmus(MP_SOURCE))
        assert result.status == "Allowed"
        assert result.witnessed

    def test_outcome_table_marks_witnesses(self):
        result = run_litmus(parse_litmus(MP_SOURCE))
        marked = [text for text, hit in result.outcome_table() if hit]
        assert any("1:r4=0" in text and "1:r5=1" in text for text in marked)

    def test_forbidden_status(self):
        entry = by_name("MP+syncs")
        result = run_litmus(entry.parse())
        assert result.status == "Forbidden"
        assert not result.witnessed


class TestLibrary:
    def test_corpus_is_nonempty_and_parses(self):
        entries = corpus()
        assert len(entries) >= 40
        for entry in entries:
            test = entry.parse()
            assert test.name == entry.name
            assert test.thread_count >= 1

    def test_every_observed_outcome_is_architected_allowed(self):
        """Hardware-observed implies architecturally allowed (soundness)."""
        for entry in corpus():
            if entry.observed:
                assert entry.architected == "Allowed", entry.name

    def test_families_cover_the_classic_shapes(self):
        names = set(families())
        assert {"MP", "SB", "LB", "WRC", "IRIW", "coherence"} <= names

    def test_by_name_raises_for_unknown(self):
        with pytest.raises(KeyError):
            by_name("NOT-A-TEST")
