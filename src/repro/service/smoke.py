"""CI smoke for the envelope service: daemon up, batch twice, compare.

Run as ``PYTHONPATH=src python -m repro.service.smoke``.  It

1. starts a ``ServiceDaemon`` on an ephemeral port with a fresh
   on-disk cache,
2. submits a 5-test batch (the head of the curated corpus) over real
   HTTP and waits for the verdicts,
3. submits the *same* batch again and asserts the second run is served
   entirely from the cache with verdicts identical field-for-field
   (outcome sets included) to the first,
4. cross-checks one verdict against a cache-less engine run,

and exits non-zero on any mismatch, so CI fails loudly when the cache
returns anything other than what cold exploration would have.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import os

BATCH_SIZE = 5


def _strip_volatile(verdict: dict) -> dict:
    """Drop fields allowed to differ between a cold run and a cache hit.

    ``cached`` flips by design; ``stats`` records the *original*
    exploration work on a hit (identical content), but ``seconds`` is a
    wall-clock measurement so it is only identical because the hit
    replays the stored value -- keep it, drop nothing else.
    """
    return {k: v for k, v in verdict.items() if k != "cached"}


def main() -> int:
    from ..litmus.library import corpus
    from .client import ServiceClient
    from .daemon import ServiceDaemon
    from .engine import EngineRequest, EnvelopeEngine

    entries = corpus()[:BATCH_SIZE]
    tests = [(entry.name, entry.source) for entry in entries]

    with tempfile.TemporaryDirectory() as tmp:
        daemon = ServiceDaemon(
            port=0, cache_path=os.path.join(tmp, "verdicts.sqlite")
        )
        daemon.start_scheduler()
        server_thread = threading.Thread(
            target=daemon._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        server_thread.start()
        host, port = daemon.address
        client = ServiceClient(url=f"http://{host}:{port}")
        try:
            health = client.health()
            assert health["ok"], health

            first = client.wait(
                client.submit(tests)["job"], timeout=600
            )
            second = client.wait(
                client.submit(tests)["job"], timeout=600
            )
        finally:
            daemon.shutdown()
            server_thread.join(timeout=10)

    failures = []
    if first["cache_misses"] != BATCH_SIZE:
        failures.append(
            f"first submission expected {BATCH_SIZE} cold misses, "
            f"got {first['cache_misses']}"
        )
    if second["cache_hits"] != BATCH_SIZE or second["cache_misses"] != 0:
        failures.append(
            f"second submission not fully cached: "
            f"{second['cache_hits']} hits / {second['cache_misses']} misses"
        )
    for cold, warm in zip(first["verdicts"], second["verdicts"]):
        if not warm.get("cached"):
            failures.append(f"{warm['name']}: second verdict not from cache")
        if _strip_volatile(cold) != _strip_volatile(warm):
            failures.append(
                f"{cold['name']}: cached verdict differs from cold verdict"
            )

    # Cross-check one verdict against a cache-less engine run.
    engine = EnvelopeEngine()
    name, source = tests[0]
    fresh = engine.run_request(EngineRequest(source=source, name=name))
    served = first["verdicts"][0]
    if (
        fresh.status != served["status"]
        or sorted(map(repr, fresh.outcomes))
        != sorted(
            repr(
                (
                    tuple(tuple(entry) for entry in registers),
                    tuple(tuple(cell) for cell in memory),
                )
            )
            for registers, memory in served["outcomes"]
        )
    ):
        failures.append(
            f"{name}: daemon verdict differs from cache-less engine run"
        )

    statuses = {v["name"]: v["status"] for v in second["verdicts"]}
    print(f"service smoke: {len(statuses)} tests, verdicts {statuses}")
    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print(
        "service smoke ok: second submission fully cache-served, "
        "verdicts identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
