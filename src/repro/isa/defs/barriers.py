"""Memory barriers and load-reserve/store-conditional instructions.

Barriers come from Book II chapter 4 (sync/lwsync/eieio/isync); the Sail
semantics simply signals the corresponding event to the concurrency model
(section 4.1 of the paper).  lwarx/stwcx. and ldarx/stdcx. provide the
atomic read-modify-write primitives; the store-conditional's success flag is
supplied *by* the concurrency model through the Write_mem-conditional
outcome's continuation.
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec, spec
from .common import EA_X, execute_clause

SPECS: List[InstructionSpec] = []


def _add(s: InstructionSpec) -> None:
    SPECS.append(s)


# sync L=0 is the heavyweight sync; L=1 is lwsync (the extended mnemonic).
_add(
    spec(
        "Sync",
        "sync",
        "X",
        "barrier",
        "31 0:3 L:2 0:10 598:10 0:1",
        "L",
        execute_clause(
            "Sync",
            "L",
            "if L == 0 then BARRIER_SYNC() else BARRIER_LWSYNC()",
        ),
        invalid_when="L not in (0, 1)",
        category="barrier",
    )
)

_add(
    spec(
        "Eieio",
        "eieio",
        "X",
        "barrier",
        "31 0:15 854:10 0:1",
        "",
        execute_clause("Eieio", "", "BARRIER_EIEIO()"),
        category="barrier",
    )
)

_add(
    spec(
        "Isync",
        "isync",
        "XL",
        "barrier",
        "19 0:15 150:10 0:1",
        "",
        execute_clause("Isync", "", "BARRIER_ISYNC()"),
        category="barrier",
    )
)

# ----------------------------------------------------------------------
# Load-reserve / store-conditional
# ----------------------------------------------------------------------

_add(
    spec(
        "Lwarx",
        "lwarx",
        "X",
        "atomic",
        "31 RT:5 RA:5 RB:5 20:10 0:1",
        "RT, RA, RB",
        execute_clause(
            "Lwarx",
            "RT, RA, RB",
            f"{EA_X};\n  GPR[RT] := EXTZ(64, MEMr_reserve(EA, 4))",
        ),
        category="atomic",
    )
)

_add(
    spec(
        "Ldarx",
        "ldarx",
        "X",
        "atomic",
        "31 RT:5 RA:5 RB:5 84:10 0:1",
        "RT, RA, RB",
        execute_clause(
            "Ldarx",
            "RT, RA, RB",
            f"{EA_X};\n  GPR[RT] := MEMr_reserve(EA, 8)",
        ),
        category="atomic",
    )
)

_add(
    spec(
        "StwcxRecord",
        "stwcx.",
        "X",
        "atomic",
        "31 RS:5 RA:5 RB:5 150:10 1:1",
        "RS, RA, RB",
        execute_clause(
            "StwcxRecord",
            "RS, RA, RB",
            f"{EA_X};\n"
            "  (bit[1]) success := "
            "STORE_CONDITIONAL(EA, 4, (GPR[RS])[32..63]);\n"
            "  CR[32..35] := 0b00 : success : XER.SO",
        ),
        category="atomic",
    )
)

_add(
    spec(
        "StdcxRecord",
        "stdcx.",
        "X",
        "atomic",
        "31 RS:5 RA:5 RB:5 214:10 1:1",
        "RS, RA, RB",
        execute_clause(
            "StdcxRecord",
            "RS, RA, RB",
            f"{EA_X};\n"
            "  (bit[1]) success := STORE_CONDITIONAL(EA, 8, GPR[RS]);\n"
            "  CR[32..35] := 0b00 : success : XER.SO",
        ),
        category="atomic",
    )
)
