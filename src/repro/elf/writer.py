"""Minimal ELF64 big-endian executable writer.

The paper's sequential tests are "standard ELF binaries produced with GCC"
(section 7); with no cross-compiler available, this writer produces
equivalent statically-linked Power64 images (text + data segments + symbol
table) so the reader front-end exercises the identical code path.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .format import (
    EHDR_SIZE,
    ELFCLASS64,
    ELFDATA2MSB,
    ELF_MAGIC,
    EM_PPC64,
    ET_EXEC,
    EV_CURRENT,
    PF_R,
    PF_W,
    PF_X,
    PHDR_SIZE,
    PT_LOAD,
    SHDR_SIZE,
    SHT_NULL,
    SHT_PROGBITS,
    SHT_STRTAB,
    SHT_SYMTAB,
    STB_GLOBAL,
    STT_FUNC,
    STT_OBJECT,
    SYM_SIZE,
    ElfImage,
)

_BE = ">"  # big-endian struct prefix


def write_elf(image: ElfImage) -> bytes:
    """Serialise an ``ElfImage`` into an ELF64BE executable."""
    segments = list(image.segments)
    phoff = EHDR_SIZE
    data_offset = phoff + PHDR_SIZE * len(segments)

    # Place segment file data, 8-aligned.
    placements: List[Tuple[int, bytes]] = []
    cursor = data_offset
    for segment in segments:
        cursor = (cursor + 7) & ~7
        placements.append((cursor, segment.data))
        cursor += len(segment.data)

    # String and symbol tables.
    strtab = bytearray(b"\x00")
    name_offsets: Dict[str, int] = {}
    for symbol in image.symbols:
        name_offsets[symbol.name] = len(strtab)
        strtab.extend(symbol.name.encode() + b"\x00")
    symtab = bytearray(SYM_SIZE)  # index 0: null symbol
    for symbol in image.symbols:
        info = (STB_GLOBAL << 4) | symbol.kind
        symtab.extend(
            struct.pack(
                _BE + "IBBHQQ",
                name_offsets[symbol.name],
                info,
                0,  # st_other
                0,  # st_shndx (SHN_UNDEF is fine for our loader)
                symbol.value,
                symbol.size,
            )
        )

    shstrtab = bytearray(b"\x00")
    section_names = {}
    for name in (".symtab", ".strtab", ".shstrtab"):
        section_names[name] = len(shstrtab)
        shstrtab.extend(name.encode() + b"\x00")

    cursor = (cursor + 7) & ~7
    symtab_offset = cursor
    cursor += len(symtab)
    strtab_offset = cursor
    cursor += len(strtab)
    shstrtab_offset = cursor
    cursor += len(shstrtab)
    shoff = (cursor + 7) & ~7

    # Section headers: null, .symtab, .strtab, .shstrtab
    sections = []
    sections.append(struct.pack(_BE + "IIQQQQIIQQ", 0, SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0))
    sections.append(
        struct.pack(
            _BE + "IIQQQQIIQQ",
            section_names[".symtab"],
            SHT_SYMTAB,
            0,
            0,
            symtab_offset,
            len(symtab),
            2,  # sh_link -> .strtab index
            1,  # sh_info: one greater than last local symbol
            8,
            SYM_SIZE,
        )
    )
    sections.append(
        struct.pack(
            _BE + "IIQQQQIIQQ",
            section_names[".strtab"],
            SHT_STRTAB,
            0,
            0,
            strtab_offset,
            len(strtab),
            0,
            0,
            1,
            0,
        )
    )
    sections.append(
        struct.pack(
            _BE + "IIQQQQIIQQ",
            section_names[".shstrtab"],
            SHT_STRTAB,
            0,
            0,
            shstrtab_offset,
            len(shstrtab),
            0,
            0,
            1,
            0,
        )
    )

    header = struct.pack(
        _BE + "4sBBBBB7xHHIQQQIHHHHHH",
        ELF_MAGIC,
        ELFCLASS64,
        ELFDATA2MSB,
        EV_CURRENT,
        0,  # ELFOSABI_NONE
        0,  # ABI version
        ET_EXEC,
        EM_PPC64,
        EV_CURRENT,
        image.entry,
        phoff,
        shoff,
        0,  # e_flags (ABI v1)
        EHDR_SIZE,
        PHDR_SIZE,
        len(segments),
        SHDR_SIZE,
        len(sections),
        3,  # e_shstrndx
    )

    phdrs = bytearray()
    for (offset, data), segment in zip(placements, segments):
        phdrs.extend(
            struct.pack(
                _BE + "IIQQQQQQ",
                PT_LOAD,
                segment.flags,
                offset,
                segment.vaddr,
                segment.vaddr,
                len(data),
                segment.memsz,
                8,
            )
        )

    blob = bytearray(shoff + SHDR_SIZE * len(sections))
    blob[: len(header)] = header
    blob[phoff : phoff + len(phdrs)] = phdrs
    for (offset, data), _segment in zip(placements, segments):
        blob[offset : offset + len(data)] = data
    blob[symtab_offset : symtab_offset + len(symtab)] = symtab
    blob[strtab_offset : strtab_offset + len(strtab)] = strtab
    blob[shstrtab_offset : shstrtab_offset + len(shstrtab)] = shstrtab
    for i, section in enumerate(sections):
        start = shoff + i * SHDR_SIZE
        blob[start : start + SHDR_SIZE] = section
    return bytes(blob)


def make_executable(
    text_addr: int,
    code_words: List[int],
    data_addr: int,
    data: bytes,
    symbols: Dict[str, Tuple[int, int, bool]],
    entry: int = None,
) -> bytes:
    """Convenience: build an executable from code words and a data blob.

    ``symbols`` maps name -> (address, size, is_function).
    """
    from .format import Segment, Symbol

    text = b"".join(struct.pack(">I", word) for word in code_words)
    segments = [
        Segment(text_addr, text, len(text), PF_R | PF_X),
    ]
    if data:
        segments.append(Segment(data_addr, data, len(data), PF_R | PF_W))
    symbol_list = [
        Symbol(name, addr, size, STT_FUNC if is_function else STT_OBJECT)
        for name, (addr, size, is_function) in sorted(symbols.items())
    ]
    image = ElfImage(
        entry=entry if entry is not None else text_addr,
        segments=segments,
        symbols=symbol_list,
    )
    return write_elf(image)
