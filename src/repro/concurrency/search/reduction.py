"""Verdict-preserving partial-order reduction: sleep sets + context bounds.

The exhaustive oracle's state space is dominated by interleavings of
*commuting* transitions: storage propagations of writes to different
locations, and thread-side steps of different threads that do not touch
the same storage state.  Exploring every ordering of a commuting pair
doubles work without ever changing the reachable outcome envelope.  This
module supplies the two pruning mechanisms the search driver
(``core.run_search``) applies when a strategy asks for them:

* **Sleep sets** (Godefroid).  After exploring transition ``t`` from a
  state, every sibling ``z`` that is *independent* of ``t`` enters the
  ``t``-successor's sleep set: the interleaving ``z;t;...`` need not be
  explored below ``t`` because it is equivalent to ``t;z;...``, which
  the ``z``-sibling's subtree covers.  Sleeping transitions are pruned,
  and survive into grandchildren as long as the transitions actually
  taken stay independent of them.  Because sleep-set pruning interacts
  with state caching, the seen "set" becomes a map from state key to
  the *intersection* of every arrival's sleep set (Godefroid's
  state-caching variant): an arrival whose sleep set contains the
  stored one is pruned outright, and a partially-covered arrival
  re-explores only the woken difference ``stored - sleep``.

* **Context bounds** (context-bounded model checking, cf. PAPERS.md).
  A path that switches the acting thread more than ``context_bound``
  times is cut.  Any pruning makes the result a partial outcome set;
  the engine records it (``Reducer.truncated``) and strategies report
  it through ``ExplorationResult.complete = False`` -- the same partial
  -result protocol ``BoundedIterative`` established.

Independence relation
---------------------

Two transitions enabled in the same state are *independent* when they
commute: each stays enabled after the other and both orders reach
states with identical continuations and outcomes.  The relation here is
a conservative under-approximation derived from the transition kinds in
``system.py`` / ``storage.py`` (see PERFORMANCE.md for the full
argument against the ``_dirty_threads`` invariants):

* An explicit ``ack_sync`` (non-eager mode) is kept dependent on
  everything.  A ``propagate_barrier`` that delivers a sync's event to
  the *last* missing thread triggers the acknowledgement eagerly
  inside ``apply`` (``_completes_sync``); since eager steps read only
  their own thread's state plus the acknowledged-sync set, that
  side effect's observable scope is the sync's *origin* thread, and
  the completing step is additionally dependent on the origin's
  thread-side transitions (and on other completing steps -- two acks
  reorder the set updates and closures).
* Other barrier traffic (``commit_barrier``, ``propagate_barrier``)
  matters exactly where the barrier *event* lands: the tail of one
  thread's propagation list.  Propagation lists only ever append, so a
  barrier step never enters the backward scans (Group-A prefixes,
  coherence-point blocker windows) of events already in any list --
  the step is dependent only on transitions that append to the *same*
  thread's list, on same-thread thread-side steps (for
  ``commit_barrier``), and on barrier steps landing in the same list;
  everything else, including two barrier events landing in different
  lists, commutes exactly.
* ``reach_coherence_point`` reads the cp status of writes around
  barriers (write-write cumulativity), but other cp commits only ever
  *enable* it (blockers leave, never join), appends land after the
  write's scan window, and its own effect -- coherence edges plus the
  cps set -- stays inside the write's overlap component: the footprint
  check below suffices.
* The same write propagating to two different target threads is an
  exact diamond (disjoint list appends, coherence edges into the write,
  Group-A prefix in the untouched origin list): always independent.
* Thread-side transitions of the *same* thread are dependent (they
  contend on one thread's state, including its eager closure).  A
  propagation *into* a thread is not thread-side: it disturbs no eager
  fixpoint (``_dirty_threads``) and every thread-visible read of the
  propagation list -- read responses, reservation validity, the
  coherence placement of commits -- consults only footprint-overlapping
  entries, so propagation/thread pairs reduce to the footprint check.
* Everything else interferes only through storage *locations*: each
  transition gets a footprint of written byte ranges (``mut``) and
  coherence-observing byte ranges (``obs``), closed over the connected
  components of the overlap graph of all accepted writes (coherence
  edges never leave a component, so disjoint components share no
  coherence, propagation-order or atomicity constraints).  Two
  transitions are dependent iff one's ``mut`` intersects the other's
  ``mut`` or ``obs`` under that closure.

Propagations of non-interfering writes to the *same* thread commute
only up to the order of that thread's propagation list -- the two
orders produce key-distinct states.  Every thread-visible function of
the list (read values and provenance, Group-A membership, coherence
placement, coherence-point blocking, final-memory enumeration) is
insensitive to the relative order of non-overlapping writes, so the two
states are observationally equivalent and pruning one order preserves
the outcome envelope; this is exactly the exponential the seen-set can
never deduplicate on its own.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from ..system import SystemState, Transition

#: A sync acknowledgement unblocks the sync's thread and feeds every
#: Group-A check: dependent on everything, never reduced.
GLOBAL_KINDS = frozenset({"ack_sync"})

#: Kinds that land a barrier event at the tail of one thread's
#: propagation list; dependence is scoped to that list (plus the eager
#: acknowledgement a completing sync propagation triggers).
BARRIER_KINDS = frozenset({"commit_barrier", "propagate_barrier"})

#: Kinds that append an event to the acting/target thread's
#: propagation list (``resolve_sc`` appends only on success, handled
#: in ``_append_targets``).
_APPENDING_KINDS = frozenset(
    {"propagate_write", "propagate_barrier", "commit_store",
     "commit_barrier"}
)

#: Thread-side read satisfaction: consults only the reading thread's
#: own state and propagation list -- never the coherence-point set.
_READ_KINDS = frozenset({"satisfy_read_storage", "satisfy_read_forward"})

#: Bound on the per-search memo tables (footprints, overlap components).
_CACHE_LIMIT = 65536


def _tail_cp_blocker(state: SystemState, target: int) -> bool:
    """Would a write appended to ``target``'s list gain a cp blocker?

    Mirrors ``Storage._has_cp_blocker`` for a hypothetical tail append
    of a settled-overlap write: only the barrier window matters (any
    write before the list's last barrier not yet past its coherence
    point; the overlap branch is vacuous by assumption).
    """
    storage = state.storage
    events = storage.events_propagated_to[target]
    last_barrier = -1
    for i in range(len(events) - 1, -1, -1):
        if events[i][0] == "b":
            last_barrier = i
            break
    if last_barrier < 0:
        return False
    cps = storage.coherence_points
    return any(
        events[i][0] == "w" and events[i][1] not in cps
        for i in range(last_barrier)
    )


class Reducer:
    """Per-search pruning engine: sleep sets and/or a context bound.

    One instance lives for the duration of one ``run_search`` (or one
    sharded prefix-plus-worker search); it carries the mutable pruning
    state the frozen strategy dataclasses cannot: memo tables and the
    ``truncated`` flag that downgrades results to ``complete=False``.
    """

    def __init__(self, reduction: str = "none",
                 context_bound: Optional[int] = None):
        if reduction not in ("none", "sleep", "dpor"):
            raise ValueError(
                f"unknown reduction {reduction!r} "
                "(choose none, sleep or dpor)"
            )
        # dpor layers source sets on top of the sleep-set machinery, so
        # both flags hold for it; the drivers dispatch on ``dpor`` first.
        self.sleep = reduction in ("sleep", "dpor")
        self.dpor = reduction == "dpor"
        self.context_bound = context_bound
        #: Set when any pruning was *lossy* (a context-bound cut): the
        #: outcome set is then a sound under-approximation, not the
        #: envelope.  Sleep-set pruning is verdict-preserving and does
        #: not set this.
        self.truncated = False
        # (overlap components per storage-write population, footprints
        # per accepted write) -- both pure functions of their keys.
        self._components: Dict[object, List[Tuple[int, int]]] = {}
        self._write_footprints: Dict[object, tuple] = {}

    # -- context bounding --------------------------------------------------

    @staticmethod
    def acting_thread(transition: Transition) -> Optional[int]:
        """The thread a transition charges a context switch to.

        Thread-side transitions act on their own thread; storage-side
        transitions belong to no execution context (the storage
        subsystem is not a scheduled thread).
        """
        if transition.ioid is not None:
            return transition.tid
        return None

    def within_bound(self, context: Tuple[Optional[int], int],
                     transition: Transition) -> bool:
        """May ``transition`` extend a path in ``context`` -- and if not,
        record that the search is now lossy."""
        if self.context_bound is None:
            return True
        _tid, switches = self.advance_context(context, transition)
        if switches > self.context_bound:
            self.truncated = True
            return False
        return True

    @staticmethod
    def advance_context(context: Tuple[Optional[int], int],
                        transition: Transition) -> Tuple[Optional[int], int]:
        """The (acting thread, switch count) context after a transition."""
        tid, switches = context
        acting = Reducer.acting_thread(transition)
        if acting is None or acting == tid:
            return (tid if acting is None else acting, switches)
        return (acting, switches if tid is None else switches + 1)

    # -- the independence relation ----------------------------------------

    def independent(self, state: SystemState, a: Transition,
                    b: Transition) -> bool:
        """Conservative commutation test for two transitions at ``state``."""
        a_kind = a.kind
        b_kind = b.kind
        if a_kind in GLOBAL_KINDS or b_kind in GLOBAL_KINDS:
            return False
        a_bar = a_kind in BARRIER_KINDS
        b_bar = b_kind in BARRIER_KINDS
        if a_bar or b_bar:
            if a_bar and b_bar:
                # Two barrier steps append to their respective ``tid``
                # lists: disjoint tails commute exactly.  A completing
                # sync propagation additionally acknowledges and
                # re-closes the sync's origin thread, so two completing
                # steps (two acks) or a completion paired with the
                # origin's own ``commit_barrier`` stay dependent; the
                # order of two barrier events within *one* list is
                # conservatively dependent.
                if a.tid == b.tid:
                    return False
                comp_a = self._completes_sync(state, a)
                comp_b = self._completes_sync(state, b)
                if comp_a and comp_b:
                    return False
                if comp_a or comp_b:
                    comp, oth = (a, b) if comp_a else (b, a)
                    if oth.tid == comp.detail[0].tid:
                        return False
                return True
            barrier, other = (a, b) if a_bar else (b, a)
            if self._completes_sync(state, barrier) and (
                other.ioid is not None
                and other.tid == _sync_origin(barrier)
            ):
                # Delivering a sync's event to its last missing thread
                # acknowledges it eagerly inside ``apply``; the
                # acknowledgement's observable scope is the sync's
                # origin thread (eager steps read only their own
                # thread's state plus the acknowledged-sync set), so
                # the completion contends with that thread's
                # thread-side steps.
                return False
            if barrier.tid in _append_targets(other):
                # Barrier/event order within one propagation list is
                # semantically significant (coherence-point blocker
                # windows, Group-A prefixes of later events).
                return False
            if (
                barrier.ioid is not None
                and other.ioid is not None
                and other.tid == barrier.tid
            ):
                # ``commit_barrier`` vs thread-side steps of its own
                # thread: ordinary same-thread contention (po-previous
                # barrier commitment gates reads, eager closure).
                return False
            # Appends to *other* lists never precede existing events,
            # so they stay out of every backward scan the barrier's
            # enabledness performs; non-appending thread-side steps of
            # the target consult only their own thread's po-previous
            # barriers and the (separately gated) acknowledged-sync
            # set -- and barrier events carry no data footprint.
            return True
        a_prop = a_kind == "propagate_write"
        b_prop = b_kind == "propagate_write"
        if a_prop and b_prop and a.detail[0] == b.detail[0]:
            # The same write propagating to two different threads:
            # appends to disjoint per-thread lists, coherence edges all
            # point *into* the write, the Group-A prefix lives in the
            # origin thread's (untouched) list -- an exact diamond.
            return True
        if a.ioid is not None and b.ioid is not None and a.tid == b.tid:
            # Two transitions of the same thread contend on that
            # thread's instruction state (including its eager closure).
            # A *propagation into* the thread is not in this class:
            # ``_dirty_threads`` proves propagations disturb no eager
            # fixpoint, and every thread-visible read of the propagation
            # list (read responses, reservation validity, coherence
            # placement of commits) consults only footprint-overlapping
            # entries -- so those pairs fall through to the footprint
            # check below.
            return False
        if (
            a.ioid is not None and b.ioid is not None
            and a_kind != "resolve_sc" and b_kind != "resolve_sc"
        ):
            # Thread-side steps of *different* threads (same-thread
            # pairs were rejected above), neither a store-conditional
            # resolution: each consults and mutates only its own
            # thread's state, reservation and propagation list.  A
            # committed store lands in the origin's own list and draws
            # coherence edges only against that list -- the new write
            # is in no other list, so no read response, coherence
            # restart check or reservation elsewhere can tell the
            # orders apart.
            return True
        verdict = self._settled_write_scope(state, a, b)
        if verdict is not None:
            return verdict
        mut_a, obs_a = self._footprint(state, a)
        mut_b, obs_b = self._footprint(state, b)
        if not mut_a and not mut_b:
            return True
        components = self._overlap_components(state)
        spans_a_mut = _close(components, mut_a)
        spans_b_mut = _close(components, mut_b)
        if _intersects(spans_a_mut, _close(components, obs_b) + spans_b_mut):
            return False
        if _intersects(spans_b_mut, _close(components, obs_a) + spans_a_mut):
            return False
        return True

    def _completes_sync(self, state: SystemState,
                        transition: Transition) -> bool:
        """Would this barrier step make a sync acknowledgeable?

        ``apply`` acknowledges an ackable sync eagerly, so a barrier
        step that completes one carries a globally visible effect (the
        sync's thread unblocks) on top of its list append.  Mirrors
        ``Storage.can_acknowledge_sync`` one append ahead.
        """
        storage = state.storage
        if transition.kind == "commit_barrier":
            # The committed event lands only in the committing thread's
            # own list; it can complete a sync only when that list is
            # the only one.
            return len(storage.threads) <= 1
        bid = transition.detail[0]
        if bid not in storage.unacknowledged_syncs:
            return False
        event = ("b", bid)
        return all(
            event in storage._events_pos[tid]
            for tid in storage.threads
            if tid != transition.tid
        )

    def _settled_write_scope(self, state: SystemState, a: Transition,
                             b: Transition) -> Optional[bool]:
        """Exact scoping for storage steps of *settled-overlap* writes.

        A write all of whose overlapping writes are settled (past their
        coherence points and present in every propagation list -- e.g.
        initial memory, which ``accept_initial_writes`` installs that
        way) adds no new coherence edge when it propagates or commits
        its coherence point: the edges its loops would add already
        exist (``accept_write`` drew them against the origin list,
        which held every settled write).  Its steps' effects shrink to

        * ``propagate_write`` -- one tail append to the target list:
          commutes with every thread-side step of *other* threads (they
          consult only their own thread's state and list);
        * ``reach_coherence_point`` -- the ``cps``-set gains the wid:
          commutes with read satisfaction (options and values derive
          from the reader's list content alone, never ``cps``), and
          with the write's own propagation unless the append lands
          behind a barrier with a non-cp'd write before it (which would
          create a ``_has_cp_blocker`` entry and disable the cp step).

        Returns ``True`` for those pairs, ``None`` (fall through to the
        footprint check) otherwise -- never ``False``.
        """
        for x, y in ((a, b), (b, a)):
            if x.kind == "propagate_write":
                wid = x.detail[0]
                if (
                    y.ioid is not None
                    and y.tid != x.tid
                    and self._overlaps_settled(state, wid)
                ):
                    return True
                if (
                    y.kind == "reach_coherence_point"
                    and y.detail[0] == wid
                    and self._overlaps_settled(state, wid)
                    and not _tail_cp_blocker(state, x.tid)
                ):
                    return True
            elif (
                x.kind == "reach_coherence_point"
                and y.kind in _READ_KINDS
                and self._overlaps_settled(state, x.detail[0])
            ):
                return True
        return None

    @staticmethod
    def _overlaps_settled(state: SystemState, wid) -> bool:
        """Is every write overlapping ``wid`` past its coherence point
        and present in every thread's propagation list?"""
        storage = state.storage
        cps = storage.coherence_points
        for other in storage._overlaps.get(wid, ()):
            if other not in cps:
                return False
            event = ("w", other)
            for tid in storage.threads:
                if event not in storage._events_pos[tid]:
                    return False
        return True

    def _footprint(self, state: SystemState, transition: Transition):
        """(written ranges, coherence-observing ranges) of a transition.

        Write-keyed kinds are memoised (a ``WriteId``'s address and
        size never change once accepted).  Thread-side footprints are
        *not*: a computed address can differ between two paths whose
        enumeration produced equal ``Transition`` values, so an
        equality-keyed memo could serve a stale footprint.
        """
        kind = transition.kind
        if kind == "propagate_write" or kind == "reach_coherence_point":
            wid = transition.detail[0]
            cached = self._write_footprints.get(wid)
            if cached is None:
                write = state.storage.writes_seen[wid]
                ranges = ((write.addr, write.size),)
                cached = (ranges, ranges)
                if len(self._write_footprints) >= _CACHE_LIMIT:
                    self._write_footprints.clear()
                self._write_footprints[wid] = cached
            return cached
        if kind == "commit_store":
            instance = state.threads[transition.tid].instances[transition.ioid]
            ranges = tuple(
                (write.addr, write.size) for write in instance.mem_writes
            )
            return (ranges, ranges)
        if kind == "resolve_sc":
            instance = state.threads[transition.tid].instances[transition.ioid]
            _, addr, size, _value, _pending = instance.mos
            ranges = ((addr, size),)
            # The failing resolution writes nothing, but both detail
            # variants share enabledness conditions over the reserved
            # location; treat them uniformly.
            return (ranges if transition.detail[0] else (), ranges)
        if kind == "satisfy_read_storage":
            instance = state.threads[transition.tid].instances[transition.ioid]
            _, _rkind, addr, size, _pending = instance.mos
            # Reads mutate no storage but their CoRR restart check
            # observes the coherence order over their footprint.
            return ((), ((addr, size),))
        # satisfy_read_forward: thread-internal.
        return ((), ())

    def _overlap_components(self, state: SystemState):
        """Disjoint address intervals covering each overlap component.

        Coherence edges connect only overlapping writes, so the
        connected components of the overlap graph bound how far any
        coherence/atomicity constraint can reach.  Merging the sorted
        write intervals wherever they intersect yields exactly one
        interval per component.
        """
        storage = state.storage
        cache_key = storage._writes_key
        if cache_key is None:
            cache_key = tuple(sorted(storage.writes_seen))
        components = self._components.get(cache_key)
        if components is not None:
            return components
        merged: List[Tuple[int, int]] = []
        for write in sorted(
            storage.writes_seen.values(), key=lambda w: w.addr
        ):
            end = write.addr + write.size
            if merged and write.addr < merged[-1][1]:
                if end > merged[-1][1]:
                    merged[-1] = (merged[-1][0], end)
            else:
                merged.append((write.addr, end))
        if len(self._components) >= _CACHE_LIMIT:
            self._components.clear()
        self._components[cache_key] = merged
        return merged


def _sync_origin(transition: Transition) -> Optional[int]:
    """The thread a completing barrier step's acknowledgement unblocks."""
    if transition.kind == "propagate_barrier":
        return transition.detail[0].tid
    return transition.tid  # commit_barrier: its own thread


def _append_targets(transition: Transition) -> Tuple[int, ...]:
    """Threads whose propagation list the transition appends events to."""
    if transition.kind in _APPENDING_KINDS:
        return (transition.tid,)
    if transition.kind == "resolve_sc" and transition.detail[0]:
        # A successful store-conditional commits its write.
        return (transition.tid,)
    return ()


def _close(components: List[Tuple[int, int]],
           ranges) -> List[Tuple[int, int]]:
    """Expand byte ranges to the overlap components they touch."""
    closed: List[Tuple[int, int]] = []
    starts = [start for start, _end in components]
    for addr, size in ranges:
        end = addr + size
        closed.append((addr, end))
        index = bisect_right(starts, addr) - 1
        # Components intersecting [addr, end): at most a few; scan.
        if index < 0:
            index = 0
        for start, comp_end in components[index:]:
            if start >= end:
                break
            if comp_end > addr:
                closed.append((start, comp_end))
    return closed


def _intersects(spans_a: List[Tuple[int, int]],
                spans_b: List[Tuple[int, int]]) -> bool:
    for a_start, a_end in spans_a:
        for b_start, b_end in spans_b:
            if a_start < b_end and b_start < a_end:
                return True
    return False


def make_reducer(reduction: str = "none",
                 context_bound: Optional[int] = None) -> Optional[Reducer]:
    """A ``Reducer`` when any pruning is requested, else ``None``.

    ``None`` keeps the unreduced driver byte-for-byte on its historical
    hot path (and its counters bit-identical to the reference engine).
    """
    if reduction == "none" and context_bound is None:
        return None
    return Reducer(reduction, context_bound)
