"""The thread subsystem: trees of in-flight instruction instances.

Implements the paper's per-thread model (sections 2 and 5):

  * a *tree* of instruction instances, branching at (speculated) conditional
    branches, with un-taken subtrees discarded once the branch resolves;
  * register reads resolved by walking program-order predecessors at bit
    granularity, blocking while an intervening instruction might still write
    a needed bit (section 2.1.2);
  * the CIA/NIA pseudo-registers handled specially (no dependencies);
  * memory reads satisfied either from the storage subsystem or by
    *forwarding* from an uncommitted program-order-earlier store
    (section 2.1.5, PPOCA);
  * restart of speculative loads (and their dependents) on coherence
    violations, and of anything that consumed values from a restarted
    instruction.

The micro-op state of an instance is the paper's

    type micro_op_state =
      | MOS_plain of instruction_state
      | MOS_pending_mem_read of read_request * (memval -> instruction_state)
      | MOS_potential_mem_write of (list write) * instruction_state

with the continuation stored as a pending interpreter state, plus the
"blocked register read" refinement and the store-conditional variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..isa.model import DecodedInstruction, IsaModel
from ..sail.analysis import Footprint
from ..sail.interp import InterpState, resume
from ..sail.outcomes import RegSlice
from ..sail.values import Bits
from .events import Write, WriteId
from .keys import CachedKey, intern_key
from .params import ModelParams

Ioid = Tuple[int, int]  # (tid, per-thread index)


class ModelError(Exception):
    """An internal invariant of the concurrency model was violated."""


# Micro-op state tags.
MOS_PLAIN = "plain"
MOS_BLOCKED_REG = "blocked_reg"  # (tag, RegSlice, pending InterpState)
MOS_PENDING_READ = "pending_read"  # (tag, kind, addr, size, pending state)
MOS_PENDING_SC = "pending_sc"  # (tag, addr, size, value, pending state)
MOS_DONE = "done"


@dataclass(frozen=True)
class RegReadRecord:
    slice: RegSlice
    value: Bits
    sources: Tuple[Ioid, ...]  # instruction instances the value came from


@dataclass(frozen=True)
class RegWriteRecord:
    slice: RegSlice
    value: Bits


@dataclass(frozen=True)
class MemReadRecord:
    """A satisfied memory read and where each byte run came from."""

    addr: int
    size: int
    value: Bits
    kind: str  # "plain" | "reserve"
    storage_sources: Tuple[Tuple[WriteId, int, int], ...]  # (wid, offset, len)
    forwarded_from: Optional[Ioid]  # instance whose write was forwarded


class InstructionInstance:
    """One (possibly speculative, possibly partially executed) instruction.

    Attribute writes invalidate the instance's memoised ``key()`` (see
    ``__setattr__``); ``children`` is therefore always *replaced*, never
    mutated in place, by the code that grows or prunes the tree.
    """

    __slots__ = (
        "ioid",
        "tid",
        "address",
        "instruction",
        "static_fp",
        "mos",
        "reg_reads",
        "reg_writes",
        "mem_reads",
        "mem_writes",
        "writes_committed",
        "sc_resolved",
        "barrier_kind",
        "barrier_committed",
        "nia",
        "finished",
        "restarts",
        "prev",
        "children",
        "addr_sources",
        "_key_cache",
    )

    def __init__(
        self,
        ioid: Ioid,
        address: int,
        instruction: DecodedInstruction,
        static_fp: Footprint,
        initial: InterpState,
        prev: Optional[Ioid],
    ):
        self.ioid = ioid
        self.tid = ioid[0]
        self.address = address
        self.instruction = instruction
        self.static_fp = static_fp
        self.mos: tuple = (MOS_PLAIN, initial)
        self.reg_reads: Tuple[RegReadRecord, ...] = ()
        self.reg_writes: Tuple[RegWriteRecord, ...] = ()
        self.mem_reads: Tuple[MemReadRecord, ...] = ()
        self.mem_writes: Tuple[Write, ...] = ()
        self.writes_committed = False
        self.sc_resolved: Optional[bool] = None
        self.barrier_kind: Optional[str] = None
        self.barrier_committed = False
        self.nia: Optional[int] = None
        self.finished = False
        self.restarts = 0
        self.prev = prev
        self.children: Dict[int, Ioid] = {}  # fetch address -> child ioid
        #: Instances whose register values fed this instruction's memory
        #: footprint (the paper's address taint, section 2.2): reads
        #: performed while the remaining footprint was still undetermined.
        self.addr_sources: Tuple[Ioid, ...] = ()

    # ------------------------------------------------------------------

    def __setattr__(self, name, value):
        # Every mutation drops the memoised key; ``key()`` itself stores the
        # cache through object.__setattr__ to avoid self-invalidation.
        object.__setattr__(self, name, value)
        object.__setattr__(self, "_key_cache", None)

    def clone(self) -> "InstructionInstance":
        other = InstructionInstance.__new__(InstructionInstance)
        put = object.__setattr__
        put(other, "ioid", self.ioid)
        put(other, "tid", self.tid)
        put(other, "address", self.address)
        put(other, "instruction", self.instruction)
        put(other, "static_fp", self.static_fp)
        put(other, "mos", self.mos)
        put(other, "reg_reads", self.reg_reads)
        put(other, "reg_writes", self.reg_writes)
        put(other, "mem_reads", self.mem_reads)
        put(other, "mem_writes", self.mem_writes)
        put(other, "writes_committed", self.writes_committed)
        put(other, "sc_resolved", self.sc_resolved)
        put(other, "barrier_kind", self.barrier_kind)
        put(other, "barrier_committed", self.barrier_committed)
        put(other, "nia", self.nia)
        put(other, "finished", self.finished)
        put(other, "restarts", self.restarts)
        put(other, "prev", self.prev)
        put(other, "children", self.children)
        put(other, "addr_sources", self.addr_sources)
        # The clone starts bit-identical, so it shares the memoised key
        # object: unchanged instances compare key-equal by identity across
        # the whole chain of COW descendants.
        put(other, "_key_cache", self._key_cache)
        return other

    def key(self) -> CachedKey:
        cached = self._key_cache
        if cached is None:
            value = (
                self.ioid,
                self.address,
                self.instruction.word,
                self._mos_key(),
                self.reg_reads,
                self.reg_writes,
                self.mem_reads,
                self.mem_writes,
                self.writes_committed,
                self.sc_resolved,
                self.barrier_kind,
                self.barrier_committed,
                self.nia,
                self.finished,
                self.prev,
                tuple(sorted(self.children.items())),
                self.addr_sources,
            )
            # Finished instances are immutable from here on and heavily
            # shared between converging interleavings: intern their keys so
            # equal keys compare by identity.
            cached = intern_key(value) if self.finished else CachedKey(value)
            object.__setattr__(self, "_key_cache", cached)
        return cached

    def _mos_key(self):
        return self.mos

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    @property
    def is_done_executing(self) -> bool:
        return self.mos[0] == MOS_DONE

    @property
    def is_branch(self) -> bool:
        """Does this instruction have more than one possible successor?"""
        fp = self.static_fp
        return bool(fp.nias) or fp.nia_indirect

    @property
    def is_load(self) -> bool:
        return self.static_fp.is_load or bool(self.mem_reads)

    @property
    def is_store(self) -> bool:
        return self.static_fp.is_store or bool(self.mem_writes)

    @property
    def is_memory_access(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_storage_barrier(self) -> bool:
        return self.barrier_kind in ("sync", "lwsync", "eieio")

    def static_barrier_kinds(self) -> frozenset:
        """Barrier kinds this instruction will (or did) signal."""
        if self.barrier_kind is not None:
            return frozenset((self.barrier_kind,))
        return self.static_fp.barriers

    # ------------------------------------------------------------------
    # Dynamic footprints
    # ------------------------------------------------------------------

    def remaining_state(
        self, model: Optional[IsaModel] = None
    ) -> Optional[InterpState]:
        """An interpreter state covering the instruction's remaining work.

        When ``model`` is given its resume memo is used, so repeated calls
        along different interleavings share the resulting state object.
        """
        do_resume = resume if model is None else model.resume
        tag = self.mos[0]
        if tag == MOS_PLAIN:
            return self.mos[1]
        if tag == MOS_BLOCKED_REG:
            reg_slice, pending = self.mos[1], self.mos[2]
            return do_resume(pending, Bits.unknown(reg_slice.width))
        if tag == MOS_PENDING_READ:
            _, _, _, size, pending = self.mos
            return do_resume(pending, Bits.unknown(8 * size))
        if tag == MOS_PENDING_SC:
            return do_resume(self.mos[4], Bits.unknown(1))
        return None

    def remaining_footprint(self, model: IsaModel) -> Optional[Footprint]:
        state = self.remaining_state(model)
        if state is None:
            return None
        return model.footprint(state, cia=self.address)

    def may_write_reg(self, model: IsaModel, target: RegSlice) -> bool:
        """Could this instruction still write (part of) ``target``?"""
        remaining = self.remaining_footprint(model)
        return remaining is not None and remaining.may_write_reg(target)

    def memory_footprint_determined(self, model: IsaModel) -> bool:
        """Are all possible future memory accesses at concrete addresses?

        This is the paper's dynamic footprint recalculation (section 2.1.6):
        a store whose address registers have resolved reports a determined
        footprint even while its data register read is still pending.
        """
        if self.mos[0] == MOS_PENDING_READ or self.mos[0] == MOS_PENDING_SC:
            pass  # the pending access itself is at a known address
        remaining = self.remaining_footprint(model)
        if remaining is None:
            return True
        return remaining.memory_determined

    def may_access_memory(self, model: IsaModel, addr: int, size: int) -> bool:
        for record in self.mem_reads:
            if record.addr < addr + size and addr < record.addr + record.size:
                return True
        for write in self.mem_writes:
            if write.overlaps(addr, size):
                return True
        tag = self.mos[0]
        if tag == MOS_PENDING_READ:
            _, _, raddr, rsize, _ = self.mos
            if raddr < addr + size and addr < raddr + rsize:
                return True
        if tag == MOS_PENDING_SC:
            _, waddr, wsize, _, _ = self.mos
            if waddr < addr + size and addr < waddr + wsize:
                return True
        remaining = self.remaining_footprint(model)
        return remaining is not None and remaining.may_touch_memory(addr, size)

    def may_write_memory_overlapping(
        self, model: IsaModel, addr: int, size: int
    ) -> bool:
        for write in self.mem_writes:
            if write.overlaps(addr, size):
                return True
        if self.mos[0] == MOS_PENDING_SC:
            _, waddr, wsize, _, _ = self.mos
            if waddr < addr + size and addr < waddr + wsize:
                return True
        remaining = self.remaining_footprint(model)
        return remaining is not None and remaining.may_write_memory(addr, size)

    # ------------------------------------------------------------------

    def performed_write_footprints(self) -> List[Tuple[int, int]]:
        return [(w.addr, w.size) for w in self.mem_writes]

    def read_footprints(self) -> List[Tuple[int, int]]:
        return [(r.addr, r.size) for r in self.mem_reads]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<i{self.ioid} 0x{self.address:x} {self.instruction.mnemonic} "
            f"{self.mos[0]}{' fin' if self.finished else ''}>"
        )


def _coarsen(reg_slice: RegSlice, granularity: str) -> RegSlice:
    """Widen a CR slice for the E8 dependency-granularity ablation."""
    if reg_slice.reg != "CR" or granularity == "bit":
        return reg_slice
    if granularity == "field":
        lo = 32 + ((reg_slice.lo - 32) // 4) * 4
        hi = 32 + ((reg_slice.hi - 32) // 4) * 4 + 3
        return RegSlice("CR", lo, hi)
    return RegSlice("CR", 32, 63)


class ThreadState:
    """One hardware thread: instruction tree + initial register values.

    ``key()`` is memoised; direct attribute writes invalidate it (see
    ``__setattr__``), and the system state's ``_own_thread`` drops it before
    any mutation of the thread's instances, which this object cannot see.
    """

    __slots__ = (
        "tid",
        "initial_registers",
        "instances",
        "root",
        "next_index",
        "reservation",
        "initial_fetch_address",
        "_key_cache",
        "_trans_cache",
        "_finished_cache",
        "_sorted_ioids",
    )

    #: Derived-value slots dropped together on any mutation: the memoised
    #: key, the enumerated transition options (with their storage-side
    #: context), the all-instructions-finished verdict, and the sorted
    #: instance-id list.
    _CACHE_SLOTS = (
        "_key_cache",
        "_trans_cache",
        "_finished_cache",
        "_sorted_ioids",
    )

    def __init__(self, tid: int, initial_registers: Dict[str, Bits]):
        self.tid = tid
        self.initial_registers = dict(initial_registers)
        self.instances: Dict[Ioid, InstructionInstance] = {}
        self.root: Optional[Ioid] = None
        self.next_index = 0
        #: (addr, size, write id, lwarx ioid) or None
        self.reservation: Optional[Tuple[int, int, WriteId, Ioid]] = None
        self.initial_fetch_address: Optional[int] = None

    # ------------------------------------------------------------------

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)
        if name not in ThreadState._CACHE_SLOTS:
            object.__setattr__(self, "_key_cache", None)
            object.__setattr__(self, "_trans_cache", None)
            object.__setattr__(self, "_finished_cache", None)
            object.__setattr__(self, "_sorted_ioids", None)

    def clone(self) -> "ThreadState":
        other = ThreadState.__new__(ThreadState)
        put = object.__setattr__
        put(other, "tid", self.tid)
        put(other, "initial_registers", self.initial_registers)  # immutable
        put(other, "instances", {
            ioid: inst.clone() for ioid, inst in self.instances.items()
        })
        put(other, "root", self.root)
        put(other, "next_index", self.next_index)
        put(other, "reservation", self.reservation)
        put(other, "initial_fetch_address", self.initial_fetch_address)
        put(other, "_key_cache", None)
        put(other, "_trans_cache", None)
        put(other, "_finished_cache", None)
        put(other, "_sorted_ioids", self._sorted_ioids)
        return other

    def invalidate_caches(self) -> None:
        """Drop derived values: the caller is about to mutate an instance."""
        put = object.__setattr__
        put(self, "_key_cache", None)
        put(self, "_trans_cache", None)
        put(self, "_finished_cache", None)

    def sorted_ioids(self) -> List[Ioid]:
        """Sorted instance ids (cached; do not mutate the returned list).

        Invalidated whenever the instance *set* changes (``new_instance``,
        ``prune_subtree``); instance mutations do not affect it, so
        ``invalidate_caches`` leaves it alone.
        """
        cached = self._sorted_ioids
        if cached is None:
            cached = sorted(self.instances)
            object.__setattr__(self, "_sorted_ioids", cached)
        return cached

    def key(self) -> CachedKey:
        cached = self._key_cache
        if cached is None:
            instances = self.instances
            # Interned: equal thread states recur along converging
            # interleavings, and identity-equal thread keys let the seen-set
            # equality walk stop one level down instead of comparing every
            # instance key pairwise.
            cached = intern_key((
                self.tid,
                tuple(
                    [instances[ioid].key() for ioid in self.sorted_ioids()]
                ),
                self.reservation,
            ))
            object.__setattr__(self, "_key_cache", cached)
        return cached

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------

    def po_previous(self, instance: InstructionInstance) -> Iterator[InstructionInstance]:
        """Program-order predecessors, nearest first."""
        current = instance.prev
        while current is not None:
            pred = self.instances[current]
            yield pred
            current = pred.prev

    def descendants(self, instance: InstructionInstance) -> Iterator[InstructionInstance]:
        """All instances program-order-after ``instance`` (whole subtree)."""
        pending = list(instance.children.values())
        while pending:
            ioid = pending.pop()
            child = self.instances.get(ioid)
            if child is None:
                continue
            yield child
            pending.extend(child.children.values())

    def new_instance(
        self,
        model: IsaModel,
        address: int,
        instruction: DecodedInstruction,
        prev: Optional[Ioid],
    ) -> InstructionInstance:
        ioid = (self.tid, self.next_index)
        self.next_index += 1
        instance = InstructionInstance(
            ioid,
            address,
            instruction,
            model.static_footprint(instruction, cia=address),
            model.initial_state(instruction),
            prev,
        )
        self.instances[ioid] = instance
        if prev is None:
            self.root = ioid
        else:
            parent = self.instances[prev]
            # Replace rather than mutate: children dicts are shared between
            # COW clones and their assignment invalidates the parent's key.
            parent.children = {**parent.children, address: ioid}
        return instance

    def prune_subtree(self, ioid: Ioid) -> None:
        """Discard a speculative subtree (un-taken branch path)."""
        self.invalidate_caches()
        object.__setattr__(self, "_sorted_ioids", None)
        instance = self.instances.pop(ioid, None)
        if instance is None:
            return
        if instance.writes_committed or instance.finished:
            raise ModelError(f"pruning a committed instance {ioid}")
        if self.reservation is not None and self.reservation[3] == ioid:
            self.reservation = None
        for child in list(instance.children.values()):
            self.prune_subtree(child)

    # ------------------------------------------------------------------
    # Register-read resolution (section 2.1.2)
    # ------------------------------------------------------------------

    def resolve_register_read(
        self,
        model: IsaModel,
        params: ModelParams,
        instance: InstructionInstance,
        reg_slice: RegSlice,
    ):
        """Resolve a register read by walking po-predecessors.

        Returns ("value", Bits, sources) or ("blocked", blocker_ioid).
        Dependency *tracking* uses the configured CR granularity; the value
        bits themselves are always assembled precisely.
        """
        coarse = _coarsen(reg_slice, params.cr_granularity)
        needed: List[Tuple[int, int]] = [(reg_slice.lo, reg_slice.hi)]
        coarse_needed: List[Tuple[int, int]] = [(coarse.lo, coarse.hi)]
        fragments: List[Tuple[int, int, Bits]] = []
        sources: Set[Ioid] = set()

        for pred in self.po_previous(instance):
            if not needed and not coarse_needed:
                break
            wrote_here = False
            for record in reversed(pred.reg_writes):
                wslice = _coarsen(record.slice, params.cr_granularity)
                if wslice.reg != reg_slice.reg:
                    continue
                if needed and record.slice.reg == reg_slice.reg:
                    new_needed = []
                    for lo, hi in needed:
                        overlap_lo = max(lo, record.slice.lo)
                        overlap_hi = min(hi, record.slice.hi)
                        if overlap_lo > overlap_hi:
                            new_needed.append((lo, hi))
                            continue
                        fragment = record.value.slice(
                            overlap_lo - record.slice.lo,
                            overlap_hi - record.slice.lo,
                        )
                        fragments.append((overlap_lo, overlap_hi, fragment))
                        sources.add(pred.ioid)
                        wrote_here = True
                        if lo < overlap_lo:
                            new_needed.append((lo, overlap_lo - 1))
                        if overlap_hi < hi:
                            new_needed.append((overlap_hi + 1, hi))
                    needed = new_needed
                # Coarse (dependency-only) consumption.
                new_coarse = []
                consumed_coarse = False
                for lo, hi in coarse_needed:
                    if wslice.lo <= hi and lo <= wslice.hi:
                        consumed_coarse = True
                        sources.add(pred.ioid)
                        if lo < wslice.lo:
                            new_coarse.append((lo, wslice.lo - 1))
                        if wslice.hi < hi:
                            new_coarse.append((wslice.hi + 1, hi))
                    else:
                        new_coarse.append((lo, hi))
                if consumed_coarse:
                    coarse_needed = new_coarse
            if (needed or coarse_needed) and not pred.is_done_executing:
                remaining = pred.remaining_footprint(model)
                if remaining is not None:
                    for out in remaining.regs_out:
                        cout = _coarsen(out, params.cr_granularity)
                        if cout.reg != reg_slice.reg:
                            continue
                        blocked = any(
                            cout.lo <= hi and lo <= cout.hi
                            for lo, hi in coarse_needed
                        ) or any(
                            out.lo <= hi and lo <= out.hi for lo, hi in needed
                        )
                        if blocked:
                            return ("blocked", pred.ioid)

        # Remaining bits come from the thread's initial register state.
        initial = self.initial_registers.get(reg_slice.reg)
        if initial is None:
            info = model.registry.shape_of_instance(reg_slice.reg)
            initial = Bits.zeros(info.width)
        info = model.registry.shape_of_instance(reg_slice.reg)
        value = Bits.unknown(reg_slice.width)
        for lo, hi in needed:
            fragment = initial.slice(lo - info.start, hi - info.start)
            fragments.append((lo, hi, fragment))
        for lo, hi, fragment in fragments:
            value = value.update_slice(
                lo - reg_slice.lo, hi - reg_slice.lo, fragment
            )
        if value.has_unknown:
            raise ModelError(f"register read {reg_slice} left unknown bits")
        return ("value", value, tuple(sorted(sources)))

    # ------------------------------------------------------------------
    # Final register state
    # ------------------------------------------------------------------

    def _committed_path(self) -> List["InstructionInstance"]:
        """The single committed root-to-leaf path of a final thread state."""
        path: List[InstructionInstance] = []
        current = self.root
        while current is not None:
            instance = self.instances[current]
            path.append(instance)
            children = list(instance.children.values())
            if not children:
                break
            if len(children) > 1:
                raise ModelError("unresolved speculation in final state")
            current = children[0]
        return path

    def final_register_value(self, model: IsaModel, reg: str) -> Bits:
        """Architected value of ``reg`` after all instructions finished."""
        return self.final_register_values(model, (reg,))[reg]

    def final_register_values(
        self, model: IsaModel, regs: Iterable[str]
    ) -> Dict[str, Bits]:
        """Architected values of ``regs``, walking the committed path once."""
        infos = {reg: model.registry.shape_of_instance(reg) for reg in regs}
        values = {
            reg: self.initial_registers.get(reg, Bits.zeros(info.width))
            for reg, info in infos.items()
        }
        for instance in self._committed_path():
            for record in instance.reg_writes:
                reg = record.slice.reg
                info = infos.get(reg)
                if info is None:
                    continue
                values[reg] = values[reg].update_slice(
                    record.slice.lo - info.start,
                    record.slice.hi - info.start,
                    record.value,
                )
        return values

    def all_finished(self) -> bool:
        return all(inst.finished for inst in self.instances.values())
