#!/usr/bin/env python3
"""Quickstart: the test oracle on the classic message-passing test.

Parses the MP litmus test (with and without barriers), exhaustively
computes the set of all architecturally allowed executions, and shows how
sync barriers close the non-SC outcome -- the core workflow of the paper's
ppcmem2 tool (section 6).

Run:  python examples/quickstart.py
"""

from repro import parse_litmus, run_litmus

MP = """
POWER MP
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
"""

MP_SYNCS = MP.replace("POWER MP", "POWER MP+syncs").replace(
    " stw r8,0(r2) | lwz r4,0(r1) ;",
    " sync         | sync         ;\n stw r8,0(r2) | lwz r4,0(r1) ;",
)


def show(source: str) -> None:
    test = parse_litmus(source)
    result = run_litmus(test)
    stats = result.exploration.stats
    print(f"Test {test.name}: {result.status}")
    print(
        f"  explored {stats.states_visited} states, "
        f"{stats.final_states} final, in {stats.seconds:.2f}s"
    )
    print("  all allowed outcomes ('*' marks the condition's witness):")
    for line, satisfied in result.outcome_table():
        print(f"   {'*' if satisfied else ' '} {line}")
    print()


def main() -> None:
    print(__doc__)
    # Without barriers POWER's weak memory model allows the reader to see
    # the flag (y=1) and still read stale data (x=0).
    show(MP)
    # A sync on each side restores the expected message-passing behaviour:
    # the non-SC outcome disappears from the envelope.
    show(MP_SYNCS)


if __name__ == "__main__":
    main()
