"""E5 -- Fig. 3-style state display.

The paper's Fig. 3 shows a reachable MP+sync+ctrl system state: the storage
subsystem (writes seen, coherence, per-thread propagation lists,
unacknowledged syncs) and each thread's instruction instances with their
static regs_in/regs_out footprints.  This bench reaches a mid-exploration
state of the same test and renders it, checking the display carries the
same ingredients.
"""

from repro.litmus.library import by_name
from repro.litmus.runner import build_system


def _advance(system, steps):
    for _ in range(steps):
        transitions = system.enumerate_transitions()
        if not transitions:
            break
        system = system.apply(transitions[0])
    return system


def test_e5_state_rendering(model, benchmark):
    test = by_name("MP+sync+ctrl").parse()

    def reach_and_render():
        system, _ = build_system(test, model)
        mid = _advance(system, 3)
        return mid.render()

    text = benchmark(reach_and_render)

    print("\n=== E5: Fig. 3-style state (MP+sync+ctrl, 3 transitions in) ===")
    print(text)

    # The Fig. 3 ingredients must all be present.
    assert "Storage subsystem state:" in text
    assert "writes seen" in text
    assert "coherence" in text
    assert "events propagated to" in text
    assert "unacknowledged sync requests" in text
    assert "Thread 0 state:" in text
    assert "Thread 1 state:" in text
    assert "regs_in" in text and "regs_out" in text
    assert "stw" in text and "lwz" in text
    # Symbolic location names decorate addresses as in the paper's UI.
    assert "(x)" in text or "(y)" in text


def test_e5_enabled_transitions_labelled(model):
    test = by_name("MP+sync+ctrl").parse()
    system, _ = build_system(test, model)
    labels = [str(t) for t in system.enumerate_transitions()]
    print("\n=== E5: enabled transitions at the initial state ===")
    for label in labels:
        print(f"  {label}")
    assert labels, "initial state must offer transitions"
    assert any("satisfy read" in label for label in labels)
