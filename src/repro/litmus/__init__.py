"""Litmus-test front-end: parser, corpus, and the exhaustive runner."""

from .diy import GeneratedTest, generate, generate_from_names
from .emit import emit_litmus, format_condition
from .library import CorpusEntry, by_name, corpus, families
from .parser import LitmusSyntaxError, parse_litmus
from .runner import LitmusResult, build_system, run_litmus
from .test import LitmusTest, evaluate_condition

__all__ = [
    "CorpusEntry",
    "GeneratedTest",
    "LitmusResult",
    "LitmusSyntaxError",
    "LitmusTest",
    "build_system",
    "by_name",
    "corpus",
    "emit_litmus",
    "evaluate_condition",
    "families",
    "format_condition",
    "generate",
    "generate_from_names",
    "parse_litmus",
    "run_litmus",
]
