"""E6 -- exploration performance (paper section 8).

The paper reports that sequential checking takes minutes and exhaustive
concurrent checking hours on a single machine, with no optimisation beyond
the straightforward compilation of the definitions.  This bench measures
transitions/second and states explored for representative tests, plus the
effect of the eager-transition closure.
"""

from conftest import print_table
from run_bench import SEED_BASELINE

from repro.litmus.library import by_name
from repro.litmus.runner import build_system, run_litmus
from repro.testgen.compare import run_suite
from repro.testgen.sequential import generate_suite

REPRESENTATIVE = ["MP", "MP+syncs", "SB+syncs", "R", "WRC+sync+addr"]


def test_e6_concurrent_exploration_rate(model, benchmark):
    def explore_family():
        return {
            name: run_litmus(by_name(name).parse(), model)
            for name in REPRESENTATIVE
        }

    results = benchmark.pedantic(explore_family, rounds=1, iterations=1)

    rows = []
    total_states = total_transitions = total_seconds = 0.0
    for name in REPRESENTATIVE:
        stats = results[name].exploration.stats
        rate = stats.transitions_taken / stats.seconds if stats.seconds else 0
        rows.append(
            (
                name,
                stats.states_visited,
                stats.final_states,
                stats.transitions_taken,
                f"{stats.seconds:.2f}s",
                f"{rate:,.0f}/s",
            )
        )
        total_states += stats.states_visited
        total_transitions += stats.transitions_taken
        total_seconds += stats.seconds
    rows.append(
        (
            "TOTAL",
            int(total_states),
            "",
            int(total_transitions),
            f"{total_seconds:.2f}s",
            f"{total_transitions / total_seconds:,.0f}/s",
        )
    )
    print_table(
        "E6: exhaustive exploration performance "
        "(paper: concurrent checking takes hours at full corpus scale)",
        ["test", "states", "finals", "transitions", "time", "rate"],
        rows,
    )

    # Before/after against the recorded seed implementation (the fast state
    # engine: COW cloning, cached keys, memoised transition enumeration).
    seed_tests = SEED_BASELINE["per_test"]
    compare_rows = []
    for name in REPRESENTATIVE:
        stats = results[name].exploration.stats
        before = seed_tests[name]
        before_rate = before["transitions"] / before["seconds"]
        after_rate = (
            stats.transitions_taken / stats.seconds if stats.seconds else 0
        )
        compare_rows.append(
            (
                name,
                f"{before_rate:,.0f}/s",
                f"{after_rate:,.0f}/s",
                f"{after_rate / before_rate:.2f}x",
            )
        )
    seed_total = SEED_BASELINE["total"]
    seed_rate = seed_total["transitions"] / seed_total["seconds"]
    total_rate = total_transitions / total_seconds if total_seconds else 0
    compare_rows.append(
        (
            "TOTAL",
            f"{seed_rate:,.0f}/s",
            f"{total_rate:,.0f}/s",
            f"{total_rate / seed_rate:.2f}x",
        )
    )
    print_table(
        "E6: before/after transitions per second "
        "(seed implementation vs fast state engine, same machine)",
        ["test", "seed", "now", "speedup"],
        compare_rows,
    )

    # The state graph itself must be untouched by the engine work: same
    # states, same transitions, same finals as the seed exploration.
    for name in REPRESENTATIVE:
        stats = results[name].exploration.stats
        assert stats.states_visited == seed_tests[name]["states"]
        assert stats.transitions_taken == seed_tests[name]["transitions"]
        assert stats.final_states == seed_tests[name]["finals"]
    assert total_transitions > 0


def test_e6_sequential_rate(model, benchmark):
    tests = generate_suite(model, per_instruction=2, seed=99)

    report = benchmark(lambda: run_suite(model, tests))

    print(
        f"\nE6: sequential mode: {report.total} single-instruction tests "
        f"(paper: full 6984-test run takes minutes)"
    )
    assert report.all_passed


def test_e6_state_count_scales_with_interleaving(model):
    """More racing threads => more states: the combinatorial challenge."""
    small = run_litmus(by_name("CoRR").parse(), model)
    medium = run_litmus(by_name("MP").parse(), model)
    large = run_litmus(by_name("SB+syncs").parse(), model)
    counts = [
        r.exploration.stats.states_visited for r in (small, medium, large)
    ]
    print(f"\nE6: state-count growth CoRR -> MP -> SB+syncs: {counts}")
    assert counts[0] < counts[1] < counts[2]
