"""The reference backend: single-process depth-first search.

``SequentialDFS`` is the pre-refactor engine re-expressed over the
unified driver: states visited, transitions taken, final states,
deadlocks and outcome sets are bit-identical to the historical
``explore``/``find_witness`` loops (asserted by
``tests/test_search_strategies.py`` against the recorded E6 numbers and
by the fast-state-engine regression tests).

``reduction``/``context_bound`` opt in to the pruning layer
(``reduction.py``): sleep-set partial-order reduction preserves the
outcome envelope; a context bound may truncate it, which the result
reports as ``complete=False`` (and ``find_witness`` keeps loud by
raising ``ExplorationLimit`` instead of returning an unsupported
``None``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .base import SearchStrategy
from .core import (
    CollectOutcomes,
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    StopOnWitness,
    Witness,
    extend_trace,
    run_search,
)
from .dpor import prepare_dpor
from .reduction import make_reducer
from ..system import SystemState


@dataclass(frozen=True)
class SequentialDFS(SearchStrategy):
    """Memoised in-process DFS -- the baseline every backend must match."""

    reduction: str = "none"
    context_bound: Optional[int] = None
    #: With ``reduction="dpor"``: also canonicalise state keys modulo
    #: detected thread symmetry (sorted orbit representatives).  Ignored
    #: by the other reductions, whose seen keys must stay exact.
    symmetry: bool = False

    name = "sequential"

    def explore(
        self,
        initial: SystemState,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
        collect_deadlocks: bool = False,
    ) -> ExplorationResult:
        limit = self.resolve_limit(initial, max_states)
        stats = ExplorationStats()
        reducer = make_reducer(self.reduction, self.context_bound)
        if reducer is not None and reducer.dpor:
            canon, search_cells, finish = prepare_dpor(
                initial, self.symmetry, memory_cells, collect_deadlocks
            )
            seen = {}
        else:
            canon, finish = None, None
            search_cells = tuple(memory_cells)
            seen = {} if reducer is not None and reducer.sleep else set()
        visitor = CollectOutcomes(search_cells, collect_deadlocks)
        started = time.perf_counter()
        try:
            run_search(
                initial, visitor, limit=limit, stats=stats,
                strict_deadlocks=True, seen=seen, reducer=reducer,
                canon=canon,
            )
        finally:
            # Also on ExplorationLimit: the exception carries this same
            # stats object, and its partial work must not report zero
            # seconds (it would inflate downstream throughput numbers)
            # or zero coverage.
            stats.seconds = time.perf_counter() - started
            stats.unique_states = len(seen)
        return ExplorationResult(
            visitor.outcomes if finish is None else finish(visitor.outcomes),
            stats,
            visitor.deadlock_states,
            complete=reducer is None or not reducer.truncated,
        )

    def find_witness(
        self,
        initial: SystemState,
        predicate,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
    ) -> Optional[Witness]:
        limit = self.resolve_limit(initial, max_states)
        stats = ExplorationStats()
        visitor = StopOnWitness(predicate, tuple(memory_cells))
        # Witness traces must be concrete executions; the dpor driver's
        # canonical merging would hand back traces over orbit
        # representatives, so witness searches run the (equally sound,
        # envelope-preserving) sleep-set layer instead.
        reduction = "sleep" if self.reduction == "dpor" else self.reduction
        reducer = make_reducer(reduction, self.context_bound)
        seen = {} if reducer is not None and reducer.sleep else set()
        started = time.perf_counter()
        try:
            found = run_search(
                initial,
                visitor,
                limit=limit,
                stats=stats,
                strict_deadlocks=False,
                payload=(),
                extend=extend_trace,
                seen=seen,
                reducer=reducer,
            )
        finally:
            stats.seconds = time.perf_counter() - started
            stats.unique_states = len(seen)
        if found is None:
            if reducer is not None and reducer.truncated:
                # A truncated witness search proves nothing: ``None``
                # would read as unsatisfiability, which the cut paths
                # cannot support.
                raise ExplorationLimit(
                    f"context bound {self.context_bound} truncated the "
                    "witness search before it completed",
                    stats,
                )
            return None
        state, path = found
        return Witness(list(path), state, stats)
