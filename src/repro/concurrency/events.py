"""Memory events exchanged between threads and the storage subsystem.

Write and barrier identifiers are derived from (thread, instruction, index)
so that identical logical states reached along different interleavings get
identical identifiers -- the exhaustive explorer's memoisation depends on
this determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..sail.values import Bits

#: Thread id used for the initial-state writes.
INITIAL_TID = -1


class WriteId:
    """Identifier of one atomic write unit: (tid, ioid, index).

    Hand-rolled (rather than a frozen dataclass) so the hash -- recomputed
    millions of times by the explorer's keys, propagation indexes and
    coherence sets -- is computed once.  ``repr``, equality and ordering
    match the previous dataclass exactly.
    """

    __slots__ = ("tid", "ioid", "index", "_hash", "_sort_key")

    def __init__(self, tid: int, ioid: Tuple[int, int], index: int):
        self.tid = tid
        self.ioid = ioid  # (tid, index) instruction id; (-1, n) for initial
        self.index = index  # unit index within the instruction's write
        self._sort_key = (tid, ioid, index)
        self._hash = hash(self._sort_key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other):
        if other.__class__ is WriteId:
            return self._sort_key == other._sort_key
        return NotImplemented

    def __lt__(self, other):
        if other.__class__ is WriteId:
            return self._sort_key < other._sort_key
        return NotImplemented

    def __le__(self, other):
        if other.__class__ is WriteId:
            return self._sort_key <= other._sort_key
        return NotImplemented

    def __gt__(self, other):
        if other.__class__ is WriteId:
            return self._sort_key > other._sort_key
        return NotImplemented

    def __ge__(self, other):
        if other.__class__ is WriteId:
            return self._sort_key >= other._sort_key
        return NotImplemented

    def __repr__(self) -> str:
        return f"WriteId(tid={self.tid!r}, ioid={self.ioid!r}, index={self.index!r})"


@dataclass(frozen=True)
class Write:
    """One architecturally atomic unit of a memory write."""

    wid: WriteId
    addr: int
    size: int
    value: Bits  # 8*size bits
    is_conditional: bool = False  # produced by a store-conditional
    #: Memoised ``str(self)`` -- rebuilt transition labels dominate without
    #: it; excluded from equality/hash.
    _str: Optional[str] = field(default=None, compare=False, repr=False)

    @property
    def tid(self) -> int:
        return self.wid.tid

    def overlaps(self, addr: int, size: int) -> bool:
        return self.addr < addr + size and addr < self.addr + self.size

    def overlaps_write(self, other: "Write") -> bool:
        return self.overlaps(other.addr, other.size)

    def covers(self, addr: int, size: int) -> bool:
        return self.addr <= addr and addr + size <= self.addr + self.size

    def byte(self, addr: int) -> Bits:
        """The written byte at absolute address ``addr``."""
        offset = addr - self.addr
        if not 0 <= offset < self.size:
            raise ValueError(f"address {addr:#x} outside write {self}")
        return self.value.slice(8 * offset, 8 * offset + 7)

    def extract(self, addr: int, size: int) -> Bits:
        offset = addr - self.addr
        return self.value.slice(8 * offset, 8 * (offset + size) - 1)

    def __str__(self) -> str:
        cached = self._str
        if cached is None:
            value = (
                f"0x{self.value.to_int():0{2 * self.size}x}"
                if self.value.is_known
                else self.value.to_bitstring()
            )
            cached = f"W 0x{self.addr:016x}/{self.size}={value}"
            object.__setattr__(self, "_str", cached)
        return cached


class BarrierId:
    """Identifier of a committed barrier; see ``WriteId`` for the design."""

    __slots__ = ("tid", "ioid", "_hash", "_sort_key")

    def __init__(self, tid: int, ioid: Tuple[int, int]):
        self.tid = tid
        self.ioid = ioid
        self._sort_key = (tid, ioid)
        self._hash = hash(self._sort_key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other):
        if other.__class__ is BarrierId:
            return self._sort_key == other._sort_key
        return NotImplemented

    def __lt__(self, other):
        if other.__class__ is BarrierId:
            return self._sort_key < other._sort_key
        return NotImplemented

    def __le__(self, other):
        if other.__class__ is BarrierId:
            return self._sort_key <= other._sort_key
        return NotImplemented

    def __gt__(self, other):
        if other.__class__ is BarrierId:
            return self._sort_key > other._sort_key
        return NotImplemented

    def __ge__(self, other):
        if other.__class__ is BarrierId:
            return self._sort_key >= other._sort_key
        return NotImplemented

    def __repr__(self) -> str:
        return f"BarrierId(tid={self.tid!r}, ioid={self.ioid!r})"


@dataclass(frozen=True)
class BarrierEvent:
    """A sync/lwsync/eieio barrier committed to the storage subsystem."""

    bid: BarrierId
    kind: str  # "sync" | "lwsync" | "eieio"

    @property
    def tid(self) -> int:
        return self.bid.tid

    def __str__(self) -> str:
        return f"B({self.kind}) t{self.tid}"


def initial_write(index: int, addr: int, size: int, value: Bits) -> Write:
    """A write representing the initial contents of a memory location."""
    return Write(
        WriteId(INITIAL_TID, (INITIAL_TID, index), 0), addr, size, value
    )
