"""Parallel litmus-corpus exploration.

State graphs of distinct litmus tests are independent, so the natural unit
of parallelism is one test: the corpus is sharded per test across
``multiprocessing`` workers, each of which builds (or, with the ``fork``
start method, inherits) the process-wide ISA model and runs the ordinary
exhaustive oracle.  Results come back as slim, picklable
``CorpusTestResult`` records whose ``ExplorationStats`` are merged into
corpus-level totals.

``explore_corpus`` takes ``(name, source)`` pairs so workers re-parse the
litmus source themselves -- litmus files are tiny, and shipping text keeps
the worker protocol independent of every internal class being picklable.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .exhaustive import ExplorationLimit, ExplorationStats
from .params import DEFAULT_PARAMS, ModelParams

#: One unit of work: (test name, litmus source, params, max_states).
Task = Tuple[str, str, ModelParams, Optional[int]]


@dataclass
class CorpusTestResult:
    """Slim, picklable summary of one test's exhaustive run."""

    name: str
    status: str  # litmus verdict ("Allowed", ...) or "StateLimit" on budget
    witnessed: bool
    holds_always: bool
    outcomes: Set[Tuple]  # the full outcome set (register/memory tuples)
    stats: ExplorationStats
    error: Optional[str] = None  # set when the state budget was exhausted

    @property
    def outcome_count(self) -> int:
        return len(self.outcomes)


@dataclass
class CorpusReport:
    """All per-test results of a corpus run plus scheduling metadata."""

    results: List[CorpusTestResult]
    jobs: int
    wall_seconds: float

    def merged_stats(self) -> ExplorationStats:
        """Corpus totals: sums of counters, max frontier, summed CPU time."""
        merged = ExplorationStats()
        for result in self.results:
            merged.merge(result.stats)
        return merged

    def by_name(self, name: str) -> CorpusTestResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)


def default_job_count() -> int:
    return os.cpu_count() or 1


def _init_worker() -> None:
    """Warm the process-wide ISA model once per worker."""
    from ..isa.model import default_model

    default_model()


def _run_task(task: Task) -> CorpusTestResult:
    """Worker body: parse and exhaustively run one litmus test."""
    # Imported lazily: this module lives below repro.litmus in the package
    # graph, and the imports also must happen inside spawned workers.
    from ..isa.model import default_model
    from ..litmus.parser import parse_litmus
    from ..litmus.runner import run_litmus

    name, source, params, max_states = task
    test = parse_litmus(source)
    try:
        result = run_litmus(
            test, default_model(), params=params, max_states=max_states
        )
    except ExplorationLimit as limit:
        # A budget-exhausted test is a reportable per-test outcome, not a
        # corpus-wide crash (e.g. IRIW+syncs exceeds the Python budget).
        return CorpusTestResult(
            name=name if name else test.name,
            status="StateLimit",
            witnessed=False,
            holds_always=False,
            outcomes=set(),
            stats=ExplorationStats(),
            error=str(limit),
        )
    return CorpusTestResult(
        name=name if name else test.name,
        status=result.status,
        witnessed=result.witnessed,
        holds_always=result.holds_always,
        outcomes=result.outcomes,
        stats=result.exploration.stats,
    )


def explore_corpus(
    items: Sequence[Tuple[str, str]],
    jobs: Optional[int] = None,
    params: ModelParams = DEFAULT_PARAMS,
    max_states: Optional[int] = None,
) -> CorpusReport:
    """Exhaustively run a corpus of litmus tests, sharded across workers.

    ``items`` is a sequence of (name, litmus source) pairs; ``jobs`` defaults
    to the machine's CPU count.  ``jobs=1`` (or a single test) runs inline in
    this process -- same results, no pool overhead.
    """
    resolved_jobs = jobs if jobs is not None else default_job_count()
    if resolved_jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {resolved_jobs}")
    tasks: List[Task] = [
        (name, source, params, max_states) for name, source in items
    ]
    resolved_jobs = min(resolved_jobs, max(1, len(tasks)))
    started = time.perf_counter()
    if resolved_jobs == 1:
        results = [_run_task(task) for task in tasks]
    else:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else None
        context = multiprocessing.get_context(method)
        if method == "fork":
            # Parse the ISA model once here; forked workers inherit it.
            _init_worker()
        with context.Pool(
            processes=resolved_jobs, initializer=_init_worker
        ) as pool:
            # Per-test granularity (chunksize=1): state-graph sizes vary by
            # orders of magnitude, so fine-grained scheduling load-balances.
            results = pool.map(_run_task, tasks, chunksize=1)
    wall = time.perf_counter() - started
    return CorpusReport(results=results, jobs=resolved_jobs, wall_seconds=wall)
