"""Cross-strategy equivalence for the pluggable search subsystem.

Every backend must answer the oracle questions identically:

  * ``SequentialDFS`` stays bit-identical (states visited, transitions
    taken, outcomes) to the pre-refactor engine -- pinned against the
    recorded seed-baseline counters;
  * ``ShardedParallel`` (jobs=2) and ``BoundedIterative`` (ample budget)
    produce verdicts and outcome sets identical to ``SequentialDFS`` for
    the curated corpus and a seed-0 sample of generated tests;
  * ``BoundedIterative`` degrades to a *flagged partial* result instead
    of raising, and ``ExplorationLimit`` carries the partial stats so
    budget exhaustion no longer zeroes work accounting.

The heavier 3-4-thread curated shapes run under the ``slow`` marker; the
full slow sweep is opt-in via ``PPCMEM2_SEARCH_FULL=1``.
"""

import os

import pytest

from repro.concurrency.exhaustive import ExplorationLimit, explore, find_witness
from repro.concurrency.parallel import default_job_count, plan_worker_budget
from repro.concurrency.search import (
    BoundedIterative,
    SequentialDFS,
    ShardedParallel,
    make_strategy,
    resolve_strategy,
)
from repro.isa.model import default_model
from repro.litmus.library import by_name, corpus
from repro.litmus.runner import build_system, run_corpus, run_litmus

#: 3-4 thread tests whose exhaustive exploration takes minutes
#: (mirrors tests/test_litmus_corpus.py; IRIW+syncs exceeds the budget).
SLOW = {
    "IRIW", "IRIW+addrs", "IRIW+syncs", "RWC+syncs", "ISA2",
    "WRC", "WRC+addrs", "WRC+sync+addr", "WRC+lwsync+addr",
    "ISA2+sync+data+addr", "2+2W", "2+2W+syncs", "2+2W+lwsyncs",
    "LB+datas+WW", "LB+addrs+WW", "PPOCA", "PPOAA",
}

FAST_NAMES = sorted(e.name for e in corpus() if e.name not in SLOW)
#: Representative heavy shapes checked by default under ``slow``.
SLOW_SAMPLE = ["WRC+sync+addr", "2+2W+syncs", "LB+addrs+WW"]
SLOW_FULL = sorted(SLOW - {"IRIW+syncs"})

STRATEGIES = [
    ShardedParallel(jobs=2, shard_depth=3),
    BoundedIterative(),
]


@pytest.fixture(scope="module")
def model():
    return default_model()


def _assert_equivalent(name, model):
    test = by_name(name).parse()
    reference = run_litmus(test, model)  # SequentialDFS default
    assert reference.exploration.complete
    for strategy in STRATEGIES:
        result = run_litmus(test, model, strategy=strategy)
        label = f"{name} via {strategy.name}"
        assert result.exploration.complete, label
        assert result.status == reference.status, label
        assert result.outcomes == reference.outcomes, label
        assert result.witnessed == reference.witnessed, label
        assert result.holds_always == reference.holds_always, label


class TestCuratedCorpusEquivalence:
    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_fast_entries(self, model, name):
        _assert_equivalent(name, model)

    @pytest.mark.slow
    @pytest.mark.parametrize("name", SLOW_SAMPLE)
    def test_slow_sample_entries(self, model, name):
        _assert_equivalent(name, model)

    @pytest.mark.slow
    @pytest.mark.skipif(
        not os.environ.get("PPCMEM2_SEARCH_FULL"),
        reason="full slow-corpus strategy sweep is opt-in "
        "(PPCMEM2_SEARCH_FULL=1)",
    )
    @pytest.mark.parametrize("name", sorted(set(SLOW_FULL) - set(SLOW_SAMPLE)))
    def test_slow_full_sweep(self, model, name):
        _assert_equivalent(name, model)


class TestGeneratedSampleEquivalence:
    def test_seed0_sample(self, model):
        from repro.litmus import diy

        tests = diy.generate(0, 8, max_threads=2)
        assert len(tests) == 8
        for generated in tests:
            reference = run_litmus(generated.test, model)
            for strategy in STRATEGIES:
                result = run_litmus(generated.test, model, strategy=strategy)
                label = f"{generated.name} via {strategy.name}"
                assert result.status == reference.status, label
                assert result.outcomes == reference.outcomes, label


class TestSequentialBitIdentity:
    """The refactored sequential engine equals the recorded baseline."""

    #: (states, transitions, finals) pinned from BENCH_e6.json / the seed.
    EXPECTED = {
        "MP": (316, 752, 26),
        "SB+syncs": (1125, 2542, 32),
        "R": (1390, 3284, 106),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_counters_match_baseline(self, model, name):
        result = run_litmus(by_name(name).parse(), model)
        stats = result.exploration.stats
        states, transitions, finals = self.EXPECTED[name]
        assert stats.states_visited == states
        assert stats.transitions_taken == transitions
        assert stats.final_states == finals

    def test_facade_strategy_parameter(self, model):
        system, _ = build_system(by_name("MP").parse(), model)
        default = explore(system)
        named = explore(system, strategy="sequential")
        sharded = explore(system, strategy=ShardedParallel(jobs=2))
        assert named.outcomes == default.outcomes
        assert named.stats.states_visited == default.stats.states_visited
        assert sharded.outcomes == default.outcomes


class TestWitnessEquivalence:
    @pytest.mark.parametrize(
        "strategy",
        [SequentialDFS(), ShardedParallel(jobs=2, shard_depth=2),
         BoundedIterative(initial_budget=64)],
        ids=lambda s: s.name,
    )
    def test_witness_found_and_replayable(self, model, strategy):
        system, _ = build_system(by_name("MP").parse(), model)
        witness = strategy.find_witness(system, lambda outcome: True)
        assert witness is not None
        trace, final = witness
        assert final.is_final()
        assert len(trace) > 0
        assert witness.stats.states_visited > 0
        # The trace must actually drive the initial state to a final one.
        state = system
        for transition in trace:
            state = state.apply(transition)
        assert state.is_final()

    @pytest.mark.parametrize(
        "strategy",
        [SequentialDFS(), ShardedParallel(jobs=2, shard_depth=2),
         BoundedIterative()],
        ids=lambda s: s.name,
    )
    def test_unsatisfiable_predicate(self, model, strategy):
        system, _ = build_system(by_name("MP").parse(), model)
        assert strategy.find_witness(system, lambda outcome: False) is None


class TestBoundedDegradation:
    def test_partial_result_is_flagged_not_raised(self, model):
        test = by_name("SB+syncs").parse()
        result = run_litmus(
            test, model,
            strategy=BoundedIterative(initial_budget=64),
            max_states=200,
        )
        assert result.status == "StateLimit"
        assert not result.exploration.complete
        assert result.exploration.stats.states_visited > 0
        full = run_litmus(test, model)
        # Partial outcome sets under-approximate the envelope.
        assert result.outcomes <= full.outcomes

    def test_partial_witness_yields_sound_allowed(self, model):
        """Partial outcome sets under-approximate the envelope, so an
        existential verdict found within the budget survives
        incompleteness instead of degrading to StateLimit."""
        test = by_name("MP").parse()  # exists-test, witness found early
        result = run_litmus(
            test, model,
            strategy=BoundedIterative(initial_budget=80),
            max_states=80,
        )
        assert not result.exploration.complete
        assert result.witnessed
        assert result.status == "Allowed"

    def test_partial_without_witness_stays_statelimit(self, model):
        test = by_name("MP").parse()
        result = run_litmus(
            test, model,
            strategy=BoundedIterative(initial_budget=40),
            max_states=40,
        )
        assert not result.exploration.complete
        assert not result.witnessed
        assert result.status == "StateLimit"

    def test_ample_budget_is_complete_and_identical(self, model):
        test = by_name("MP").parse()
        bounded = run_litmus(test, model, strategy=BoundedIterative())
        reference = run_litmus(test, model)
        assert bounded.exploration.complete
        assert bounded.outcomes == reference.outcomes
        # MP fits the first budget: the work accounting is identical too.
        assert (
            bounded.exploration.stats.states_visited
            == reference.exploration.stats.states_visited
        )


class TestBoundedWitnessSoundness:
    def test_exhausted_witness_search_raises_not_none(self, model):
        """An inconclusive witness search must not look like a proof."""
        system, _ = build_system(by_name("SB+syncs").parse(), model)
        with pytest.raises(ExplorationLimit) as excinfo:
            BoundedIterative(initial_budget=16).find_witness(
                system, lambda outcome: False, max_states=50
            )
        assert excinfo.value.stats is not None
        assert excinfo.value.stats.states_visited > 0


class TestShardedWorkerCrash:
    def test_dead_worker_raises_instead_of_hanging(self, model, monkeypatch):
        """A worker killed before reporting must fail loudly, not hang."""
        import os as os_module

        from repro.concurrency.search import sharded as sharded_module
        from repro.concurrency.thread import ModelError

        def crash(worker_id, root_indexes, mode, queue):
            os_module._exit(17)

        monkeypatch.setattr(sharded_module, "_shard_worker", crash)
        system, _ = build_system(by_name("SB+syncs").parse(), model)
        with pytest.raises(ModelError, match="died without reporting"):
            ShardedParallel(jobs=2, shard_depth=3).explore(system)


class TestPartialStatsAccounting:
    def test_exploration_limit_carries_stats(self, model):
        system, _ = build_system(by_name("SB+syncs").parse(), model)
        with pytest.raises(ExplorationLimit) as excinfo:
            explore(system, max_states=100)
        assert excinfo.value.stats is not None
        # The budget is checked *before* a state is popped and counted:
        # partial stats equal the budget exactly (regression: the old
        # loop counted first and reported 101).
        assert excinfo.value.stats.states_visited == 100

    def test_reduced_limit_stats_equal_budget(self, model):
        system, _ = build_system(by_name("SB+syncs").parse(), model)
        with pytest.raises(ExplorationLimit) as excinfo:
            explore(system, max_states=100, reduction="sleep")
        assert excinfo.value.stats.states_visited == 100

    def test_corpus_totals_count_exhausted_work(self, model):
        entry = by_name("SB+syncs")
        report = run_corpus([entry], jobs=1, max_states=100)
        result = report.results[0]
        assert result.status == "StateLimit"
        assert not result.complete
        assert result.error
        assert result.stats.states_visited > 0
        assert report.merged_stats().states_visited > 0


class TestWorkerBudgetComposition:
    def test_affinity_respected(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_job_count() == 2

    def test_cpu_count_fallback(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity")
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert default_job_count() == 3

    def test_plan_prefers_corpus_sharding(self):
        assert plan_worker_budget(4, 10) == (4, 1)
        assert plan_worker_budget(4, 4) == (4, 1)

    def test_plan_distributes_leftover_budget_as_intra_jobs(self):
        # 2 tests under --jobs 8 used to strand 6 workers as (2, 1).
        assert plan_worker_budget(8, 2) == (2, 4)
        assert plan_worker_budget(8, 3) == (3, 2)
        assert plan_worker_budget(3, 2) == (2, 1)  # no whole worker spare
        assert plan_worker_budget(5, 4) == (4, 1)

    def test_plan_gives_single_test_the_budget(self):
        assert plan_worker_budget(4, 1) == (1, 4)
        assert plan_worker_budget(1, 5) == (1, 1)

    def test_plan_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            plan_worker_budget(0, 3)

    def test_plan_budget_smaller_than_corpus(self):
        # Fewer workers than tests: every worker runs tests back to
        # back sequentially; no intra-test splitting.
        assert plan_worker_budget(2, 5) == (2, 1)
        assert plan_worker_budget(1, 1) == (1, 1)
        assert plan_worker_budget(7, 100) == (7, 1)

    def test_plan_empty_corpus_does_not_oversubscribe(self):
        # An empty corpus used to plan (1, budget), handing the whole
        # budget to a pool with nothing to run.
        assert plan_worker_budget(8, 0) == (1, 1)
        assert plan_worker_budget(1, 0) == (1, 1)

    def test_plan_never_oversubscribes_budget(self):
        for budget in range(1, 13):
            for test_count in range(0, 13):
                corpus_jobs, intra_jobs = plan_worker_budget(
                    budget, test_count
                )
                assert corpus_jobs >= 1 and intra_jobs >= 1
                assert corpus_jobs * intra_jobs <= max(budget, 1), (
                    budget, test_count, corpus_jobs, intra_jobs,
                )

    def test_single_test_corpus_uses_intra_test_workers(self, model):
        # One test + jobs=2 + sharded: the budget flows to the frontier
        # workers; verdict and outcomes still match sequential.
        entry = by_name("SB+syncs")
        report = run_corpus([entry], jobs=2, strategy="sharded")
        assert report.jobs == 1
        result = report.results[0]
        reference = run_litmus(entry.parse(), model)
        assert result.status == reference.status
        assert result.outcomes == reference.outcomes

    def test_multi_test_corpus_with_sharded_strategy(self, model):
        entries = [by_name("MP"), by_name("SB")]
        report = run_corpus(entries, jobs=2, strategy="sharded")
        assert report.jobs == 2
        for result in report.results:
            reference = run_litmus(by_name(result.name).parse(), model)
            assert result.status == reference.status
            assert result.outcomes == reference.outcomes

    def test_multi_test_corpus_spends_leftover_budget_intra(self, model):
        # 2 tests + jobs=4: the plan is (2, 2), so the corpus runs in a
        # non-daemonic executor whose workers fork 2 frontier shards
        # each.  Verdicts and outcome sets still match sequential.
        entries = [by_name("MP"), by_name("SB+syncs")]
        report = run_corpus(entries, jobs=4, strategy="sharded")
        assert report.jobs == 2
        for result in report.results:
            reference = run_litmus(by_name(result.name).parse(), model)
            assert result.status == reference.status
            assert result.outcomes == reference.outcomes


class TestStrategyResolution:
    def test_resolve_none_is_sequential(self):
        assert isinstance(resolve_strategy(None), SequentialDFS)

    def test_resolve_instance_passthrough(self):
        strategy = ShardedParallel(jobs=3)
        assert resolve_strategy(strategy) is strategy

    def test_make_by_name_with_options(self):
        strategy = make_strategy("sharded", jobs=4, shard_depth=5)
        assert strategy == ShardedParallel(jobs=4, shard_depth=5)
        assert isinstance(make_strategy("bounded"), BoundedIterative)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            make_strategy("quantum")
        with pytest.raises(TypeError):
            resolve_strategy(42)

    def test_strategies_are_picklable(self):
        import pickle

        for strategy in (SequentialDFS(), ShardedParallel(jobs=2),
                         BoundedIterative(initial_budget=128)):
            clone = pickle.loads(pickle.dumps(strategy))
            assert clone == strategy


class TestReductionEquivalence:
    """Sleep-set reduction preserves the verdict and the outcome set.

    The matrix crosses reduction on/off with every backend: outcome
    sets must be bit-identical to unreduced ``SequentialDFS`` on the
    curated corpus and a seed-0 generated sample.
    """

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_fast_entries_sequential(self, model, name):
        test = by_name(name).parse()
        reference = run_litmus(test, model)
        reduced = run_litmus(test, model, reduction="sleep")
        assert reduced.exploration.complete, name
        assert reduced.status == reference.status, name
        assert reduced.outcomes == reference.outcomes, name
        assert reduced.witnessed == reference.witnessed, name

    @pytest.mark.parametrize(
        "strategy",
        [None, ShardedParallel(jobs=2, shard_depth=3), BoundedIterative()],
        ids=lambda s: "sequential" if s is None else s.name,
    )
    def test_strategy_matrix(self, model, strategy):
        for name in ("MP", "SB+syncs", "R"):
            test = by_name(name).parse()
            reference = run_litmus(test, model)
            reduced = run_litmus(
                test, model, strategy=strategy, reduction="sleep"
            )
            label = f"{name} reduced via {strategy}"
            assert reduced.exploration.complete, label
            assert reduced.status == reference.status, label
            assert reduced.outcomes == reference.outcomes, label

    def test_gen_seed0_sample(self, model):
        from repro.litmus import diy

        for generated in diy.generate(0, 8, max_threads=2):
            reference = run_litmus(generated.test, model)
            reduced = run_litmus(generated.test, model, reduction="sleep")
            label = generated.name
            assert reduced.status == reference.status, label
            assert reduced.outcomes == reference.outcomes, label

    @pytest.mark.slow
    @pytest.mark.parametrize("name", SLOW_SAMPLE)
    def test_slow_sample_entries(self, model, name):
        test = by_name(name).parse()
        reference = run_litmus(test, model)
        reduced = run_litmus(test, model, reduction="sleep")
        assert reduced.status == reference.status, name
        assert reduced.outcomes == reference.outcomes, name

    def test_reduction_visits_fewer_states(self, model):
        test = by_name("SB+syncs").parse()
        reference = run_litmus(test, model)
        reduced = run_litmus(test, model, reduction="sleep")
        assert (
            reduced.exploration.stats.states_visited
            < reference.exploration.stats.states_visited
        )

    def test_unique_states_accounted(self, model):
        result = run_litmus(by_name("MP").parse(), model)
        stats = result.exploration.stats
        assert 0 < stats.unique_states <= stats.states_visited


class TestDporEquivalence:
    """Source-DPOR preserves the verdict and the outcome set.

    ``reduction="dpor"`` must answer every oracle question identically
    to the unreduced reference on the curated corpus and a seed-0
    generated sample, for both backends that run the real driver
    (``SequentialDFS`` and ``BoundedIterative``).  ``ShardedParallel``
    accepts the option but runs its forked pipeline as sleep sets
    (see ``ShardedParallel._shard_reduction``), so it is checked for
    acceptance + equivalence, not for dpor state counts.
    """

    @pytest.mark.parametrize("name", FAST_NAMES)
    def test_fast_entries_sequential(self, model, name):
        test = by_name(name).parse()
        reference = run_litmus(test, model)
        reduced = run_litmus(test, model, reduction="dpor")
        assert reduced.exploration.complete, name
        assert reduced.status == reference.status, name
        assert reduced.outcomes == reference.outcomes, name
        assert reduced.witnessed == reference.witnessed, name

    @pytest.mark.parametrize(
        "strategy",
        [None, BoundedIterative(), ShardedParallel(jobs=2, shard_depth=3)],
        ids=lambda s: "sequential" if s is None else s.name,
    )
    def test_strategy_matrix(self, model, strategy):
        for name in ("MP", "SB+syncs", "R"):
            test = by_name(name).parse()
            reference = run_litmus(test, model)
            reduced = run_litmus(
                test, model, strategy=strategy, reduction="dpor"
            )
            label = f"{name} dpor via {strategy}"
            assert reduced.exploration.complete, label
            assert reduced.status == reference.status, label
            assert reduced.outcomes == reference.outcomes, label

    def test_gen_seed0_sample(self, model):
        from repro.litmus import diy

        for generated in diy.generate(0, 8, max_threads=2):
            reference = run_litmus(generated.test, model)
            reduced = run_litmus(generated.test, model, reduction="dpor")
            label = generated.name
            assert reduced.status == reference.status, label
            assert reduced.outcomes == reference.outcomes, label

    @pytest.mark.parametrize("name", ["ATOM-base", "ATOM-intervene"])
    def test_atomics_disabled_sibling_regression(self, model, name):
        """Store-conditional branches disable each other; taking one
        makes the sibling never *occur* below, so an occurrence-based
        race scan alone would drop the other resolution's outcomes
        (ATOM-base lost its success final before the disabled-sibling
        repair in ``run_dpor``).  Pin both resolutions survive."""
        test = by_name(name).parse()
        reference = run_litmus(test, model)
        reduced = run_litmus(test, model, reduction="dpor")
        assert reduced.exploration.complete, name
        assert reduced.outcomes == reference.outcomes, name
        assert reduced.status == reference.status, name

    def test_dpor_visits_no_more_states_than_sleep(self, model):
        test = by_name("SB+syncs").parse()
        sleep = run_litmus(test, model, reduction="sleep")
        dpor = run_litmus(test, model, reduction="dpor")
        assert (
            dpor.exploration.stats.states_visited
            < sleep.exploration.stats.states_visited
        )

    @pytest.mark.slow
    @pytest.mark.parametrize("name", SLOW_SAMPLE)
    def test_slow_sample_entries(self, model, name):
        test = by_name(name).parse()
        reference = run_litmus(test, model)
        reduced = run_litmus(test, model, reduction="dpor")
        assert reduced.status == reference.status, name
        assert reduced.outcomes == reference.outcomes, name


class TestSymmetryCanonicalisation:
    """Thread-symmetry canonicalisation must not change any answer.

    The canonicaliser maps each state key to a sorted orbit
    representative under the permutation group of identical threads;
    on asymmetric tests the group is trivial and the run must stay
    bit-identical, on permutation-rich generated shapes the outcome
    sets must still match exactly (soundness: the quotient merges only
    genuinely equivalent states).
    """

    @pytest.mark.parametrize("reduction", ["sleep", "dpor"])
    def test_corpus_outcomes_identical_with_and_without(
        self, model, reduction
    ):
        for name in ("MP", "SB", "SB+syncs", "ATOM-base"):
            test = by_name(name).parse()
            plain = run_litmus(test, model, reduction=reduction)
            canon = run_litmus(
                test, model, reduction=reduction, symmetry=True
            )
            label = f"{name} {reduction}+symmetry"
            assert canon.exploration.complete, label
            assert canon.status == plain.status, label
            assert canon.outcomes == plain.outcomes, label

    def test_generated_3thread_outcomes_identical(self, model):
        """3-thread generated shapes are where permutation-equivalent
        threads actually appear; the quotient must preserve the full
        outcome set there, not just the verdict."""
        from repro.litmus import diy

        for generated in diy.generate(0, 4, max_threads=3):
            plain = run_litmus(generated.test, model, reduction="dpor")
            canon = run_litmus(
                generated.test, model, reduction="dpor", symmetry=True
            )
            label = generated.name
            assert canon.status == plain.status, label
            assert canon.outcomes == plain.outcomes, label

    def test_symmetry_never_inflates_unique_states(self, model):
        test = by_name("SB+syncs").parse()
        plain = run_litmus(test, model, reduction="dpor")
        canon = run_litmus(test, model, reduction="dpor", symmetry=True)
        assert (
            canon.exploration.stats.unique_states
            <= plain.exploration.stats.unique_states
        )

    def test_make_strategy_carries_symmetry(self):
        strategy = make_strategy("sequential", symmetry=True)
        assert strategy == SequentialDFS(symmetry=True)
        bounded = make_strategy("bounded", reduction="dpor", symmetry=True)
        assert bounded.symmetry and bounded.reduction == "dpor"


class TestContextBound:
    def test_context_bound_flags_partial(self, model):
        test = by_name("SB+syncs").parse()
        full = run_litmus(test, model)
        bounded = run_litmus(test, model, context_bound=1)
        assert not bounded.exploration.complete
        assert bounded.outcomes <= full.outcomes

    def test_ample_context_bound_is_complete(self, model):
        test = by_name("MP").parse()
        full = run_litmus(test, model)
        bounded = run_litmus(test, model, context_bound=64)
        assert bounded.exploration.complete
        assert bounded.outcomes == full.outcomes


class TestStablePartitioning:
    """Root-to-worker assignment must not depend on PYTHONHASHSEED."""

    _SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.concurrency.search.sharded import _stable_digest
from repro.isa.model import default_model
from repro.litmus.library import by_name
from repro.litmus.runner import build_system
system, _ = build_system(by_name("MP").parse(), default_model())
digests = [_stable_digest(system.key())]
for transition in system.enumerate_transitions():
    digests.append(_stable_digest(system.apply(transition).key()))
print(",".join(str(d) for d in digests))
"""

    def test_digests_identical_across_hash_seeds(self, tmp_path):
        import subprocess
        import sys as sys_module

        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
        )
        script = tmp_path / "digest_probe.py"
        script.write_text(self._SCRIPT.format(src=src))
        outputs = []
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys_module.executable, str(script)],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
        assert outputs[0]  # non-empty: the probe really ran


class TestCliStrategyFlags:
    def _write(self, tmp_path, name):
        path = tmp_path / f"{name}.litmus"
        path.write_text(by_name(name).source)
        return str(path)

    def test_litmus_command_with_sharded(self, tmp_path, capsys):
        from repro.tools.cli import main

        path = self._write(tmp_path, "MP")
        assert main(
            ["litmus", path, "--strategy", "sharded", "--shard-depth", "2",
             "--jobs", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "MP" in output and "Merged stats:" in output

    def test_run_command_with_strategies(self, tmp_path, capsys):
        from repro.tools.cli import main

        path = self._write(tmp_path, "MP")
        for extra in (["--strategy", "bounded"],
                      ["--strategy", "sharded", "--jobs", "2"]):
            assert main(["run", path, *extra]) == 0
            assert "Test MP: Allowed" in capsys.readouterr().out

    def test_run_command_with_reduction(self, tmp_path, capsys):
        from repro.tools.cli import main

        path = self._write(tmp_path, "MP")
        assert main(["run", path, "--reduction", "sleep"]) == 0
        assert "Test MP: Allowed" in capsys.readouterr().out

    def test_run_command_with_dpor_and_symmetry(self, tmp_path, capsys):
        from repro.tools.cli import main

        path = self._write(tmp_path, "MP")
        assert main(
            ["run", path, "--reduction", "dpor", "--symmetry"]
        ) == 0
        assert "Test MP: Allowed" in capsys.readouterr().out

    def test_gen_check_accepts_strategy(self, capsys):
        from repro.tools.cli import main

        code = main(
            ["gen", "--seed", "1", "--size", "2", "--check",
             "--jobs", "2", "--strategy", "bounded",
             "--max-states", "20000"]
        )
        captured = capsys.readouterr()
        assert code in (0, 1)  # soundness verdict, not a crash
        assert "Oracle:" in captured.err
