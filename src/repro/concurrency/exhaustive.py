"""Exhaustive exploration: compute the set of all allowed executions.

This is the test-oracle mode of section 6: a memoised depth-first search
over the system-state transition graph.  Final states are summarised as
*outcomes* -- per-thread final register values plus possible final memory
values (one outcome per linearisation of residual coherence freedom).

The search is exact, not a sampling: with the eager-transition closure the
branching transitions are exactly the observable ordering choices, so the
collected outcome set is the architectural envelope for the test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..sail.values import Bits
from .system import SystemState, Transition
from .thread import ModelError

#: An outcome: ((tid, reg, value-int-or-None) ...) + ((addr,size,value) ...).
Outcome = Tuple[Tuple, Tuple]


class ExplorationLimit(Exception):
    """The state budget was exhausted before the search completed."""


@dataclass
class ExplorationStats:
    states_visited: int = 0
    transitions_taken: int = 0
    final_states: int = 0
    deadlocks: int = 0
    max_frontier: int = 0
    seconds: float = 0.0


@dataclass
class ExplorationResult:
    outcomes: Set[Outcome]
    stats: ExplorationStats
    deadlock_states: List[SystemState] = field(default_factory=list)

    def register_outcomes(self) -> Set[Tuple]:
        """Just the register parts of the outcomes."""
        return {registers for registers, _memory in self.outcomes}


def _registers_of_interest(system: SystemState) -> List[Tuple[int, str]]:
    names: List[Tuple[int, str]] = []
    for tid, thread in sorted(system.threads.items()):
        seen = set(thread.initial_registers)
        for instance in thread.instances.values():
            for record in instance.reg_writes:
                seen.add(record.slice.reg)
            for out in instance.static_fp.regs_out:
                seen.add(out.reg)
        for name in sorted(seen):
            names.append((tid, name))
    return names


def _outcome_of(
    system: SystemState, memory_cells: Iterable[Tuple[int, int]]
) -> List[Outcome]:
    registers = []
    for tid, name in _registers_of_interest(system):
        value = system.threads[tid].final_register_value(system.model, name)
        registers.append(
            (tid, name, value.to_int() if value.is_known else None)
        )
    register_part = tuple(registers)
    cells = list(memory_cells)
    if not cells:
        return [(register_part, ())]
    outcomes = []
    for memory in system.final_memory(cells):
        memory_part = tuple(
            (addr, size, memory[(addr, size)]) for addr, size in cells
        )
        outcomes.append((register_part, memory_part))
    return outcomes


def explore(
    initial: SystemState,
    memory_cells: Iterable[Tuple[int, int]] = (),
    max_states: Optional[int] = None,
    collect_deadlocks: bool = False,
) -> ExplorationResult:
    """Exhaustively enumerate all reachable final states.

    ``memory_cells`` lists (addr, size) memory locations whose final values
    the caller cares about (from the litmus test's final condition).
    """
    limit = max_states if max_states is not None else initial.params.max_states
    cells = tuple(memory_cells)
    stats = ExplorationStats()
    outcomes: Set[Outcome] = set()
    deadlocks: List[SystemState] = []
    started = time.perf_counter()

    stack: List[SystemState] = [initial]
    seen: Set = {initial.key()}
    while stack:
        stats.max_frontier = max(stats.max_frontier, len(stack))
        state = stack.pop()
        stats.states_visited += 1
        if stats.states_visited > limit:
            raise ExplorationLimit(
                f"exceeded {limit} states; increase params.max_states"
            )
        if state.is_final():
            # Residual propagate/ack transitions only add coherence edges;
            # the final-memory enumeration over linear extensions of the
            # current partial order already covers every continuation.
            stats.final_states += 1
            outcomes.update(_outcome_of(state, cells))
            continue
        transitions = state.enumerate_transitions()
        if not transitions:
            if state.threads_finished():
                # Threads complete but some write cannot reach its coherence
                # point (a barrier-induced cycle): a dead path representing
                # coherence choices no hardware execution can realise.
                stats.deadlocks += 1
                if collect_deadlocks:
                    deadlocks.append(state)
                continue
            raise ModelError(
                "deadlock: no transitions from a non-final state\n"
                + state.render()
            )
        for transition in transitions:
            successor = state.apply(transition)
            stats.transitions_taken += 1
            key = successor.key()
            if key not in seen:
                seen.add(key)
                stack.append(successor)

    stats.seconds = time.perf_counter() - started
    return ExplorationResult(outcomes, stats, deadlocks)


def find_witness(
    initial: SystemState,
    predicate,
    memory_cells: Iterable[Tuple[int, int]] = (),
    max_states: Optional[int] = None,
):
    """Search for one execution whose outcome satisfies ``predicate``.

    Returns (transition_list, final_state) for the first witnessing
    execution found, or None if the predicate is unsatisfiable.  The
    transition list is the abstract-machine trace behind the outcome --
    the executable counterpart of the paper's execution diagrams.
    """
    limit = max_states if max_states is not None else initial.params.max_states
    cells = tuple(memory_cells)
    stack: List[Tuple[SystemState, Tuple[Transition, ...]]] = [(initial, ())]
    seen = {initial.key()}
    visited = 0
    while stack:
        state, path = stack.pop()
        visited += 1
        if visited > limit:
            raise ExplorationLimit(f"exceeded {limit} states in witness search")
        if state.is_final():
            for outcome in _outcome_of(state, cells):
                if predicate(outcome):
                    return list(path), state
            continue
        for transition in state.enumerate_transitions():
            successor = state.apply(transition)
            key = successor.key()
            if key not in seen:
                seen.add(key)
                stack.append((successor, path + (transition,)))
    return None


def run_one(initial: SystemState, choose=None, max_steps: int = 100000):
    """Run a single (pseudo-random or guided) execution to completion.

    ``choose(state, transitions)`` picks one transition; the default takes
    the first.  Used by the interactive front-end and the emulator mode.
    """
    state = initial
    for _ in range(max_steps):
        if state.is_final():
            return state
        transitions = state.enumerate_transitions()
        if not transitions:
            raise ModelError(
                "deadlock in single execution\n" + state.render()
            )
        transition = transitions[0] if choose is None else choose(
            state, transitions
        )
        state = state.apply(transition)
    raise ModelError("execution did not terminate within the step budget")
