"""The whole-system state and its transitions.

This is the paper's

    type system_state = <|
      program_memory: address -> fetch_decode_outcome;
      initial_writes: list write;
      interp_context: Interp_interface.context;
      thread_states: map thread_id thread_state;
      storage_subsystem: storage_subsystem_state; ... |>

with

    val enumerate_transitions_of_system : system_state -> list trans
    val system_state_after_transition : system_state -> trans -> system_state

Deterministic, thread-local transitions (internal Sail steps, resolvable
register reads, unique-successor fetch, restart-free instruction finish) are
taken *eagerly*; only observably racy choices -- memory-read satisfaction,
store/barrier commitment, store-conditional resolution, propagation, sync
acknowledgement -- are enumerated as explicit transitions.  This is the
standard ppcmem-family optimisation; the ``eager=False`` parameter exposes
the unoptimised transition system for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..isa.model import IsaModel
from ..sail.interp import resume
from ..sail.outcomes import (
    Barrier as BarrierOutcome,
    Done as DoneOutcome,
    Internal,
    ReadMem,
    ReadReg,
    WriteMem,
    WriteReg,
)
from ..sail.values import Bits, FALSE, TRUE
from .events import BarrierEvent, BarrierId, Write, WriteId, initial_write
from .params import DEFAULT_PARAMS, ModelParams
from .storage import StorageSubsystem
from .thread import (
    InstructionInstance,
    Ioid,
    MemReadRecord,
    MOS_BLOCKED_REG,
    MOS_DONE,
    MOS_PENDING_READ,
    MOS_PENDING_SC,
    MOS_PLAIN,
    ModelError,
    RegReadRecord,
    RegWriteRecord,
    ThreadState,
)


@dataclass(frozen=True)
class Transition:
    """One enabled transition of the whole system."""

    kind: str
    tid: Optional[int] = None
    ioid: Optional[Ioid] = None
    detail: tuple = ()
    label: str = ""

    def __str__(self) -> str:
        return self.label or self.kind


class SystemState:
    """Mutable system state; cloned by the explorer before each transition."""

    def __init__(
        self,
        model: IsaModel,
        program_memory: Dict[int, int],
        thread_entries: Dict[int, int],
        initial_registers: Dict[int, Dict[str, Bits]],
        initial_memory: Iterable[Tuple[int, int, Bits]],
        params: ModelParams = DEFAULT_PARAMS,
        symbols: Optional[Dict[int, str]] = None,
    ):
        """Build the initial state.

        ``program_memory`` maps word-aligned addresses to 32-bit opcodes;
        ``thread_entries`` maps thread ids to entry points;
        ``initial_registers`` gives each thread's initial register values;
        ``initial_memory`` lists (addr, size, value) initial-state writes.
        """
        self.model = model
        self.params = params
        self.program_memory = dict(program_memory)
        self.symbols = dict(symbols or {})
        self.threads: Dict[int, ThreadState] = {}
        self.storage = StorageSubsystem(sorted(thread_entries))
        writes = [
            initial_write(index, addr, size, value)
            for index, (addr, size, value) in enumerate(initial_memory)
        ]
        self.storage.accept_initial_writes(writes)
        for tid, entry in sorted(thread_entries.items()):
            thread = ThreadState(tid, initial_registers.get(tid, {}))
            thread.initial_fetch_address = entry
            self.threads[tid] = thread
        if params.eager:
            self.eager_closure()

    # ------------------------------------------------------------------
    # Cloning / keys
    # ------------------------------------------------------------------

    def clone(self) -> "SystemState":
        other = SystemState.__new__(SystemState)
        other.model = self.model
        other.params = self.params
        other.program_memory = self.program_memory  # immutable use
        other.symbols = self.symbols
        other.threads = {tid: t.clone() for tid, t in self.threads.items()}
        other.storage = self.storage.clone()
        return other

    def key(self):
        return (
            tuple(t.key() for _, t in sorted(self.threads.items())),
            self.storage.key(),
        )

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetch_candidates(self, thread: ThreadState, instance) -> List[int]:
        """Possible next fetch addresses of an instance."""
        fp = instance.static_fp
        candidates: Set[int] = set()
        if instance.nia is not None:
            candidates.add(instance.nia)
        else:
            candidates.update(fp.nias)
            if fp.nia_fallthrough:
                candidates.add(instance.address + 4)
            # Indirect targets wait until the instance resolves its NIA.
        return sorted(
            addr for addr in candidates if addr in self.program_memory
        )

    def _fetch_one(self, thread: ThreadState, instance, address: int) -> bool:
        if address in instance.children:
            return False
        if len(thread.instances) >= self.params.max_instances_per_thread:
            raise ModelError(
                f"thread {thread.tid} exceeded the instance cap "
                f"({self.params.max_instances_per_thread}); "
                "an unresolved loop or runaway speculation"
            )
        word = self.program_memory[address]
        instruction = self.model.decode(word)
        if instruction is None:
            raise ModelError(f"cannot decode 0x{word:08x} at 0x{address:x}")
        thread.new_instance(self.model, address, instruction, instance.ioid)
        return True

    def _fetch_root(self, thread: ThreadState) -> bool:
        if thread.root is not None:
            return False
        address = thread.initial_fetch_address
        if address is None or address not in self.program_memory:
            return False
        word = self.program_memory[address]
        instruction = self.model.decode(word)
        if instruction is None:
            raise ModelError(f"cannot decode 0x{word:08x} at 0x{address:x}")
        thread.new_instance(self.model, address, instruction, None)
        return True

    # ------------------------------------------------------------------
    # Eager closure
    # ------------------------------------------------------------------

    def eager_closure(self) -> None:
        """Take all deterministic thread-local steps to a fixpoint."""
        progress = True
        iterations = 0
        while progress:
            progress = False
            iterations += 1
            if iterations > 10000:
                raise ModelError("eager closure did not converge")
            for tid in sorted(self.threads):
                thread = self.threads[tid]
                if self._fetch_root(thread):
                    progress = True
                for ioid in sorted(thread.instances):
                    instance = thread.instances.get(ioid)
                    if instance is None:
                        continue
                    if self._eager_step_instance(thread, instance):
                        progress = True
            # Sync acknowledgements are purely enabling (no transition is
            # negatively sensitive to acked-ness), so take them eagerly.
            for bid in sorted(self.storage.unacknowledged_syncs):
                if self.storage.can_acknowledge_sync(bid):
                    self.storage.acknowledge_sync(bid)
                    progress = True

    def _eager_step_instance(self, thread: ThreadState, instance) -> bool:
        progress = False
        # Fetch successors speculatively (any time, at any tree leaf).
        if not self._pruned(thread, instance):
            for address in self._fetch_candidates(thread, instance):
                if self._fetch_one(thread, instance, address):
                    progress = True
        # Drive the Sail interpreter through deterministic outcomes.
        while True:
            tag = instance.mos[0]
            if tag == MOS_PLAIN:
                if self._advance_plain(thread, instance):
                    progress = True
                    continue
                break
            if tag == MOS_BLOCKED_REG:
                if self._try_resolve_blocked_reg(thread, instance):
                    progress = True
                    continue
                break
            break
        # Eager finish (safe: preconditions guarantee restart-freedom).
        if (
            not instance.finished
            and instance.mos[0] == MOS_DONE
            and self._can_finish(thread, instance)
        ):
            self._do_finish(thread, instance)
            progress = True
        if progress and not self._pruned(thread, instance):
            for address in self._fetch_candidates(thread, instance):
                if self._fetch_one(thread, instance, address):
                    pass
        return progress

    def _pruned(self, thread: ThreadState, instance) -> bool:
        return instance.ioid not in thread.instances

    def _advance_plain(self, thread: ThreadState, instance) -> bool:
        """Take one deterministic Sail step; returns True on progress."""
        state = instance.mos[1]
        outcome = self.model.interp.run_to_outcome(state)
        if isinstance(outcome, DoneOutcome):
            instance.mos = (MOS_DONE,)
            if instance.nia is None:
                instance.nia = instance.address + 4
            self._prune_untaken(thread, instance)
            return True
        if isinstance(outcome, ReadReg):
            reg_slice = outcome.slice
            if reg_slice.reg == "CIA":
                value = Bits.from_int(instance.address, 64)
                instance.mos = (MOS_PLAIN, resume(outcome.state, value))
                return True
            if reg_slice.reg == "NIA":
                raise ModelError("pseudocode reads NIA")
            result = thread.resolve_register_read(
                self.model, self.params, instance, reg_slice
            )
            if result[0] == "blocked":
                instance.mos = (MOS_BLOCKED_REG, reg_slice, outcome.state)
                return False
            _, value, sources = result
            self._note_address_taint(
                instance, outcome.state, reg_slice.width, sources
            )
            instance.reg_reads = instance.reg_reads + (
                RegReadRecord(reg_slice, value, sources),
            )
            instance.mos = (MOS_PLAIN, resume(outcome.state, value))
            return True
        if isinstance(outcome, WriteReg):
            if outcome.slice.reg == "NIA":
                if not outcome.value.is_known:
                    raise ModelError("branch target contains undef bits")
                instance.nia = outcome.value.to_int()
                self._prune_untaken(thread, instance)
            else:
                instance.reg_writes = instance.reg_writes + (
                    RegWriteRecord(outcome.slice, outcome.value),
                )
            instance.mos = (MOS_PLAIN, resume(outcome.state, None))
            return True
        if isinstance(outcome, ReadMem):
            if not outcome.addr.is_known:
                raise ModelError("memory read address contains undef bits")
            instance.mos = (
                MOS_PENDING_READ,
                outcome.kind,
                outcome.addr.to_int(),
                outcome.size,
                outcome.state,
            )
            return True
        if isinstance(outcome, WriteMem):
            if not outcome.addr.is_known:
                raise ModelError("memory write address contains undef bits")
            addr = outcome.addr.to_int()
            if outcome.kind == "conditional":
                instance.mos = (
                    MOS_PENDING_SC,
                    addr,
                    outcome.size,
                    outcome.value,
                    outcome.state,
                )
                return True
            units = self._split_write(instance, addr, outcome.size, outcome.value)
            instance.mem_writes = instance.mem_writes + units
            instance.mos = (MOS_PLAIN, resume(outcome.state, None))
            return True
        if isinstance(outcome, BarrierOutcome):
            instance.barrier_kind = outcome.kind
            instance.mos = (MOS_PLAIN, resume(outcome.state, None))
            return True
        raise ModelError(f"unexpected outcome {outcome!r}")

    def _split_write(
        self, instance, addr: int, size: int, value: Bits
    ) -> Tuple[Write, ...]:
        """Decompose a write into architecturally atomic units (section 5)."""
        index_base = len(instance.mem_writes)
        if addr % size == 0:
            return (
                Write(
                    WriteId(instance.tid, instance.ioid, index_base),
                    addr,
                    size,
                    value,
                ),
            )
        # Misaligned: single bytes are the atomic units.
        units = []
        for i in range(size):
            units.append(
                Write(
                    WriteId(instance.tid, instance.ioid, index_base + i),
                    addr + i,
                    1,
                    value.slice(8 * i, 8 * i + 7),
                )
            )
        return tuple(units)

    def _note_address_taint(
        self, instance, pending_state, width: int, sources
    ) -> None:
        """Record sources of reads that may feed a memory address.

        A register read resolved while the instruction's remaining memory
        footprint is still undetermined may flow into an address; reads
        resolved after the footprint is determined cannot (the pseudocode is
        interpreted sequentially, section 2.1.6).  This realises the paper's
        dynamic taint tracking (section 2.2): downstream commit conditions
        treat a footprint as stable only once every address source is
        finished.
        """
        if not sources:
            return
        fp = self.model.footprint(
            resume(pending_state, Bits.unknown(width)), cia=instance.address
        )
        if fp.is_memory_access and not fp.memory_determined:
            merged = set(instance.addr_sources)
            merged.update(sources)
            instance.addr_sources = tuple(sorted(merged))

    def _try_resolve_blocked_reg(self, thread: ThreadState, instance) -> bool:
        _, reg_slice, pending = instance.mos
        result = thread.resolve_register_read(
            self.model, self.params, instance, reg_slice
        )
        if result[0] == "blocked":
            return False
        _, value, sources = result
        self._note_address_taint(instance, pending, reg_slice.width, sources)
        instance.reg_reads = instance.reg_reads + (
            RegReadRecord(reg_slice, value, sources),
        )
        instance.mos = (MOS_PLAIN, resume(pending, value))
        return True

    def _prune_untaken(self, thread: ThreadState, instance) -> None:
        """Discard speculative children not matching a resolved NIA."""
        if instance.nia is None:
            return
        for address, child in list(instance.children.items()):
            if address != instance.nia:
                thread.prune_subtree(child)
                del instance.children[address]

    # ------------------------------------------------------------------
    # Commit / finish conditions
    # ------------------------------------------------------------------

    def _po_previous_branches_finished(self, thread, instance) -> bool:
        return all(
            pred.finished
            for pred in thread.po_previous(instance)
            if pred.is_branch
        )

    def _register_sources_finished(self, thread, instance) -> bool:
        for record in instance.reg_reads:
            for source in record.sources:
                pred = thread.instances.get(source)
                if pred is None or not pred.finished:
                    return False
        return True

    def _po_previous_footprints_determined(self, thread, instance) -> bool:
        """Every po-previous memory access has a determined, *stable* footprint.

        Stability: the register reads that fed the address (``addr_sources``)
        come from finished instructions, so no restart can move the access.
        """
        for pred in thread.po_previous(instance):
            if not pred.is_memory_access:
                continue
            if not pred.memory_footprint_determined(self.model):
                return False
            for source in pred.addr_sources:
                source_instance = thread.instances.get(source)
                if source_instance is None or not source_instance.finished:
                    return False
        return True

    def _po_previous_overlapping_finished(
        self, thread, instance, footprints: List[Tuple[int, int]]
    ) -> bool:
        for pred in thread.po_previous(instance):
            for addr, size in footprints:
                if pred.may_access_memory(self.model, addr, size):
                    if not pred.finished:
                        return False
        return True

    def _sync_acked(self, instance) -> bool:
        bid = BarrierId(instance.tid, instance.ioid)
        return bid in self.storage.acknowledged_syncs

    def _po_previous_barriers_ok_for_commit(
        self, thread, instance, is_store: bool
    ) -> bool:
        for pred in thread.po_previous(instance):
            kinds = pred.static_barrier_kinds()
            if not kinds:
                continue
            if "sync" in kinds:
                if not (pred.barrier_committed and self._sync_acked(pred)):
                    return False
            if "lwsync" in kinds or ("eieio" in kinds and is_store):
                if not pred.barrier_committed:
                    return False
            if "isync" in kinds and not pred.finished:
                return False
        return True

    def _can_finish(self, thread, instance) -> bool:
        """Generic instruction finish (the paper's commit) conditions."""
        if instance.mos[0] != MOS_DONE:
            return False
        if instance.mem_writes and not instance.writes_committed:
            return False  # stores finish through the commit-store transition
        if instance.is_storage_barrier and not instance.barrier_committed:
            return False
        if not self._po_previous_branches_finished(thread, instance):
            return False
        if not self._register_sources_finished(thread, instance):
            return False
        if instance.is_memory_access:
            if not self._po_previous_footprints_determined(thread, instance):
                return False
        if instance.mem_reads:
            if not self._po_previous_overlapping_finished(
                thread, instance, instance.read_footprints()
            ):
                return False
            if not self._po_previous_barriers_ok_for_commit(
                thread, instance, is_store=False
            ):
                return False
        return True

    def _do_finish(self, thread, instance) -> None:
        instance.finished = True
        self._prune_untaken(thread, instance)

    def _can_commit_store(self, thread, instance) -> bool:
        if instance.mos[0] != MOS_DONE or not instance.mem_writes:
            return False
        if instance.writes_committed:
            return False
        if not self._po_previous_branches_finished(thread, instance):
            return False
        if not self._register_sources_finished(thread, instance):
            return False
        if not self._po_previous_footprints_determined(thread, instance):
            return False
        if not self._po_previous_overlapping_finished(
            thread, instance, instance.performed_write_footprints()
        ):
            return False
        if not self._po_previous_barriers_ok_for_commit(
            thread, instance, is_store=True
        ):
            return False
        return True

    def _can_commit_barrier(self, thread, instance) -> bool:
        if instance.barrier_kind not in ("sync", "lwsync", "eieio"):
            return False
        if instance.barrier_committed or instance.mos[0] != MOS_DONE:
            return False
        if not self._po_previous_branches_finished(thread, instance):
            return False
        for pred in thread.po_previous(instance):
            if pred.is_store:
                # Stores ahead of the barrier must be fully performed and
                # committed so they land in the barrier's Group A.
                if not pred.is_done_executing:
                    return False
                if pred.mem_writes and not pred.writes_committed:
                    return False
            if instance.barrier_kind in ("sync", "lwsync"):
                if pred.is_load and not pred.finished:
                    return False
            kinds = pred.static_barrier_kinds()
            if "isync" in kinds:
                if not pred.finished:
                    return False
            elif kinds and not pred.barrier_committed:
                return False
        return True

    # ------------------------------------------------------------------
    # Read satisfaction
    # ------------------------------------------------------------------

    def _read_blocked_by_barrier(self, thread, instance) -> bool:
        for pred in thread.po_previous(instance):
            kinds = pred.static_barrier_kinds()
            if "sync" in kinds and not (
                pred.barrier_committed and self._sync_acked(pred)
            ):
                return True
            if "lwsync" in kinds and not pred.barrier_committed:
                return True
            if "isync" in kinds and not pred.finished:
                return True
        return False

    def _read_satisfaction_options(self, thread, instance) -> List[Transition]:
        _, kind, addr, size, _ = instance.mos
        if self._read_blocked_by_barrier(thread, instance):
            return []
        needed: Set[int] = set(range(addr, addr + size))
        for pred in thread.po_previous(instance):
            if not needed:
                break
            for write in pred.mem_writes:
                overlap = needed & set(
                    range(write.addr, write.addr + write.size)
                )
                if not overlap:
                    continue
                if pred.writes_committed:
                    needed -= overlap  # storage supplies these bytes
                elif write.covers(addr, size) and needed == set(
                    range(addr, addr + size)
                ):
                    return [
                        Transition(
                            kind="satisfy_read_forward",
                            tid=thread.tid,
                            ioid=instance.ioid,
                            detail=(pred.ioid, write.wid),
                            label=(
                                f"{instance.ioid} satisfy read "
                                f"{self._loc(addr)} by forwarding from "
                                f"{pred.ioid}"
                            ),
                        )
                    ]
                else:
                    return []  # partially covering uncommitted store: wait
            if needed and not pred.finished:
                if pred.may_write_memory_overlapping(
                    self.model, addr, size
                ) and not pred.writes_committed:
                    return []  # might still store here: wait
        return [
            Transition(
                kind="satisfy_read_storage",
                tid=thread.tid,
                ioid=instance.ioid,
                label=(
                    f"{instance.ioid} satisfy read {self._loc(addr)} "
                    f"from storage"
                ),
            )
        ]

    def _loc(self, addr: int) -> str:
        symbol = self.symbols.get(addr)
        return symbol if symbol else f"0x{addr:x}"

    # ------------------------------------------------------------------
    # Restarts
    # ------------------------------------------------------------------

    def _restart(self, thread, instance) -> None:
        """Reset an instance to its initial state and cascade to dependents."""
        worklist = [instance.ioid]
        restarted: Set[Ioid] = set()
        while worklist:
            ioid = worklist.pop()
            if ioid in restarted:
                continue
            target = thread.instances.get(ioid)
            if target is None:
                continue
            restarted.add(ioid)
            if target.finished or target.writes_committed:
                raise ModelError(f"restarting committed instance {ioid}")
            had_writes = bool(target.mem_writes) or target.static_fp.is_store
            target.mos = (MOS_PLAIN, self.model.initial_state(target.instruction))
            target.reg_reads = ()
            target.reg_writes = ()
            target.mem_reads = ()
            target.mem_writes = ()
            target.barrier_kind = None
            target.nia = None
            target.sc_resolved = None
            target.restarts += 1
            if thread.reservation is not None and thread.reservation[3] == ioid:
                thread.reservation = None
            # Dependents: anything that read a register from this instance,
            # anything that forwarded from its writes, and -- if it may write
            # memory -- any program-order-later satisfied read (its footprint
            # may change).
            for other in thread.instances.values():
                if other.ioid in restarted:
                    continue
                depends = any(
                    ioid in record.sources for record in other.reg_reads
                ) or any(
                    record.forwarded_from == ioid for record in other.mem_reads
                )
                if depends:
                    worklist.append(other.ioid)
            if had_writes:
                # The store's footprint may change on re-execution, so
                # po-later satisfied reads are conservatively restarted.
                # Finished ones are provably unaffected: their commit
                # required every po-previous footprint to be determined with
                # *finished* address sources, so this store's address cannot
                # move onto them.
                for descendant in thread.descendants(target):
                    if (
                        descendant.mem_reads
                        and not descendant.finished
                        and descendant.ioid not in restarted
                    ):
                        worklist.append(descendant.ioid)

    def _coherence_restart_check(self, thread, instance, record: MemReadRecord):
        """Restart po-later reads that saw coherence-older writes (CoRR)."""
        new_sources = {
            record.addr + offset + i: wid
            for wid, offset, length in record.storage_sources
            for i in range(length)
        }
        for descendant in list(thread.descendants(instance)):
            for other in descendant.mem_reads:
                if other.forwarded_from is not None:
                    continue
                conflict = False
                for wid, offset, length in other.storage_sources:
                    for i in range(length):
                        byte_addr = other.addr + offset + i
                        new_wid = new_sources.get(byte_addr)
                        if new_wid is None or new_wid == wid:
                            continue
                        if self.storage.coherence_before(wid, new_wid):
                            conflict = True
                if conflict:
                    self._restart(thread, descendant)
                    break

    # ------------------------------------------------------------------
    # Transition enumeration
    # ------------------------------------------------------------------

    def enumerate_transitions(self) -> List[Transition]:
        transitions: List[Transition] = []
        for tid in sorted(self.threads):
            thread = self.threads[tid]
            for ioid in sorted(thread.instances):
                instance = thread.instances[ioid]
                tag = instance.mos[0]
                if tag == MOS_PENDING_READ:
                    transitions.extend(
                        self._read_satisfaction_options(thread, instance)
                    )
                elif tag == MOS_PENDING_SC:
                    transitions.extend(
                        self._sc_options(thread, instance)
                    )
                elif (
                    tag == MOS_DONE
                    and instance.mem_writes
                    and not instance.writes_committed
                    and self._can_commit_store(thread, instance)
                ):
                    transitions.append(
                        Transition(
                            kind="commit_store",
                            tid=tid,
                            ioid=ioid,
                            label=f"{ioid} commit store to storage",
                        )
                    )
                if (
                    instance.is_storage_barrier
                    and not instance.barrier_committed
                    and self._can_commit_barrier(thread, instance)
                ):
                    transitions.append(
                        Transition(
                            kind="commit_barrier",
                            tid=tid,
                            ioid=ioid,
                            label=f"{ioid} commit {instance.barrier_kind} barrier",
                        )
                    )
        for wid in sorted(self.storage.writes_seen):
            for tid in self.storage.threads:
                if self.storage.can_propagate_write(wid, tid):
                    write = self.storage.writes_seen[wid]
                    transitions.append(
                        Transition(
                            kind="propagate_write",
                            tid=tid,
                            detail=(wid,),
                            label=(
                                f"propagate {write}"
                                f" to thread {tid}"
                            ),
                        )
                    )
        for bid in sorted(self.storage.barriers_seen):
            for tid in self.storage.threads:
                if self.storage.can_propagate_barrier(bid, tid):
                    barrier = self.storage.barriers_seen[bid]
                    transitions.append(
                        Transition(
                            kind="propagate_barrier",
                            tid=tid,
                            detail=(bid,),
                            label=f"propagate {barrier} to thread {tid}",
                        )
                    )
        for bid in sorted(self.storage.unacknowledged_syncs):
            if self.storage.can_acknowledge_sync(bid):
                transitions.append(
                    Transition(
                        kind="ack_sync",
                        detail=(bid,),
                        label=f"acknowledge sync {bid}",
                    )
                )
        for wid in sorted(self.storage.writes_seen):
            if self.storage.can_reach_coherence_point(wid):
                write = self.storage.writes_seen[wid]
                transitions.append(
                    Transition(
                        kind="reach_coherence_point",
                        detail=(wid,),
                        label=f"{write} reaches its coherence point",
                    )
                )
        return transitions

    def _sc_options(self, thread, instance) -> List[Transition]:
        """Store-conditional resolution: success and/or failure."""
        _, addr, size, value, _ = instance.mos
        if not self._can_commit_store_conditional(thread, instance):
            return []
        options = [
            Transition(
                kind="resolve_sc",
                tid=thread.tid,
                ioid=instance.ioid,
                detail=(False,),
                label=f"{instance.ioid} store-conditional fails",
            )
        ]
        reservation = thread.reservation
        if reservation is not None:
            res_addr, res_size, res_wid, _res_ioid = reservation
            if res_addr == addr and res_size == size:
                latest = None
                for write in self.storage.writes_propagated_to(thread.tid):
                    if write.overlaps(addr, size):
                        latest = write
                if latest is not None and latest.wid == res_wid:
                    options.append(
                        Transition(
                            kind="resolve_sc",
                            tid=thread.tid,
                            ioid=instance.ioid,
                            detail=(True,),
                            label=f"{instance.ioid} store-conditional succeeds",
                        )
                    )
        return options

    def _can_commit_store_conditional(self, thread, instance) -> bool:
        if not self._po_previous_branches_finished(thread, instance):
            return False
        if not self._register_sources_finished(thread, instance):
            return False
        if not self._po_previous_footprints_determined(thread, instance):
            return False
        _, addr, size, _, _ = instance.mos
        if not self._po_previous_overlapping_finished(
            thread, instance, [(addr, size)]
        ):
            return False
        if not self._po_previous_barriers_ok_for_commit(
            thread, instance, is_store=True
        ):
            return False
        return True

    # ------------------------------------------------------------------
    # Transition application
    # ------------------------------------------------------------------

    def apply(self, transition: Transition) -> "SystemState":
        """Apply a transition, returning the successor state."""
        state = self.clone()
        state._apply_in_place(transition)
        if state.params.eager:
            state.eager_closure()
        return state

    def _apply_in_place(self, transition: Transition) -> None:
        kind = transition.kind
        if kind == "satisfy_read_storage":
            self._do_satisfy_from_storage(transition)
        elif kind == "satisfy_read_forward":
            self._do_satisfy_by_forwarding(transition)
        elif kind == "commit_store":
            self._do_commit_store(transition)
        elif kind == "resolve_sc":
            self._do_resolve_sc(transition)
        elif kind == "commit_barrier":
            self._do_commit_barrier(transition)
        elif kind == "propagate_write":
            self._do_propagate_write(transition)
        elif kind == "propagate_barrier":
            self.storage.propagate_barrier(transition.detail[0], transition.tid)
        elif kind == "ack_sync":
            self.storage.acknowledge_sync(transition.detail[0])
        elif kind == "reach_coherence_point":
            self.storage.reach_coherence_point(transition.detail[0])
        else:
            raise ModelError(f"unknown transition {kind}")

    def _do_satisfy_from_storage(self, transition: Transition) -> None:
        thread = self.threads[transition.tid]
        instance = thread.instances[transition.ioid]
        _, kind, addr, size, pending = instance.mos
        value, provenance = self.storage.read_response(thread.tid, addr, size)
        record = MemReadRecord(addr, size, value, kind, provenance, None)
        instance.mem_reads = instance.mem_reads + (record,)
        instance.mos = (MOS_PLAIN, resume(pending, value))
        if kind == "reserve":
            # Reserve on the coherence-latest covering write.
            last_wid = provenance[-1][0] if provenance else None
            thread.reservation = (addr, size, last_wid, instance.ioid)
        self._coherence_restart_check(thread, instance, record)

    def _do_satisfy_by_forwarding(self, transition: Transition) -> None:
        thread = self.threads[transition.tid]
        instance = thread.instances[transition.ioid]
        source_ioid, wid = transition.detail
        source = thread.instances[source_ioid]
        write = next(w for w in source.mem_writes if w.wid == wid)
        _, kind, addr, size, pending = instance.mos
        value = write.extract(addr, size)
        record = MemReadRecord(addr, size, value, kind, (), source_ioid)
        instance.mem_reads = instance.mem_reads + (record,)
        instance.mos = (MOS_PLAIN, resume(pending, value))
        if kind == "reserve":
            thread.reservation = (addr, size, wid, instance.ioid)

    def _do_commit_store(self, transition: Transition) -> None:
        thread = self.threads[transition.tid]
        instance = thread.instances[transition.ioid]
        for write in instance.mem_writes:
            self.storage.accept_write(write)
            self._invalidate_reservations(write, accepting_tid=thread.tid)
        instance.writes_committed = True
        if self._can_finish(thread, instance):
            self._do_finish(thread, instance)

    def _do_resolve_sc(self, transition: Transition) -> None:
        thread = self.threads[transition.tid]
        instance = thread.instances[transition.ioid]
        success = transition.detail[0]
        _, addr, size, value, pending = instance.mos
        reservation = thread.reservation
        thread.reservation = None
        instance.sc_resolved = success
        if success:
            write = Write(
                WriteId(instance.tid, instance.ioid, 0),
                addr,
                size,
                value,
                is_conditional=True,
            )
            instance.mem_writes = (write,)
            self.storage.accept_write(write)
            self._invalidate_reservations(write, accepting_tid=thread.tid)
            instance.writes_committed = True
            if reservation is not None and reservation[2] is not None:
                self.storage.atomic_pairs.add((reservation[2], write.wid))
        instance.mos = (MOS_PLAIN, resume(pending, TRUE if success else FALSE))

    def _invalidate_reservations(self, write: Write, accepting_tid: int) -> None:
        """A store to a reserved granule clears other threads' reservations
        once visible; the accepting thread's own reservation clears unless
        the write *is* its conditional store (handled by the caller)."""
        for tid, thread in self.threads.items():
            if thread.reservation is None:
                continue
            res_addr, res_size, _, _ = thread.reservation
            if not write.overlaps(res_addr, res_size):
                continue
            if tid == accepting_tid:
                thread.reservation = None

    def _do_commit_barrier(self, transition: Transition) -> None:
        thread = self.threads[transition.tid]
        instance = thread.instances[transition.ioid]
        event = BarrierEvent(
            BarrierId(instance.tid, instance.ioid), instance.barrier_kind
        )
        self.storage.accept_barrier(event)
        instance.barrier_committed = True
        if self._can_finish(thread, instance):
            self._do_finish(thread, instance)

    def _do_propagate_write(self, transition: Transition) -> None:
        wid = transition.detail[0]
        self.storage.propagate_write(wid, transition.tid)
        write = self.storage.writes_seen[wid]
        # A write becoming visible to a reserving thread clears its
        # reservation (another processor stored to the granule).
        target_thread = self.threads[transition.tid]
        if target_thread.reservation is not None:
            res_addr, res_size, _, _ = target_thread.reservation
            if write.overlaps(res_addr, res_size):
                target_thread.reservation = None

    # ------------------------------------------------------------------
    # Finality
    # ------------------------------------------------------------------

    def threads_finished(self) -> bool:
        """All instructions of all threads fetched and finished."""
        for thread in self.threads.values():
            if thread.root is None:
                entry = thread.initial_fetch_address
                if entry is not None and entry in self.program_memory:
                    return False
                continue
            for instance in thread.instances.values():
                if not instance.finished:
                    return False
                for address in self._fetch_candidates(thread, instance):
                    if address not in instance.children:
                        return False
        return True

    def is_final(self) -> bool:
        """Threads complete *and* every write past its coherence point.

        Reached-but-CP-stuck states (a barrier-induced coherence-point cycle)
        are dead paths: those coherence choices cannot all be realised by any
        hardware execution, so they yield no outcome.
        """
        return (
            self.threads_finished()
            and self.storage.all_writes_past_coherence_point()
        )

    def final_registers(self) -> Dict[int, Dict[str, Bits]]:
        result: Dict[int, Dict[str, Bits]] = {}
        for tid, thread in self.threads.items():
            regs: Dict[str, Bits] = {}
            names = set(thread.initial_registers)
            for instance in thread.instances.values():
                for record in instance.reg_writes:
                    names.add(record.slice.reg)
            for name in names:
                regs[name] = thread.final_register_value(self.model, name)
            result[tid] = regs
        return result

    def final_memory(self, cells: Iterable[Tuple[int, int]]):
        return self.storage.final_memory_values(cells)

    # ------------------------------------------------------------------
    # Rendering (Fig. 3-style)
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines = [self.storage.render(self.symbols.get)]
        for tid in sorted(self.threads):
            thread = self.threads[tid]
            lines.append(f"Thread {tid} state:")
            for ioid in sorted(thread.instances):
                instance = thread.instances[ioid]
                fp = instance.static_fp
                regs_in = ", ".join(sorted(str(s) for s in fp.regs_in))
                regs_out = ", ".join(sorted(str(s) for s in fp.regs_out))
                status = "finished" if instance.finished else instance.mos[0]
                lines.append(
                    f"  instruction {ioid[1]} ioid: {ioid} "
                    f"address: 0x{instance.address:016x} "
                    f"{instance.instruction}"
                )
                lines.append(
                    f"    regs_in: {{{regs_in}}} regs_out: {{{regs_out}}} "
                    f"status: {status}"
                )
                if instance.mem_writes:
                    writes = ", ".join(str(w) for w in instance.mem_writes)
                    committed = (
                        "committed" if instance.writes_committed else "pending"
                    )
                    lines.append(f"    memory writes ({committed}): {writes}")
                if instance.mem_reads:
                    reads = ", ".join(
                        f"R 0x{r.addr:x}/{r.size}={r.value!r}"
                        for r in instance.mem_reads
                    )
                    lines.append(f"    memory reads satisfied: {reads}")
        return "\n".join(lines)
