"""Budget-aware iterative deepening over the state budget.

``BoundedIterative`` runs the sequential driver under a *growing* state
budget: start small (``initial_budget``), multiply by ``growth`` on
exhaustion, stop at the caller's ``max_states``.  Unlike the other
strategies its ``explore`` never raises ``ExplorationLimit``:
exhausting the final budget returns the partial outcome set with
``ExplorationResult.complete = False``, so corpus pipelines can report
a "StateLimit" verdict *and* keep the outcomes and work accounting of
everything that was explored.  ``find_witness`` has no such flag to
set, so an exhausted witness search still raises -- returning ``None``
would read as a proof of unsatisfiability the search cannot support.

Searches that fit the first budget do exactly the sequential engine's
work (identical outcomes and counters).  Larger graphs pay the classic
iterative-deepening retraversal cost -- a geometric factor of at most
``growth / (growth - 1)`` over the final iteration -- and the returned
stats accumulate every iteration's work, because that is what the search
actually cost.  ``unique_states`` is the exception: each iteration
restarts from scratch over a superset of its predecessor's graph, so
the final iteration's seen-set size *is* the coverage.

The registers-of-interest static cache is a pure function of fetch
addresses (program memory is fixed), so one ``static_cache`` is built
per search and shared by every deepening iteration's visitor instead of
being rebuilt from scratch each round.

``reduction``/``context_bound`` run each iteration through the pruning
layer (``reduction.py``); a context-bound truncation downgrades even a
within-budget iteration to ``complete=False``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .base import SearchStrategy
from .core import (
    CollectOutcomes,
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    StopOnWitness,
    Witness,
    extend_trace,
    run_search,
)
from .dpor import prepare_dpor
from .reduction import make_reducer
from ..system import SystemState


@dataclass(frozen=True)
class BoundedIterative(SearchStrategy):
    """Iterative state-budget deepening with partial-result degradation."""

    initial_budget: int = 4096
    growth: int = 4
    reduction: str = "none"
    context_bound: Optional[int] = None
    #: With ``reduction="dpor"``: also canonicalise state keys modulo
    #: detected thread symmetry.  See ``SequentialDFS.symmetry``.
    symmetry: bool = False

    name = "bounded"

    def _budgets(self, limit: int):
        budget = min(max(1, self.initial_budget), limit)
        while True:
            yield budget
            if budget >= limit:
                return
            budget = min(budget * max(2, self.growth), limit)

    def explore(
        self,
        initial: SystemState,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
        collect_deadlocks: bool = False,
    ) -> ExplorationResult:
        limit = self.resolve_limit(initial, max_states)
        cells = tuple(memory_cells)
        work = ExplorationStats()
        static_cache = {}
        dpor = make_reducer(self.reduction, self.context_bound)
        dpor = dpor is not None and dpor.dpor
        if dpor:
            # One canonicaliser for every deepening iteration: symmetry
            # detection runs once and the key memo tables carry over
            # (each iteration re-walks a superset of its predecessor's
            # states).  The per-search seen map stays per-iteration.
            canon, cells, finish = prepare_dpor(
                initial, self.symmetry, cells, collect_deadlocks
            )
        else:
            canon, finish = None, None
        started = time.perf_counter()
        for budget in self._budgets(limit):
            stats = ExplorationStats()
            visitor = CollectOutcomes(
                cells, collect_deadlocks, static_cache=static_cache
            )
            reducer = make_reducer(self.reduction, self.context_bound)
            seen = {} if reducer is not None and reducer.sleep else set()
            try:
                run_search(
                    initial,
                    visitor,
                    limit=budget,
                    stats=stats,
                    strict_deadlocks=True,
                    seen=seen,
                    reducer=reducer,
                    canon=canon,
                )
            except ExplorationLimit:
                work.merge(stats)
                work.unique_states = len(seen)
                partial = visitor
                continue
            work.merge(stats)
            work.unique_states = len(seen)
            work.seconds = time.perf_counter() - started
            return ExplorationResult(
                visitor.outcomes if finish is None else finish(
                    visitor.outcomes
                ),
                work,
                visitor.deadlock_states,
                complete=reducer is None or not reducer.truncated,
            )
        # Only reachable via the except path at the final (full) budget:
        # the caller's own budget is exhausted, so degrade to a partial
        # outcome set instead of raising mid-search.
        work.seconds = time.perf_counter() - started
        return ExplorationResult(
            partial.outcomes if finish is None else finish(partial.outcomes),
            work,
            partial.deadlock_states,
            complete=False,
        )

    def find_witness(
        self,
        initial: SystemState,
        predicate,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
    ) -> Optional[Witness]:
        limit = self.resolve_limit(initial, max_states)
        cells = tuple(memory_cells)
        work = ExplorationStats()
        static_cache = {}
        last_error = None
        started = time.perf_counter()
        # Witness searches downgrade dpor to sleep sets; see
        # ``SequentialDFS.find_witness``.
        reduction = "sleep" if self.reduction == "dpor" else self.reduction
        for budget in self._budgets(limit):
            stats = ExplorationStats()
            visitor = StopOnWitness(predicate, cells, static_cache=static_cache)
            reducer = make_reducer(reduction, self.context_bound)
            seen = {} if reducer is not None and reducer.sleep else set()
            try:
                found = run_search(
                    initial,
                    visitor,
                    limit=budget,
                    stats=stats,
                    strict_deadlocks=False,
                    payload=(),
                    extend=extend_trace,
                    seen=seen,
                    reducer=reducer,
                )
            except ExplorationLimit as exc:
                work.merge(stats)
                work.unique_states = len(seen)
                last_error = str(exc)
                continue
            work.merge(stats)
            work.unique_states = len(seen)
            work.seconds = time.perf_counter() - started
            if found is None:
                if reducer is not None and reducer.truncated:
                    # Within budget but context-truncated: absence of a
                    # witness proves nothing, stay loud.
                    raise ExplorationLimit(
                        f"context bound {self.context_bound} truncated "
                        "the witness search before it completed",
                        work,
                    )
                return None
            state, path = found
            return Witness(list(path), state, work)
        # Budget exhausted without completing: ``None`` would read as a
        # *proof* that the predicate is unsatisfiable, which the search
        # cannot support -- witness absence must stay loud.  (Partial
        # degradation is explore()'s contract, where the result carries
        # an explicit ``complete`` flag.)
        work.seconds = time.perf_counter() - started
        raise ExplorationLimit(
            last_error or f"exceeded {limit} states; "
            "increase params.max_states",
            work,
        )
