"""Encode/decode/assemble/disassemble consistency across the whole corpus."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import Assembler, AssemblerError
from repro.isa.disasm import disassemble, render
from repro.isa.model import default_model
from repro.isa.spec import DecodeTable, EncodingError, parse_layout, spec


@pytest.fixture(scope="module")
def model():
    return default_model()


@pytest.fixture(scope="module")
def assembler(model):
    return Assembler(model)


class TestLayouts:
    def test_parse_layout_fig2_stdu(self):
        fields = parse_layout("62 RS:5 RA:5 DS:14 1:2")
        assert fields[0].value == 62 and fields[0].width == 6
        names = [f.name for f in fields if f.name]
        assert names == ["RS", "RA", "DS"]

    def test_layout_must_cover_32_bits(self):
        with pytest.raises(EncodingError):
            parse_layout("31 RT:5 RA:5")

    def test_field_extract_insert_roundtrip(self):
        fields = parse_layout("31 RT:5 RA:5 RB:5 266:9 OE:1 Rc:1")
        rt = next(f for f in fields if f.name == "RT")
        word = rt.insert(0, 13)
        assert rt.extract(word) == 13

    def test_value_too_large_rejected(self):
        fields = parse_layout("31 RT:5 RA:5 RB:5 266:9 OE:1 Rc:1")
        rt = next(f for f in fields if f.name == "RT")
        with pytest.raises(EncodingError):
            rt.insert(0, 32)


class TestDecodeTable:
    def test_every_spec_decodes_its_own_encoding(self, model):
        for instruction_spec in model.table.all_specs():
            fields = {
                f.name: 1 if f.width > 1 else 0
                for f in instruction_spec.operand_fields()
            }
            word = instruction_spec.encode(fields)
            decoded = model.decode(word)
            assert decoded is not None, instruction_spec.name
            assert decoded.spec.name == instruction_spec.name

    def test_unknown_word_returns_none(self, model):
        assert model.decode(0xFFFFFFFF) is None

    def test_ambiguous_encodings_rejected(self):
        a = spec("A", "a", "D", "fixed-point", "14 RT:5 RA:5 SI:16",
                 "RT, RA, SI", "function clause execute (A (RT)) = { NOP() }")
        b = spec("B", "b", "D", "fixed-point", "14 RS:5 RA:5 UI:16",
                 "RA, RS, UI", "function clause execute (B (RS)) = { NOP() }")
        with pytest.raises(EncodingError):
            DecodeTable([a, b])

    def test_decode_is_cached(self, model):
        word = (14 << 26) | (1 << 21) | 7
        assert model.decode(word) is model.decode(word)


class TestAssembler:
    CASES = [
        ("addi r1,r0,100", (14 << 26) | (1 << 21) | 100),
        ("li r1,100", (14 << 26) | (1 << 21) | 100),
        ("li r1,-1", (14 << 26) | (1 << 21) | 0xFFFF),
        ("stw r7,0(r1)", (36 << 26) | (7 << 21) | (1 << 16)),
        ("lwz r5,8(r2)", (32 << 26) | (5 << 21) | (2 << 16) | 8),
        ("std r3,8(r1)", (62 << 26) | (3 << 21) | (1 << 16) | (2 << 2)),
        ("sync", (31 << 26) | (598 << 1)),
        ("lwsync", (31 << 26) | (1 << 21) | (598 << 1)),
        ("isync", (19 << 26) | (150 << 1)),
        ("eieio", (31 << 26) | (854 << 1)),
        ("mr r6,r5", (31 << 26) | (5 << 21) | (6 << 16) | (5 << 11) | (444 << 1)),
        ("nop", (24 << 26)),
        ("blr", (19 << 26) | (20 << 21) | (16 << 1)),
        ("mflr r0", (31 << 26) | (0 << 21) | (8 << 16) | (339 << 1)),
        ("mtctr r9", (31 << 26) | (9 << 21) | (9 << 16) | (467 << 1)),
    ]

    @pytest.mark.parametrize("text,expected", CASES)
    def test_known_encodings(self, assembler, text, expected):
        assert assembler.assemble_instruction(text) == expected

    def test_record_and_overflow_suffixes(self, assembler, model):
        plain = assembler.assemble_instruction("add r3,r1,r2")
        record = assembler.assemble_instruction("add. r3,r1,r2")
        overflow = assembler.assemble_instruction("addo. r3,r1,r2")
        assert record == plain | 1
        assert overflow == plain | 1 | (1 << 10)
        assert model.decode(record).field("Rc") == 1

    def test_cmpw_expansion(self, assembler, model):
        word = assembler.assemble_instruction("cmpw r5,r7")
        decoded = model.decode(word)
        assert decoded.mnemonic == "cmp"
        assert decoded.field("L") == 0 and decoded.field("BF") == 0

    def test_cmpdi_uses_doubleword(self, assembler, model):
        word = assembler.assemble_instruction("cmpdi r5,3")
        decoded = model.decode(word)
        assert decoded.mnemonic == "cmpi" and decoded.field("L") == 1

    def test_branch_conditions(self, assembler, model):
        word = assembler.assemble_instruction("beq 0x20", address=0x10)
        decoded = model.decode(word)
        assert decoded.mnemonic == "bc"
        assert decoded.field("BO") == 12 and decoded.field("BI") == 2
        assert decoded.field("BD") == (0x20 - 0x10) >> 2

    def test_branch_with_cr_field(self, assembler, model):
        word = assembler.assemble_instruction("bne cr3,0x8", address=0)
        decoded = model.decode(word)
        assert decoded.field("BI") == 4 * 3 + 2

    def test_labels_two_pass(self, assembler):
        words, labels = assembler.assemble_program(
            ["b end", "nop", "end:", "nop"], base=0x1000
        )
        assert labels["end"] == 0x1008
        # LI encodes (0x1008 - 0x1000) >> 2 = 2.
        assert (words[0] >> 2) & 0xFFFFFF == 2

    def test_label_same_line(self, assembler):
        words, labels = assembler.assemble_program(
            ["L: nop", "b L"], base=0x100
        )
        assert labels["L"] == 0x100
        assert len(words) == 2

    def test_sldi_expansion(self, assembler, model):
        word = assembler.assemble_instruction("sldi r3,r4,8")
        decoded = model.decode(word)
        assert decoded.mnemonic == "rldicr"

    def test_mtocrf_cr_operand(self, assembler, model):
        word = assembler.assemble_instruction("mtocrf cr3,r5")
        decoded = model.decode(word)
        assert decoded.field("FXM") == 1 << (7 - 3)

    def test_unknown_mnemonic(self, assembler):
        with pytest.raises(AssemblerError):
            assembler.assemble_instruction("frobnicate r1,r2")

    def test_operand_count_checked(self, assembler):
        with pytest.raises(AssemblerError):
            assembler.assemble_instruction("add r1,r2")

    def test_out_of_range_immediate(self, assembler):
        with pytest.raises(AssemblerError):
            assembler.assemble_instruction("addi r1,r0,40000")

    def test_misaligned_ds_offset(self, assembler):
        with pytest.raises(AssemblerError):
            assembler.assemble_instruction("std r1,3(r2)")


class TestRoundTrip:
    """disassemble(assemble(x)) == normalise(x), property-based over specs."""

    @settings(max_examples=300, deadline=None)
    @given(data=st.data())
    def test_random_instruction_roundtrip(self, data):
        model = default_model()
        assembler = Assembler(model)
        specs = model.table.all_specs()
        instruction_spec = data.draw(st.sampled_from(specs))
        fields = {}
        for field_def in instruction_spec.operand_fields():
            fields[field_def.name] = data.draw(
                st.integers(0, (1 << field_def.width) - 1)
            )
        if "SPR" in fields:
            n = data.draw(st.sampled_from([1, 8, 9]))
            fields["SPR"] = (n & 0x1F) << 5 | (n >> 5)
        word = instruction_spec.encode(fields)
        decoded = model.decode(word)
        assert decoded is not None
        assert decoded.spec.name == instruction_spec.name
        assert dict(decoded.fields) == fields
        # Disassemble then re-assemble: identical up to hint fields that
        # assembly syntax cannot express (e.g. the BH branch hint).
        text = render(decoded, address=0x1000)
        reassembled = assembler.assemble_instruction(text, address=0x1000)
        syntax_text = " ".join(instruction_spec.syntax)
        hint_mask = 0
        for field_def in instruction_spec.operand_fields():
            mentioned = (
                field_def.name in syntax_text
                or field_def.name in ("Rc", "OE", "LK", "AA", "SPR", "FXM",
                                      "SHL", "SHH", "MBE", "LI", "BD", "DS", "D")
            )
            if not mentioned:
                hint_mask |= field_def.mask
        assert reassembled & ~hint_mask == word & ~hint_mask, (
            f"{text!r}: {reassembled:#x} != {word:#x}"
        )

    def test_disassemble_unknown(self, model):
        assert disassemble(model, 0xFFFFFFFF).startswith(".long")
