"""Model parameters.

``cr_granularity`` controls the architectural granularity of register
dependencies (section 2.1.4): the paper argues for single-bit granularity
(``"bit"``), which makes ``MP+sync+addr-cr`` allowed, but the model can also
be run with 4-bit CR fields or a monolithic CR for the E8 ablation.

``eager`` enables the eager-transition closure (thread-local deterministic
steps taken immediately); disabling it makes every internal step an explicit
transition, exposing the raw state space for the E6/E8 performance studies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelParams:
    cr_granularity: str = "bit"  # "bit" | "field" | "whole"
    eager: bool = True
    max_instances_per_thread: int = 48
    max_states: int = 2_000_000
    forbid_undef_conditions: bool = True


DEFAULT_PARAMS = ModelParams()
