"""The built-in litmus corpus, with expected statuses.

Each entry records

  * the ``.litmus`` source (herdtools syntax, as in section 6),
  * ``architected``: the architectural-envelope status the model must
    produce ("Allowed" / "Forbidden"), from the published POWER models
    (Sarkar et al. PLDI 2011/2012 and this paper's section 2), and
  * ``observed``: whether the outcome has been observed on POWER hardware
    (G5/6/7/8) in the published experiments.  ``observed`` implies the
    model must allow it (soundness, section 7); the converse need not hold
    (e.g. the LB family is architecturally allowed but unobserved).

This corpus plays the role of the paper's 2175-test validation suite: the
full diy-generated suite is not redistributable, so the canonical named
shapes and the paper's own examples are used, each exercising a distinct
mechanism of the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .parser import parse_litmus
from .test import LitmusTest


@dataclass(frozen=True)
class CorpusEntry:
    name: str
    source: str
    architected: str  # "Allowed" | "Forbidden"
    observed: bool  # seen on some POWER implementation
    family: str
    note: str = ""

    def parse(self) -> LitmusTest:
        return parse_litmus(self.source)


_CORPUS: List[CorpusEntry] = []


def _add(name, family, architected, observed, source, note=""):
    _CORPUS.append(
        CorpusEntry(
            name=name,
            source=source.strip() + "\n",
            architected=architected,
            observed=observed,
            family=family,
            note=note,
        )
    )


# ----------------------------------------------------------------------
# Message passing (MP) family -- includes the paper's section 2 examples
# ----------------------------------------------------------------------

_add("MP", "MP", "Allowed", True, """
POWER MP
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
""")

_add("MP+syncs", "MP", "Forbidden", False, """
POWER MP+syncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | sync         ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
""")

_add("MP+lwsyncs", "MP", "Forbidden", False, """
POWER MP+lwsyncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 lwsync       | lwsync       ;
 stw r8,0(r2) | lwz r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
""")

_add("MP+sync+addr", "MP", "Forbidden", False, """
POWER MP+sync+addr
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1             ;
 stw r7,0(r1) | lwz r5,0(r2)   ;
 sync         | xor r6,r5,r5   ;
 stw r8,0(r2) | lwzx r4,r6,r1  ;
exists (1:r5=1 /\\ 1:r4=0)
""")

_add("MP+lwsync+addr", "MP", "Forbidden", False, """
POWER MP+lwsync+addr
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1             ;
 stw r7,0(r1) | lwz r5,0(r2)   ;
 lwsync       | xor r6,r5,r5   ;
 stw r8,0(r2) | lwzx r4,r6,r1  ;
exists (1:r5=1 /\\ 1:r4=0)
""")

_add("MP+sync+ctrl", "MP", "Allowed", True, """
POWER MP+sync+ctrl
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | cmpw r5,r7   ;
 stw r8,0(r2) | beq L        ;
              | L:           ;
              | lwz r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
""", note="section 2.1.1: speculative satisfaction past an unresolved branch")

_add("MP+sync+ctrlisync", "MP", "Forbidden", False, """
POWER MP+sync+ctrlisync
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | cmpw r5,r7   ;
 stw r8,0(r2) | beq L        ;
              | L:           ;
              | isync        ;
              | lwz r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
""")

_add("MP+sync+rs", "MP", "Allowed", True, """
POWER MP+sync+rs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | mr r6,r5     ;
 stw r8,0(r2) | lwz r5,0(r1) ;
exists (1:r6=1 /\\ 1:r5=0)
""", note="section 2.1.2: register shadowing")

_add("MP+sync+addr-cr", "MP", "Allowed", True, """
POWER MP+sync+addr-cr
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1              ;
 stw r7,0(r1) | lwz r5,0(r2)    ;
 sync         | mtocrf cr3,r5   ;
 stw r8,0(r2) | mfocrf r6,cr4   ;
              | xor r7,r6,r6    ;
              | lwzx r8,r1,r7   ;
exists (1:r5=1 /\\ 1:r8=0)
""", note="section 2.1.4: no dependency through distinct CR fields")

_add("MP+sync+addr-cr-same", "MP", "Forbidden", False, """
POWER MP+sync+addr-cr-same
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1              ;
 stw r7,0(r1) | lwz r5,0(r2)    ;
 sync         | mtocrf cr3,r5   ;
 stw r8,0(r2) | mfocrf r6,cr3   ;
              | xor r7,r6,r6    ;
              | lwzx r8,r1,r7   ;
exists (1:r5=1 /\\ 1:r8=0)
""", note="control for MP+sync+addr-cr: same CR field carries the dependency")

_add("PPOCA", "MP", "Allowed", True, """
POWER PPOCA
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r3=z; 1:r7=1;
x=0; y=0; z=0;
}
 P0           | P1            ;
 stw r7,0(r1) | lwz r5,0(r2)  ;
 sync         | cmpw r5,r7    ;
 stw r8,0(r2) | beq L         ;
              | L:            ;
              | stw r7,0(r3)  ;
              | lwz r6,0(r3)  ;
              | xor r6,r6,r6  ;
              | lwzx r4,r6,r1 ;
exists (1:r5=1 /\\ 1:r4=0)
""", note="section 2.1.5: forwarding from an uncommitted speculative store")

_add("PPOAA", "MP", "Forbidden", False, """
POWER PPOAA
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r3=z; 1:r7=1;
x=0; y=0; z=0;
}
 P0           | P1            ;
 stw r7,0(r1) | lwz r5,0(r2)  ;
 sync         | xor r6,r5,r5  ;
 stw r8,0(r2) | stwx r7,r6,r3 ;
              | lwz r6,0(r3)  ;
              | xor r6,r6,r6  ;
              | lwzx r4,r6,r1 ;
exists (1:r5=1 /\\ 1:r4=0)
""")

# ----------------------------------------------------------------------
# Store buffering (SB)
# ----------------------------------------------------------------------

_add("SB", "SB", "Allowed", True, """
POWER SB
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 lwz r5,0(r2) | lwz r5,0(r1) ;
exists (0:r5=0 /\\ 1:r5=0)
""")

_add("SB+syncs", "SB", "Forbidden", False, """
POWER SB+syncs
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 sync         | sync         ;
 lwz r5,0(r2) | lwz r5,0(r1) ;
exists (0:r5=0 /\\ 1:r5=0)
""")

_add("SB+lwsyncs", "SB", "Allowed", True, """
POWER SB+lwsyncs
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 lwsync       | lwsync       ;
 lwz r5,0(r2) | lwz r5,0(r1) ;
exists (0:r5=0 /\\ 1:r5=0)
""", note="lwsync does not order store-load")

# ----------------------------------------------------------------------
# Load buffering (LB) -- architecturally allowed, unobserved on POWER
# ----------------------------------------------------------------------

_add("LB", "LB", "Allowed", False, """
POWER LB
{
0:r1=x; 0:r2=y; 0:r9=1;
1:r1=x; 1:r2=y; 1:r9=1;
x=0; y=0;
}
 P0           | P1           ;
 lwz r5,0(r1) | lwz r6,0(r2) ;
 stw r9,0(r2) | stw r9,0(r1) ;
exists (0:r5=1 /\\ 1:r6=1)
""", note="architecturally allowed; not observable on POWER servers")

_add("LB+addrs", "LB", "Forbidden", False, """
POWER LB+addrs
{
0:r1=x; 0:r2=y; 0:r9=1;
1:r1=x; 1:r2=y; 1:r9=1;
x=0; y=0;
}
 P0            | P1            ;
 lwz r5,0(r1)  | lwz r6,0(r2)  ;
 xor r4,r5,r5  | xor r4,r6,r6  ;
 stwx r9,r4,r2 | stwx r9,r4,r1 ;
exists (0:r5=1 /\\ 1:r6=1)
""")

_add("LB+datas", "LB", "Forbidden", False, """
POWER LB+datas
{
0:r1=x; 0:r2=y;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1           ;
 lwz r5,0(r1) | lwz r6,0(r2) ;
 stw r5,0(r2) | stw r6,0(r1) ;
exists (0:r5=1 /\\ 1:r6=1)
""")

_add("LB+ctrls", "LB", "Forbidden", False, """
POWER LB+ctrls
{
0:r1=x; 0:r2=y; 0:r9=1;
1:r1=x; 1:r2=y; 1:r9=1;
x=0; y=0;
}
 P0           | P1           ;
 lwz r5,0(r1) | lwz r6,0(r2) ;
 cmpw r5,r9   | cmpw r6,r9   ;
 beq L0       | beq L1       ;
 L0:          | L1:          ;
 stw r9,0(r2) | stw r9,0(r1) ;
exists (0:r5=1 /\\ 1:r6=1)
""", note="control dependencies to stores are respected")

_add("LB+datas+WW", "LB", "Allowed", False, """
POWER LB+datas+WW
{
0:r1=x; 0:r2=y; 0:r3=z; 0:r9=1;
1:r1=x; 1:r2=y; 1:r4=w; 1:r9=1;
x=0; y=0; z=0; w=0;
}
 P0           | P1           ;
 lwz r5,0(r1) | lwz r6,0(r2) ;
 stw r5,0(r3) | stw r6,0(r4) ;
 stw r9,0(r2) | stw r9,0(r1) ;
exists (0:r5=1 /\\ 1:r6=1)
""", note="section 2.1.6: middle-write addresses known before data resolves")

_add("LB+addrs+WW", "LB", "Forbidden", False, """
POWER LB+addrs+WW
{
0:r1=x; 0:r2=y; 0:r3=z; 0:r9=1;
1:r1=x; 1:r2=y; 1:r4=w; 1:r9=1;
x=0; y=0; z=0; w=0;
}
 P0             | P1             ;
 lwz r5,0(r1)   | lwz r6,0(r2)   ;
 xor r10,r5,r5  | xor r10,r6,r6  ;
 stwx r9,r10,r3 | stwx r9,r10,r4 ;
 stw r9,0(r2)   | stw r9,0(r1)   ;
exists (0:r5=1 /\\ 1:r6=1)
""", note="section 2.1.6 control: middle-write addresses depend on the loads")

# ----------------------------------------------------------------------
# R and S shapes (one memory-final condition each)
# ----------------------------------------------------------------------

_add("R", "R", "Allowed", True, """
POWER R
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r2=y; 1:r1=x; 1:r8=2;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r8,0(r2) ;
 stw r8,0(r2) | lwz r5,0(r1) ;
exists (y=2 /\\ 1:r5=0)
""")

_add("R+syncs", "R", "Forbidden", False, """
POWER R+syncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r2=y; 1:r1=x; 1:r8=2;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r8,0(r2) ;
 sync         | sync         ;
 stw r8,0(r2) | lwz r5,0(r1) ;
exists (y=2 /\\ 1:r5=0)
""")

_add("S", "S", "Allowed", True, """
POWER S
{
0:r1=x; 0:r2=y; 0:r7=2; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 stw r8,0(r2) | stw r7,0(r1) ;
exists (1:r5=1 /\\ x=2)
""")

_add("S+sync+addr", "S", "Forbidden", False, """
POWER S+sync+addr
{
0:r1=x; 0:r2=y; 0:r7=2; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}
 P0           | P1            ;
 stw r7,0(r1) | lwz r5,0(r2)  ;
 sync         | xor r6,r5,r5  ;
 stw r8,0(r2) | stwx r7,r6,r1 ;
exists (1:r5=1 /\\ x=2)
""")

# ----------------------------------------------------------------------
# 2+2W -- purely memory-final conditions (coherence linearisation)
# ----------------------------------------------------------------------

_add("2+2W", "2+2W", "Allowed", True, """
POWER 2+2W
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=2;
1:r1=x; 1:r2=y; 1:r7=1; 1:r8=2;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 stw r8,0(r2) | stw r8,0(r1) ;
exists (x=1 /\\ y=1)
""")

_add("2+2W+syncs", "2+2W", "Forbidden", False, """
POWER 2+2W+syncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=2;
1:r1=x; 1:r2=y; 1:r7=1; 1:r8=2;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 sync         | sync         ;
 stw r8,0(r2) | stw r8,0(r1) ;
exists (x=1 /\\ y=1)
""")

_add("2+2W+lwsyncs", "2+2W", "Forbidden", False, """
POWER 2+2W+lwsyncs
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=2;
1:r1=x; 1:r2=y; 1:r7=1; 1:r8=2;
x=0; y=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r2) ;
 lwsync       | lwsync       ;
 stw r8,0(r2) | stw r8,0(r1) ;
exists (x=1 /\\ y=1)
""")

# ----------------------------------------------------------------------
# Coherence shapes
# ----------------------------------------------------------------------

_add("CoRR", "coherence", "Forbidden", False, """
POWER CoRR
{
0:r1=x; 0:r7=1;
1:r1=x;
x=0;
}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r1) ;
              | lwz r6,0(r1) ;
exists (1:r5=1 /\\ 1:r6=0)
""")

_add("CoWW", "coherence", "Forbidden", False, """
POWER CoWW
{
0:r1=x; 0:r7=1; 0:r8=2;
x=0;
}
 P0           ;
 stw r7,0(r1) ;
 stw r8,0(r1) ;
exists (x=1)
""")

_add("CoWR", "coherence", "Forbidden", False, """
POWER CoWR
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r7=2;
x=0;
}
 P0           | P1           ;
 stw r7,0(r1) | stw r7,0(r1) ;
 lwz r5,0(r1) |              ;
exists (0:r5=2 /\\ x=1)
""")

_add("CoRW1", "coherence", "Forbidden", False, """
POWER CoRW1
{
0:r1=x; 0:r7=1;
x=0;
}
 P0           ;
 lwz r5,0(r1) ;
 stw r7,0(r1) ;
exists (0:r5=1)
""", note="a load must not read from a po-later store")

# ----------------------------------------------------------------------
# WRC / IRIW / RWC / ISA2 (3-4 threads, cumulativity)
# ----------------------------------------------------------------------

_add("WRC", "WRC", "Allowed", True, """
POWER WRC
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
x=0; y=0;
}
 P0           | P1           | P2           ;
 stw r7,0(r1) | lwz r5,0(r1) | lwz r6,0(r2) ;
              | stw r7,0(r2) | lwz r8,0(r1) ;
exists (1:r5=1 /\\ 2:r6=1 /\\ 2:r8=0)
""")

_add("WRC+addrs", "WRC", "Allowed", True, """
POWER WRC+addrs
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
x=0; y=0;
}
 P0           | P1             | P2             ;
 stw r7,0(r1) | lwz r5,0(r1)   | lwz r6,0(r2)   ;
              | xor r4,r5,r5   | xor r4,r6,r6   ;
              | stwx r7,r4,r2  | lwzx r8,r4,r1  ;
exists (1:r5=1 /\\ 2:r6=1 /\\ 2:r8=0)
""", note="non-multi-copy-atomic storage: dependencies alone do not forbid WRC")

_add("WRC+sync+addr", "WRC", "Forbidden", False, """
POWER WRC+sync+addr
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
x=0; y=0;
}
 P0           | P1            | P2             ;
 stw r7,0(r1) | lwz r5,0(r1)  | lwz r6,0(r2)   ;
              | sync          | xor r4,r6,r6   ;
              | stw r7,0(r2)  | lwzx r8,r4,r1  ;
exists (1:r5=1 /\\ 2:r6=1 /\\ 2:r8=0)
""", note="A-cumulativity of sync")

_add("WRC+lwsync+addr", "WRC", "Forbidden", False, """
POWER WRC+lwsync+addr
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
x=0; y=0;
}
 P0           | P1            | P2             ;
 stw r7,0(r1) | lwz r5,0(r1)  | lwz r6,0(r2)   ;
              | lwsync        | xor r4,r6,r6   ;
              | stw r7,0(r2)  | lwzx r8,r4,r1  ;
exists (1:r5=1 /\\ 2:r6=1 /\\ 2:r8=0)
""", note="A-cumulativity of lwsync")

_add("IRIW", "IRIW", "Allowed", True, """
POWER IRIW
{
0:r1=x; 0:r7=1;
1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
3:r1=x; 3:r2=y;
x=0; y=0;
}
 P0           | P1           | P2           | P3           ;
 stw r7,0(r1) | stw r7,0(r2) | lwz r5,0(r1) | lwz r5,0(r2) ;
              |              | lwz r6,0(r2) | lwz r6,0(r1) ;
exists (2:r5=1 /\\ 2:r6=0 /\\ 3:r5=1 /\\ 3:r6=0)
""")

_add("IRIW+addrs", "IRIW", "Allowed", True, """
POWER IRIW+addrs
{
0:r1=x; 0:r7=1;
1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
3:r1=x; 3:r2=y;
x=0; y=0;
}
 P0           | P1           | P2             | P3             ;
 stw r7,0(r1) | stw r7,0(r2) | lwz r5,0(r1)   | lwz r5,0(r2)   ;
              |              | xor r4,r5,r5   | xor r4,r5,r5   ;
              |              | lwzx r6,r4,r2  | lwzx r6,r4,r1  ;
exists (2:r5=1 /\\ 2:r6=0 /\\ 3:r5=1 /\\ 3:r6=0)
""")

_add("IRIW+syncs", "IRIW", "Forbidden", False, """
POWER IRIW+syncs
{
0:r1=x; 0:r7=1;
1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y;
3:r1=x; 3:r2=y;
x=0; y=0;
}
 P0           | P1           | P2           | P3           ;
 stw r7,0(r1) | stw r7,0(r2) | lwz r5,0(r1) | lwz r5,0(r2) ;
              |              | sync         | sync         ;
              |              | lwz r6,0(r2) | lwz r6,0(r1) ;
exists (2:r5=1 /\\ 2:r6=0 /\\ 3:r5=1 /\\ 3:r6=0)
""")

_add("RWC+syncs", "RWC", "Forbidden", False, """
POWER RWC+syncs
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r2=y; 1:r7=1;
2:r1=x; 2:r2=y; 2:r7=1;
x=0; y=0;
}
 P0           | P1           | P2           ;
 stw r7,0(r1) | lwz r5,0(r1) | stw r7,0(r2) ;
              | sync         | sync         ;
              | lwz r6,0(r2) | lwz r8,0(r1) ;
exists (1:r5=1 /\\ 1:r6=0 /\\ 2:r8=0)
""")

_add("ISA2", "ISA2", "Allowed", True, """
POWER ISA2
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r2=y; 1:r3=z; 1:r7=1;
2:r1=x; 2:r3=z;
x=0; y=0; z=0;
}
 P0           | P1           | P2           ;
 stw r7,0(r1) | lwz r5,0(r2) | lwz r6,0(r3) ;
 stw r7,0(r2) | stw r7,0(r3) | lwz r8,0(r1) ;
exists (1:r5=1 /\\ 2:r6=1 /\\ 2:r8=0)
""")

_add("ISA2+sync+data+addr", "ISA2", "Forbidden", False, """
POWER ISA2+sync+data+addr
{
0:r1=x; 0:r2=y; 0:r7=1;
1:r2=y; 1:r3=z;
2:r1=x; 2:r3=z;
x=0; y=0; z=0;
}
 P0           | P1            | P2             ;
 stw r7,0(r1) | lwz r5,0(r2)  | lwz r6,0(r3)   ;
 sync         | stw r5,0(r3)  | xor r4,r6,r6   ;
 stw r7,0(r2) |               | lwzx r8,r4,r1  ;
exists (1:r5=1 /\\ 2:r6=1 /\\ 2:r8=0)
""", note="B-cumulativity of sync through a data dependency")

# ----------------------------------------------------------------------
# Load-reserve / store-conditional
# ----------------------------------------------------------------------

_add("ATOM-base", "atomic", "Allowed", True, """
POWER ATOM-base
{
0:r1=x; 0:r7=1;
x=0;
}
 P0              ;
 lwarx r5,r0,r1  ;
 stwcx. r7,r0,r1 ;
 mfcr r6         ;
exists (0:r5=0 /\\ x=1 /\\ 0:r6=0x20000000)
""", note="uncontended reservation succeeds")

_add("ATOM-intervene", "atomic", "Forbidden", False, """
POWER ATOM-intervene
{
0:r1=x; 0:r7=1;
1:r1=x; 1:r7=2;
x=0;
}
 P0              | P1           ;
 lwarx r5,r0,r1  | stw r7,0(r1) ;
 stwcx. r7,r0,r1 |              ;
exists (0:r5=0 /\\ x=1)
""", note="no write may intervene between the paired lwarx and stwcx.")


def corpus() -> List[CorpusEntry]:
    return list(_CORPUS)


def by_name(name: str) -> CorpusEntry:
    for entry in _CORPUS:
        if entry.name == name:
            return entry
    raise KeyError(name)


def families() -> Dict[str, List[CorpusEntry]]:
    grouped: Dict[str, List[CorpusEntry]] = {}
    for entry in _CORPUS:
        grouped.setdefault(entry.family, []).append(entry)
    return grouped


# ----------------------------------------------------------------------
# Doubleword variants (exercise the mixed-size machinery end to end)
# ----------------------------------------------------------------------

_add("MP+syncs+dword", "MP", "Forbidden", False, """
POWER MP+syncs+dword
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1          ;
 std r7,0(r1) | ld r5,0(r2) ;
 sync         | sync        ;
 std r8,0(r2) | ld r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
""", note="doubleword cells: message passing with syncs stays forbidden")

_add("MP+dword", "MP", "Allowed", True, """
POWER MP+dword
{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y;
x=0; y=0;
}
 P0           | P1          ;
 std r7,0(r1) | ld r5,0(r2) ;
 std r8,0(r2) | ld r4,0(r1) ;
exists (1:r5=1 /\\ 1:r4=0)
""")

_add("CoRR+dword", "coherence", "Forbidden", False, """
POWER CoRR+dword
{
0:r1=x; 0:r7=1;
1:r1=x;
x=0;
}
 P0           | P1          ;
 std r7,0(r1) | ld r5,0(r1) ;
              | ld r6,0(r1) ;
exists (1:r5=1 /\\ 1:r6=0)
""")

# A mixed-size coherence shape: a word store into a doubleword cell must be
# read back coherently by a doubleword load on another thread.
_add("MIXED-wr-dw", "coherence", "Forbidden", False, """
POWER MIXED-wr-dw
{
0:r1=x; 0:r7=1;
1:r1=x;
x=0;
}
 P0           | P1          ;
 stw r7,4(r1) | ld r5,0(r1) ;
 stw r7,4(r1) | ld r6,0(r1) ;
exists (1:r5=1 /\\ 1:r6=0)
""", note="overlapping word writes inside a doubleword cell respect CoRR")
