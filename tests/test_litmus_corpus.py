"""Concurrent validation over the built-in corpus (section 7).

Fast shapes run in the default suite; the heavier 3-4 thread cumulativity
tests are marked ``slow`` (run with ``pytest -m slow``).  The E3 benchmark
aggregates the full-corpus numbers.
"""

import pytest

from repro.isa.model import default_model
from repro.litmus.library import by_name, corpus
from repro.litmus.runner import run_litmus

MODEL = default_model()

#: 3-4 thread tests whose exhaustive exploration takes minutes.
SLOW = {
    "IRIW", "IRIW+addrs", "IRIW+syncs", "RWC+syncs", "ISA2",
    "WRC", "WRC+addrs", "WRC+sync+addr", "WRC+lwsync+addr",
    "ISA2+sync+data+addr", "2+2W", "2+2W+syncs", "2+2W+lwsyncs",
    "LB+datas+WW", "LB+addrs+WW", "PPOCA", "PPOAA",
}

FAST_NAMES = sorted(e.name for e in corpus() if e.name not in SLOW)
SLOW_NAMES = sorted(e.name for e in corpus() if e.name in SLOW)


@pytest.mark.parametrize("name", FAST_NAMES)
def test_model_matches_architected_status(name):
    entry = by_name(name)
    result = run_litmus(entry.parse(), MODEL)
    assert result.status == entry.architected, (
        f"{name}: model says {result.status}, "
        f"architecture says {entry.architected}"
    )


@pytest.mark.parametrize("name", FAST_NAMES)
def test_soundness_observed_implies_allowed(name):
    """Section 7's soundness direction: hardware-observed => model-allowed."""
    entry = by_name(name)
    if not entry.observed:
        pytest.skip("outcome not observed on hardware")
    result = run_litmus(entry.parse(), MODEL)
    assert result.witnessed, f"{name} observed on hardware but model forbids"


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_NAMES)
def test_slow_corpus_entries(name):
    if name == "IRIW+syncs":
        pytest.skip(
            "4 threads + 2 syncs exceed the Python state budget (>2M "
            "states); see EXPERIMENTS.md E3/E6 -- the paper's own "
            "'combinatorially challenging' worst case"
        )
    entry = by_name(name)
    result = run_litmus(entry.parse(), MODEL)
    assert result.status == entry.architected


def test_exploration_statistics_populated():
    result = run_litmus(by_name("MP").parse(), MODEL)
    stats = result.exploration.stats
    assert stats.states_visited > 0
    assert stats.final_states > 0
    assert stats.transitions_taken >= stats.states_visited - 1
    assert stats.seconds > 0


def test_all_four_mp_outcomes_enumerated():
    result = run_litmus(by_name("MP").parse(), MODEL)
    rows = {text for text, _hit in result.outcome_table()}
    # r5/r4 in {0,1}^2: all four combinations reachable without barriers.
    assert len(rows) == 4
