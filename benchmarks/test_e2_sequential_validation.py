"""E2 -- sequential validation (paper section 7).

The paper generates 6984 random single-instruction tests across the 154
user instructions, runs them on POWER 7 hardware and in the model, and
compares logged state up to undef ("all of these instructions pass all
their tests").  Here the golden emulator plays the hardware; the default
scale is trimmed for bench latency and can be raised with
REPRO_E2_PER_INSTRUCTION.
"""

import os
from collections import Counter

from conftest import print_table

from repro.testgen.compare import run_suite
from repro.testgen.sequential import generate_suite

PER_INSTRUCTION = int(os.environ.get("REPRO_E2_PER_INSTRUCTION", "10"))


def test_e2_sequential_validation(model, benchmark):
    tests = generate_suite(model, per_instruction=PER_INSTRUCTION, seed=2015)

    report = benchmark.pedantic(
        lambda: run_suite(model, tests), rounds=1, iterations=1
    )

    families = Counter(name.rstrip("0123456789") for name in report.per_instruction)
    print_table(
        "E2: sequential differential validation "
        f"(paper: 6984 tests over 154 instructions, all pass)",
        ["metric", "paper", "measured"],
        [
            ("instructions under test", 154, len(report.per_instruction)),
            ("generated tests", 6984, report.total),
            ("tests passed", 6984, report.passed),
            ("mismatching tests", 0, report.total - report.passed),
        ],
    )
    if report.failures:
        for failure in report.failures[:10]:
            print(
                f"  FAIL {failure.test.spec_name} 0x{failure.test.word:08x}: "
                + "; ".join(str(m) for m in failure.mismatches[:3])
            )
    assert report.all_passed, f"{len(report.failures)} differential failures"
    assert report.total == PER_INSTRUCTION * len(model.table.all_specs())
