"""Declarative instruction specifications for the POWER ISA model.

The paper extracts decode/execute definitions from the vendor XML (section
4); here each instruction is a single ``InstructionSpec`` carrying

  * the 32-bit encoding layout (fixed opcode bits + named operand fields),
    written in a compact string form, e.g. for ``stdu`` (Fig. 2):
        ``"62 RS:5 RA:5 DS:14 1:2"``
  * the Sail pseudocode of its ``execute`` clause,
  * assembly syntax for the litmus front-end's assembler/disassembler,
  * the invalid-form predicate (the paper's ``invalid`` function clause).

Decode, assembly and disassembly are all generated from the layout, mirroring
the paper's generated boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..sail.values import Bits


class EncodingError(Exception):
    """A malformed instruction-specification layout."""


@dataclass(frozen=True)
class FieldDef:
    """One contiguous bit field of a 32-bit instruction word."""

    name: Optional[str]  # None for fixed opcode bits
    pos: int  # first bit, POWER MSB-0 numbering
    width: int
    value: Optional[int] = None  # fixed value when name is None

    @property
    def shift(self) -> int:
        return 32 - self.pos - self.width

    @property
    def mask(self) -> int:
        return ((1 << self.width) - 1) << self.shift

    def extract(self, word: int) -> int:
        return (word & self.mask) >> self.shift

    def insert(self, word: int, value: int) -> int:
        if value < 0 or value >= (1 << self.width):
            raise EncodingError(
                f"value {value} does not fit field {self.name} ({self.width} bits)"
            )
        return (word & ~self.mask) | (value << self.shift)


def parse_layout(layout: str) -> Tuple[FieldDef, ...]:
    """Parse a layout string into field definitions.

    Tokens are ``value:width`` for fixed bits or ``NAME:width`` for operand
    fields; a bare leading integer is the 6-bit primary opcode.
    """
    fields: List[FieldDef] = []
    pos = 0
    for index, token in enumerate(layout.split()):
        if ":" in token:
            head, width_text = token.rsplit(":", 1)
            width = int(width_text)
        else:
            head, width = token, 6
            if index != 0:
                raise EncodingError(f"width missing in token {token!r}")
        if head.isdigit():
            fields.append(FieldDef(None, pos, width, int(head)))
        else:
            fields.append(FieldDef(head, pos, width))
        pos += width
    if pos != 32:
        raise EncodingError(f"layout {layout!r} covers {pos} bits, expected 32")
    return tuple(fields)


#: Operand fields holding general-purpose register numbers.
REG_FIELDS = frozenset({"RT", "RA", "RB", "RS"})

#: Immediate fields interpreted as signed in assembly syntax.
SIGNED_FIELDS = frozenset({"SI", "D", "DS", "BD", "LI"})


@dataclass(frozen=True)
class InstructionSpec:
    """A complete description of one underlying instruction."""

    name: str  # Sail AST constructor name, e.g. "Stdu"
    mnemonic: str  # base mnemonic, e.g. "stdu"
    form: str  # vendor form name: D, DS, X, XO, M, MD, B, I, XL, XFX
    facility: str  # "branch" | "fixed-point" | "barrier" | "atomic"
    layout: Tuple[FieldDef, ...]
    pseudocode: str
    syntax: Tuple[str, ...]  # e.g. ("RT", "D(RA)")
    invalid_when: Optional[str] = None  # Python expression over field values
    category: str = ""  # finer grouping for the coverage table

    # -- encoding ------------------------------------------------------

    def operand_fields(self) -> Tuple[FieldDef, ...]:
        return tuple(f for f in self.layout if f.name is not None)

    def fixed_mask_value(self) -> Tuple[int, int]:
        mask = value = 0
        for f in self.layout:
            if f.name is None:
                mask |= f.mask
                value |= f.value << f.shift
        return mask, value

    def primary_opcode(self) -> int:
        first = self.layout[0]
        if first.name is not None or first.pos != 0 or first.width != 6:
            raise EncodingError(f"{self.name}: first field is not a primary opcode")
        return first.value

    def encode(self, operands: Dict[str, int]) -> int:
        """Build the 32-bit word from named operand field values."""
        _, word = self.fixed_mask_value()
        seen = set()
        for f in self.operand_fields():
            try:
                word = f.insert(word, operands[f.name])
            except KeyError:
                raise EncodingError(f"{self.name}: missing operand {f.name}")
            seen.add(f.name)
        extra = set(operands) - seen
        if extra:
            raise EncodingError(f"{self.name}: unknown operands {sorted(extra)}")
        return word

    def decode_fields(self, word: int) -> Dict[str, int]:
        return {f.name: f.extract(word) for f in self.operand_fields()}

    def field_bits(self, word: int) -> Dict[str, Bits]:
        """Operand fields as sized ``Bits``, ready for the Sail environment."""
        return {
            f.name: Bits.from_int(f.extract(word), f.width)
            for f in self.operand_fields()
        }

    def matches(self, word: int) -> bool:
        mask, value = self.fixed_mask_value()
        return (word & mask) == value

    def is_invalid_form(self, fields: Dict[str, int]) -> bool:
        """Evaluate the invalid-form predicate on decoded field values."""
        if self.invalid_when is None:
            return False
        return bool(eval(self.invalid_when, {"__builtins__": {}}, dict(fields)))


class DecodeTable:
    """Primary-opcode-indexed decoder over a set of specs."""

    def __init__(self, specs: Iterable[InstructionSpec]):
        self._by_primary: Dict[int, List[InstructionSpec]] = {}
        self._by_name: Dict[str, InstructionSpec] = {}
        for spec in specs:
            self._by_primary.setdefault(spec.primary_opcode(), []).append(spec)
            if spec.name in self._by_name:
                raise EncodingError(f"duplicate spec name {spec.name}")
            self._by_name[spec.name] = spec
        self._check_no_overlap()

    def _check_no_overlap(self) -> None:
        for primary, specs in self._by_primary.items():
            for i, a in enumerate(specs):
                mask_a, value_a = a.fixed_mask_value()
                for b in specs[i + 1 :]:
                    mask_b, value_b = b.fixed_mask_value()
                    common = mask_a & mask_b
                    if (value_a & common) == (value_b & common):
                        raise EncodingError(
                            f"ambiguous encodings: {a.name} vs {b.name}"
                        )

    def lookup(self, word: int) -> Optional[InstructionSpec]:
        primary = (word >> 26) & 0x3F
        for spec in self._by_primary.get(primary, ()):
            if spec.matches(word):
                return spec
        return None

    def by_name(self, name: str) -> InstructionSpec:
        return self._by_name[name]

    def all_specs(self) -> List[InstructionSpec]:
        return list(self._by_name.values())


def spec(
    name: str,
    mnemonic: str,
    form: str,
    facility: str,
    layout: str,
    syntax: str,
    pseudocode: str,
    invalid_when: Optional[str] = None,
    category: str = "",
) -> InstructionSpec:
    """Convenience constructor used throughout ``repro.isa.defs``."""
    parts = tuple(s.strip() for s in syntax.split(",")) if syntax else ()
    return InstructionSpec(
        name=name,
        mnemonic=mnemonic,
        form=form,
        facility=facility,
        layout=parse_layout(layout),
        pseudocode=pseudocode,
        syntax=parts,
        invalid_when=invalid_when,
        category=category or facility,
    )
