"""``ppcmem2 serve``: the long-running envelope-checking daemon.

A stdlib-only HTTP service (``http.server.ThreadingHTTPServer``) in
front of one ``EnvelopeEngine`` with a persistent ``VerdictCache``:

* ``POST /v1/jobs`` submits a batch -- litmus sources and/or a generator
  spec -- onto an async job queue; a background scheduler thread drains
  the queue, running each batch through ``EnvelopeEngine.run_batch``
  (which fans cache misses across worker processes under the
  ``plan_worker_budget`` policy);
* ``GET /v1/jobs/<id>`` polls status, ``GET /v1/jobs/<id>/results``
  fetches the verdicts once done;
* ``POST /v1/query`` answers one test synchronously (a cache hit
  returns in microseconds -- the "millionth user asking about MP+syncs"
  path);
* ``GET /v1/health`` / ``GET /v1/stats`` report liveness, cache
  hit/miss counters and queue depths.

Shutdown is graceful: SIGTERM/SIGINT stop the HTTP loop, drain-stop the
scheduler, and terminate-and-join any in-flight corpus worker pools via
``concurrency.parallel.shutdown_active_pools`` -- the same handler that
keeps Ctrl-C from leaking exploration children at the CLI.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from .cache import SCHEMA_VERSION, VerdictCache
from .engine import EngineRequest, EnvelopeEngine

#: Default bind address of the service.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


@dataclass
class Job:
    """One submitted batch and its lifecycle."""

    id: str
    state: str = "queued"  # queued | running | done | failed
    submitted: float = 0.0
    started: Optional[float] = None
    finished: Optional[float] = None
    test_count: int = 0
    requests: List[EngineRequest] = field(default_factory=list)
    verdicts: List[dict] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    jobs_used: int = 0
    error: Optional[str] = None

    def summary(self) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "job": self.id,
            "state": self.state,
            "tests": self.test_count,
        }
        if self.state in ("done", "failed"):
            info["seconds"] = round(
                (self.finished or 0.0) - (self.started or 0.0), 6
            )
            info["cache_hits"] = self.hits
            info["cache_misses"] = self.misses
            info["workers"] = self.jobs_used
        if self.error:
            info["error"] = self.error
        return info


class ServiceDaemon:
    """Engine + cache + job queue behind an HTTP front-end."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        cache_path: str = ":memory:",
        jobs: Optional[int] = None,
        sail_backend: Optional[str] = None,
    ):
        self.cache = VerdictCache(cache_path)
        self.engine = EnvelopeEngine(cache=self.cache, sail_backend=sail_backend)
        self.worker_budget = jobs
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._job_counter = 0
        self._stop = threading.Event()
        self._scheduler: Optional[threading.Thread] = None
        self._server = _Server((host, port), _Handler)
        self._server.daemon_ref = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self):
        """The bound (host, port) -- port is resolved when 0 was asked."""
        return self._server.server_address[:2]

    def start_scheduler(self) -> None:
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="ppcmem2-scheduler", daemon=True
        )
        self._scheduler.start()

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Run until SIGTERM/SIGINT (blocking; the CLI entry point)."""
        if install_signal_handlers:
            # The handler must not call the blocking ``shutdown`` from
            # the thread running ``serve_forever`` (it would deadlock),
            # so it hands off to a one-shot thread.
            def _on_signal(signum, frame):
                threading.Thread(target=self.shutdown, daemon=True).start()

            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        self.start_scheduler()
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop the HTTP loop, the scheduler, and any worker children."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()
        if self._scheduler is not None and self._scheduler.is_alive():
            self._scheduler.join(timeout=10)
        from ..concurrency.parallel import shutdown_active_pools

        shutdown_active_pools()
        self.cache.close()

    # ------------------------------------------------------------------
    # Job queue
    # ------------------------------------------------------------------

    def submit(self, body: Dict[str, Any]) -> Job:
        """Queue a batch from a decoded ``POST /v1/jobs`` body."""
        requests = self._requests_from_body(body)
        if not requests:
            raise ValueError("empty job: no tests and no gen spec")
        with self._jobs_lock:
            self._job_counter += 1
            job = Job(
                id=f"job-{self._job_counter}",
                submitted=time.time(),
                test_count=len(requests),
                requests=requests,
            )
            self._jobs[job.id] = job
        self._queue.put(job.id)
        return job

    def _requests_from_body(self, body: Dict[str, Any]) -> List[EngineRequest]:
        options = body.get("options") or {}
        requests: List[EngineRequest] = []
        for item in body.get("tests") or []:
            requests.append(
                EngineRequest.from_options(
                    source=item["source"],
                    name=item.get("name"),
                    options=options,
                )
            )
        gen = body.get("gen")
        if gen:
            from ..litmus.diy import generate

            tests = generate(
                int(gen.get("seed", 0)),
                int(gen.get("size", 20)),
                max_threads=int(gen.get("max_threads", 4)),
                max_run=int(gen.get("max_run", 2)),
            )
            for test in tests:
                requests.append(
                    EngineRequest.from_options(
                        source=test.source, name=test.name, options=options
                    )
                )
        return requests

    def job(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def job_counts(self) -> Dict[str, int]:
        with self._jobs_lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            job = self.job(job_id)
            if job is None:  # pragma: no cover - jobs are never deleted
                continue
            job.state = "running"
            job.started = time.time()
            try:
                batch = self.engine.run_batch(
                    job.requests, jobs=self.worker_budget
                )
            except Exception as exc:  # noqa: BLE001 - reported to the client
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = time.time()
                continue
            job.verdicts = [
                dict(verdict.to_payload(), cached=verdict.cached)
                for verdict in batch.verdicts
            ]
            job.hits = batch.hits
            job.misses = batch.misses
            job.jobs_used = batch.jobs
            job.state = "done"
            job.finished = time.time()

    # ------------------------------------------------------------------
    # Synchronous query
    # ------------------------------------------------------------------

    def query(self, body: Dict[str, Any]) -> Dict[str, Any]:
        request = EngineRequest.from_options(
            source=body["source"],
            name=body.get("name"),
            options=body.get("options") or {},
        )
        verdict = self.engine.run_request(request)
        return dict(verdict.to_payload(), cached=verdict.cached)

    def stats(self) -> Dict[str, Any]:
        return {
            "cache": self.cache.stats(),
            "jobs": self.job_counts(),
            "queue_depth": self._queue.qsize(),
            "worker_budget": self.worker_budget,
            "sail_backend": self.engine.sail_backend,
        }


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    daemon_ref: Optional[ServiceDaemon] = None


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # Quiet by default: the daemon logs submissions, not every poll.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def daemon(self) -> ServiceDaemon:
        return self.server.daemon_ref  # type: ignore[attr-defined]

    def _send(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["v1", "health"]:
            self._send(
                200,
                {
                    "ok": True,
                    "schema": SCHEMA_VERSION,
                    "cache_entries": len(self.daemon.cache),
                },
            )
            return
        if parts == ["v1", "stats"]:
            self._send(200, self.daemon.stats())
            return
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job = self.daemon.job(parts[2])
            if job is None:
                self._send(404, {"error": f"no such job {parts[2]!r}"})
                return
            if len(parts) == 3:
                self._send(200, job.summary())
                return
            if parts[3] == "results":
                if job.state != "done":
                    self._send(
                        409, dict(job.summary(), error="job not done")
                    )
                    return
                self._send(
                    200, dict(job.summary(), verdicts=job.verdicts)
                )
                return
        self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            body = self._read_body()
        except (ValueError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"bad JSON body: {exc}"})
            return
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["v1", "jobs"]:
                job = self.daemon.submit(body)
                self._send(202, job.summary())
                return
            if parts == ["v1", "query"]:
                self._send(200, self.daemon.query(body))
                return
        except (KeyError, ValueError, TypeError) as exc:
            self._send(400, {"error": str(exc)})
            return
        self._send(404, {"error": f"unknown path {self.path!r}"})


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_path: str = ":memory:",
    jobs: Optional[int] = None,
    sail_backend: Optional[str] = None,
) -> int:
    """CLI entry point: run the daemon until SIGTERM/SIGINT."""
    daemon = ServiceDaemon(
        host=host,
        port=port,
        cache_path=cache_path,
        jobs=jobs,
        sail_backend=sail_backend,
    )
    bound_host, bound_port = daemon.address
    print(
        f"ppcmem2 serve: listening on http://{bound_host}:{bound_port} "
        f"(cache {cache_path}, schema v{SCHEMA_VERSION})",
        flush=True,
    )
    daemon.serve_forever()
    print("ppcmem2 serve: shut down cleanly", flush=True)
    return 0
