"""Sail: the instruction description language of the paper (section 3).

Public surface:

* :mod:`repro.sail.values` -- lifted bitvectors (``Bits``).
* :mod:`repro.sail.ast` / :mod:`repro.sail.parser` -- concrete syntax.
* :mod:`repro.sail.interp` -- the outcome-producing interpreter.
* :mod:`repro.sail.compile` -- the ahead-of-time Sail-to-Python compiler
  (same outcome protocol, specialised per-instruction bodies).
* :mod:`repro.sail.analysis` -- exhaustive footprint analysis.
* :mod:`repro.sail.outcomes` -- the ISA/concurrency interface types.
"""

from .values import Bits
from .outcomes import (
    Barrier,
    Done,
    Internal,
    Outcome,
    ReadMem,
    ReadReg,
    RegSlice,
    WriteMem,
    WriteReg,
)
from .interp import Interp, InterpState, initial_state, resume
from .compile import CompiledBackend, CompiledCode, CompiledState
from .analysis import Footprint, FootprintAnalysis
from .parser import parse_execute_clause, parse_statement

__all__ = [
    "CompiledBackend",
    "CompiledCode",
    "CompiledState",
    "Bits",
    "Barrier",
    "Done",
    "Internal",
    "Outcome",
    "ReadMem",
    "ReadReg",
    "RegSlice",
    "WriteMem",
    "WriteReg",
    "Interp",
    "InterpState",
    "initial_state",
    "resume",
    "Footprint",
    "FootprintAnalysis",
    "parse_execute_clause",
    "parse_statement",
]
