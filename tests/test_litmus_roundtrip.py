"""Pretty-printer round-trip property and parser error line numbers.

The emitter's normal form must be a fixed point of parse-then-emit:
``emit(parse(emit(t))) == emit(t)`` over generated tests (Hypothesis
drives the generator seed) and over the whole curated corpus.  Parse
errors must carry 1-based source line numbers.
"""

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.litmus import diy
from repro.litmus.emit import emit_litmus, format_condition
from repro.litmus.library import corpus
from repro.litmus.parser import LitmusSyntaxError, parse_litmus
from repro.litmus.test import And, MemoryEquals, Not, Or, RegisterEquals


# ----------------------------------------------------------------------
# Round-trip property
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_roundtrip_over_generated_tests(seed):
    for generated in diy.generate(seed, 3):
        emitted = generated.source
        assert emitted == emit_litmus(generated.test)
        reparsed = parse_litmus(emitted)
        assert emit_litmus(reparsed) == emitted


def test_roundtrip_over_curated_corpus():
    for entry in corpus():
        emitted = emit_litmus(entry.parse())
        reparsed = parse_litmus(emitted)
        assert emit_litmus(reparsed) == emitted, entry.name
        # The normal form preserves meaning: same programs and condition.
        original = entry.parse()
        assert reparsed.programs == original.programs
        assert reparsed.condition == original.condition
        assert reparsed.init_memory == original.init_memory


def test_roundtrip_nested_condition():
    source = """
POWER nested
{
0:r1=x;
x=0;
}
 P0           ;
 lwz r5,0(r1) ;
exists (~(0:r5=1 \\/ [x]=2) /\\ (x=0 \\/ 0:r5=3))
"""
    test = parse_litmus(source)
    emitted = emit_litmus(test)
    reparsed = parse_litmus(emitted)
    assert reparsed.condition == test.condition
    assert emit_litmus(reparsed) == emitted


def test_format_condition_precedence():
    # Or nested under And needs parentheses; And under Or does not.
    cond = And(Or(MemoryEquals("x", 1), MemoryEquals("y", 2)),
               RegisterEquals(0, "GPR5", 3))
    text = format_condition(cond)
    assert text == "([x]=1 \\/ [y]=2) /\\ 0:r5=3"
    cond2 = Or(And(MemoryEquals("x", 1), MemoryEquals("y", 2)),
               Not(RegisterEquals(0, "GPR5", 3)))
    assert format_condition(cond2) == "[x]=1 /\\ [y]=2 \\/ ~(0:r5=3)"


# ----------------------------------------------------------------------
# Parser error line numbers
# ----------------------------------------------------------------------


class TestErrorLineNumbers:
    def test_bad_init_entry(self):
        source = "POWER t\n{\n0:r1=x;\nbogus;\n}\n P0 ;\n nop ;\nexists (x=0)"
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus(source)
        assert excinfo.value.line == 4
        assert "line 4" in str(excinfo.value)

    def test_unsupported_register(self):
        source = "POWER t\n{\n0:f1=x;\n}\n P0 ;\n nop ;\nexists (x=0)"
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus(source)
        assert excinfo.value.line == 3

    def test_missing_semicolon_in_code_row(self):
        source = "POWER t\n{\nx=0;\n}\n P0 ;\n nop\nexists (x=0)"
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus(source)
        assert excinfo.value.line == 6
        assert "';'" in str(excinfo.value)

    def test_ragged_code_table(self):
        source = (
            "POWER t\n{\nx=0;\n}\n P0 | P1 ;\n nop | nop ;\n nop ;\n"
            "exists (x=0)"
        )
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus(source)
        assert excinfo.value.line == 7
        assert "ragged" in str(excinfo.value)

    def test_bad_condition(self):
        source = "POWER t\n{\nx=0;\n}\n P0 ;\n nop ;\nexists (x=)"
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus(source)
        assert excinfo.value.line == 7

    def test_unterminated_init_block(self):
        source = "POWER t\n{\nx=0;"
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus(source)
        assert excinfo.value.line == 2
        assert "unterminated" in str(excinfo.value)

    def test_bad_header(self):
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus("POWER\n{\nx=0;\n}\n P0 ;\n nop ;\nexists (x=0)")
        assert excinfo.value.line == 1

    def test_error_without_line_has_plain_message(self):
        with pytest.raises(LitmusSyntaxError) as excinfo:
            parse_litmus("")
        assert excinfo.value.line is None
        assert "line" not in str(excinfo.value)
