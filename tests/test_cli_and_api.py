"""Tests for the command-line front-end and the public package API."""

import struct

import pytest

import repro
from repro.litmus.library import by_name
from repro.tools.cli import main


@pytest.fixture()
def mp_litmus(tmp_path):
    path = tmp_path / "MP.litmus"
    path.write_text(by_name("MP").source)
    return str(path)


class TestCli:
    def test_run_command(self, mp_litmus, capsys):
        assert main(["run", mp_litmus]) == 0
        output = capsys.readouterr().out
        assert "Test MP: Allowed" in output
        assert "witnessed" in output

    def test_run_prints_outcomes(self, mp_litmus, capsys):
        main(["run", mp_litmus])
        output = capsys.readouterr().out
        assert "1:r4=" in output

    def test_elf_command(self, tmp_path, capsys):
        from repro.elf.writer import make_executable
        from repro.isa.assembler import Assembler
        from repro.isa.model import default_model

        assembler = Assembler(default_model())
        words, _ = assembler.assemble_program(
            ["li r3,5", "addi r3,r3,2"], 0x10000
        )
        blob = make_executable(0x10000, words, 0x20000, b"", {})
        path = tmp_path / "prog.elf"
        path.write_bytes(blob)
        assert main(["elf", str(path)]) == 0
        output = capsys.readouterr().out
        assert "r3 = 0x7" in output

    def test_interactive_quits_cleanly(self, mp_litmus, monkeypatch, capsys):
        inputs = iter(["0", "q"])
        monkeypatch.setattr("builtins.input", lambda *a: next(inputs))
        assert main(["interactive", mp_litmus]) == 0
        output = capsys.readouterr().out
        assert "Enabled transitions" in output
        assert "Storage subsystem state" in output

    def test_gen_lifted_caps_flags(self, capsys):
        assert main(
            ["gen", "--seed", "3", "--size", "5",
             "--max-threads", "6", "--max-run", "4"]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out.count("POWER ") == 5
        assert "generated 5 distinct tests" in captured.err

    def test_gen_check_exits_nonzero_on_violation(self, monkeypatch, capsys):
        # The exit-code contract: any oracle violation fails the run, so
        # CI gen smoke jobs cannot scroll past a soundness break.
        from repro.testgen import concurrent

        def fake_check_suite(tests, jobs=None, max_states=None,
                             strategy=None, params=None):
            checks = [
                concurrent.OracleCheck(
                    name=test.name,
                    family=test.family,
                    edge_names=test.edge_names,
                    expected="Forbidden",
                    status="Allowed",
                    ok=False,
                    oracle="axiomatic",
                )
                for test in tests
            ]
            return concurrent.OracleReport(
                checks=checks, jobs=1, wall_seconds=0.0
            )

        monkeypatch.setattr(concurrent, "check_suite", fake_check_suite)
        assert main(["gen", "--seed", "0", "--size", "2", "--check"]) == 1
        assert "VIOLATION" in capsys.readouterr().err

    def test_gen_check_clean_suite_exits_zero(self, capsys):
        assert main(
            ["gen", "--seed", "0", "--size", "2", "--check", "--jobs", "1"]
        ) == 0
        err = capsys.readouterr().err
        assert "0 violation(s)" in err


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_surface(self):
        test = repro.parse_litmus(by_name("MP+syncs").source)
        result = repro.run_litmus(test)
        assert result.status == "Forbidden"

    def test_default_model_is_shared(self):
        assert repro.default_model() is repro.default_model()

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_corpus_export(self):
        assert len(repro.litmus_corpus()) >= 40

    def test_sequential_machine_export(self):
        machine = repro.SequentialMachine()
        machine.set_gpr(1, 7)
        assert machine.gpr(1).to_int() == 7
