"""Thread symmetry and canonical state keys for the DPOR explorer.

Generated (diy-style) litmus tests are frequently *symmetric*: permuting
the threads together with a matching permutation of the data locations
maps the test onto itself (e.g. a store-buffering cycle over n threads
is invariant under rotation).  The explorer then walks n (or n!)
isomorphic copies of every subtree.  This module detects that symmetry
**from the initial system state alone** and supplies the canonical
seen-set keys the ``--reduction dpor`` driver (``search/dpor.py``)
deduplicates on:

* ``detect_symmetry(initial)`` -- brute-force the automorphism group of
  the initial state: a thread permutation pi is valid when every
  thread's code block equals its image's code block word-for-word
  (modulo the entry-point offset) and the initial registers translate
  consistently under a single data-cell permutation sigma (bound from
  register values that are cell addresses).  Automorphisms of the
  initial state compose and invert, so the accepted set is a group.
* ``CanonicalKeys.canonical(state)`` -- the sorted orbit representative
  (see ``keys.orbit_representative``): the minimum over the group of a
  structural encoding of the state with every thread id, instruction
  id, write/barrier id, address and address-valued datum renamed.

Independently of symmetry, the canonical encoding also quotients by the
explorer's *other* residual exponential: per-thread propagation-list
order of non-overlapping writes.  ``reduction.py`` establishes that
every thread-visible function of a propagation list (read values and
provenance, Group-A membership, coherence placement, coherence-point
blocking, final-memory enumeration) is insensitive to the relative
order of non-overlapping write events, yet the orders are key-distinct
-- the blowup the seen-set can never collapse on its own.  The
encoding therefore replaces each propagation list by its *commuting
normal form*: within each barrier-delimited segment (barriers are kept
as hard boundaries), write events are re-emitted greedily smallest-id
first among those whose earlier cell-overlapping events have already
been emitted.  Overlap is tested at data-cell granularity (same cell =
ordered, conservatively), and a write reaching outside every known cell
blocks all reordering around it.

Renamed values are classified by address range: an int inside a data
cell translates through sigma, an int inside a thread's code block
translates by the entry-point delta (branch targets, link registers),
anything else is fixed.  Detection refuses symmetry when an *initial*
value would be misclassified; run-time values are produced by moves of
those initial values, loads, small immediates and CIA arithmetic, all
of which the classification maps faithfully.

When a state embeds an opaque Sail interpreter continuation (the
``interp`` backend) the walk raises ``_Opaque`` and the caller falls
back to the exact ``state.key()`` -- no merging for that state, still
sound.  The identity-only fast path (symmetry off or trivial) skips
the deep walk entirely and reuses the state's memoised component keys,
recomputing only the normal-form event lists.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import permutations
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..sail.compile import CompiledState
from ..sail.values import Bits
from .events import INITIAL_TID, BarrierId, WriteId
from .keys import CachedKey, orbit_representative
from .system import SystemState, Transition

#: Bound on the per-search walk memo tables.
_MEMO_LIMIT = 1 << 16

#: Wildcard cell index: a footprint reaching outside every known cell.
OUT_OF_CELLS = -1


class _Opaque(Exception):
    """The state embeds a value the structural walk cannot encode."""


class _Geometry:
    """Shared address-space layout: data cells and per-thread code blocks."""

    __slots__ = (
        "cells", "cell_starts", "cell_order", "blocks", "block_starts",
        "entries",
    )

    def __init__(self, cells, blocks, entries):
        #: (addr, size) per initial-write index, in initial-write order.
        self.cells: List[Tuple[int, int]] = cells
        order = sorted(range(len(cells)), key=lambda i: cells[i][0])
        self.cell_starts = [cells[i][0] for i in order]
        #: Position in ``cell_starts`` -> initial-write index.
        self.cell_order = order
        #: (lo, hi, tid) per thread code block, sorted by lo.
        self.blocks: List[Tuple[int, int, int]] = blocks
        self.block_starts = [lo for lo, _hi, _tid in blocks]
        #: tid -> entry point.
        self.entries: Dict[int, int] = entries

    def locate_cell(self, value: int) -> Optional[Tuple[int, int]]:
        """(cell index, offset) when ``value`` lies inside a data cell."""
        pos = bisect_right(self.cell_starts, value) - 1
        if pos >= 0:
            index = self.cell_order[pos]
            addr, size = self.cells[index]
            if value < addr + size:
                return index, value - addr
        return None

    def locate_code(self, value: int) -> Optional[Tuple[int, int]]:
        """(tid, offset) when ``value`` lies inside a thread's code block."""
        pos = bisect_right(self.block_starts, value) - 1
        if pos >= 0:
            lo, hi, tid = self.blocks[pos]
            if value < hi:
                return tid, value - lo
        return None

    def cells_of_range(self, addr: int, size: int) -> FrozenSet[int]:
        """Indexes of cells a byte range touches (+ wildcard if it leaks).

        Used both for the normal-form overlap test and for the DPOR
        race abstraction's footprints.
        """
        touched = set()
        covered = 0
        for index, (base, span) in enumerate(self.cells):
            lo = max(addr, base)
            hi = min(addr + size, base + span)
            if lo < hi:
                touched.add(index)
                covered += hi - lo
        if covered < size:
            touched.add(OUT_OF_CELLS)
        return frozenset(touched)


class SymElem:
    """One group element: a thread permutation + its cell permutation."""

    __slots__ = ("index", "identity", "pi", "pi_inv", "sigma", "sigma_inv",
                 "geometry")

    def __init__(self, index: int, pi: Dict[int, int],
                 sigma: Dict[int, int], geometry: _Geometry):
        self.index = index
        self.pi = pi
        self.pi_inv = {v: k for k, v in pi.items()}
        self.sigma = sigma
        self.sigma_inv = {v: k for k, v in sigma.items()}
        self.geometry = geometry
        self.identity = all(v == k for k, v in pi.items()) and all(
            v == k for k, v in sigma.items()
        )

    # -- renaming ----------------------------------------------------------

    def map_tid(self, tid: int) -> int:
        return self.pi.get(tid, tid)

    def map_cell(self, index: int) -> int:
        return self.sigma.get(index, index)

    def map_val(self, value: int) -> int:
        """Rename an integer datum by address classification."""
        if self.identity:
            return value
        geometry = self.geometry
        cell = geometry.locate_cell(value)
        if cell is not None:
            index, offset = cell
            return geometry.cells[self.sigma[index]][0] + offset
        code = geometry.locate_code(value)
        if code is not None:
            tid, offset = code
            return geometry.entries[self.pi[tid]] + offset
        return value

    # -- tuple encodings (type-stable, totally ordered) --------------------

    def eioid(self, ioid) -> Tuple[int, int]:
        return (self.pi.get(ioid[0], ioid[0]), ioid[1])

    def ewid(self, wid: WriteId) -> tuple:
        if wid.tid == INITIAL_TID:
            index = self.sigma.get(wid.ioid[1], wid.ioid[1])
            return ("W", INITIAL_TID, (INITIAL_TID, index), wid.index)
        tid = self.pi.get(wid.tid, wid.tid)
        return ("W", tid, (tid, wid.ioid[1]), wid.index)

    def ebid(self, bid: BarrierId) -> tuple:
        tid = self.pi.get(bid.tid, bid.tid)
        return ("B", tid, (tid, bid.ioid[1]))

    def ebits(self, value: Bits) -> tuple:
        if value.is_known:
            return ("b", value.width, self.map_val(value.ones))
        return ("u", value.width, value.ones, value.undefs, value.unknowns)


def _identity_elem(geometry: _Geometry, tids) -> SymElem:
    return SymElem(0, {t: t for t in tids},
                   {i: i for i in range(len(geometry.cells))}, geometry)


class SymmetryGroup:
    """The automorphism group of an initial state (identity always first)."""

    __slots__ = ("geometry", "elems")

    def __init__(self, geometry: _Geometry, elems: List[SymElem]):
        self.geometry = geometry
        self.elems = elems

    @property
    def nontrivial(self) -> bool:
        return len(self.elems) > 1


def _build_geometry(initial: SystemState) -> Tuple[_Geometry, List[Bits]]:
    """The address layout plus the initial cell values (wid-index order)."""
    storage = initial.storage
    init = sorted(
        (wid.ioid[1], write)
        for wid, write in storage.writes_seen.items()
        if wid.tid == INITIAL_TID
    )
    cells = [(write.addr, write.size) for _i, write in init]
    values = [write.value for _i, write in init]
    entries = {}
    for tid, thread in initial.threads.items():
        entries[tid] = thread.initial_fetch_address
    blocks: List[Tuple[int, int, int]] = []
    if entries and None not in entries.values():
        by_entry = sorted((entry, tid) for tid, entry in entries.items())
        entry_points = [entry for entry, _tid in by_entry]
        extents = {tid: entry for entry, tid in by_entry}
        orphan = False
        for addr in initial.program_memory:
            pos = bisect_right(entry_points, addr) - 1
            if pos < 0:
                orphan = True
                break
            _entry, tid = by_entry[pos]
            extents[tid] = max(extents[tid], addr + 4)
        if not orphan:
            blocks = sorted(
                (entries[tid], hi, tid) for tid, hi in extents.items()
            )
    return _Geometry(cells, blocks, entries), values


def detect_symmetry(initial: SystemState) -> Optional[SymmetryGroup]:
    """The automorphism group of ``initial``, or ``None`` when trivial.

    Conservative: any layout irregularity (overlapping cells, unknown or
    address-colliding initial values, shared/orphaned code, too many
    threads for brute force) refuses symmetry rather than risking an
    unsound merge.
    """
    tids = sorted(initial.threads)
    n = len(tids)
    if n < 2 or n > 7:
        return None
    geometry, cell_values = _build_geometry(initial)
    cells = geometry.cells
    if not geometry.blocks or len(geometry.blocks) != n:
        return None
    # Non-overlapping cells, disjoint from code: required so that value
    # classification (and hence sigma-translation) is unambiguous.
    spans = sorted(
        [(a, a + s) for a, s in cells]
        + [(lo, hi) for lo, hi, _tid in geometry.blocks]
    )
    for (_a0, end0), (a1, _e1) in zip(spans, spans[1:]):
        if a1 < end0:
            return None
    # Initial cell values must be known plain data: they are compared
    # (not translated) across sigma pairs below.
    for value in cell_values:
        if not value.is_known:
            return None
        plain = value.to_int()
        if geometry.locate_cell(plain) or geometry.locate_code(plain):
            return None
    # Per-thread code signatures: (offset, opcode) word lists.
    signature: Dict[int, tuple] = {tid: () for tid in tids}
    collected: Dict[int, List[Tuple[int, int]]] = {tid: [] for tid in tids}
    for addr, word in initial.program_memory.items():
        located = geometry.locate_code(addr)
        if located is None:
            return None
        tid, offset = located
        collected[tid].append((offset, word))
    for tid in tids:
        signature[tid] = tuple(sorted(collected[tid]))
    regs = {tid: initial.threads[tid].initial_registers for tid in tids}

    def classify(value: int):
        cell = geometry.locate_cell(value)
        if cell is not None:
            return ("cell",) + cell
        code = geometry.locate_code(value)
        if code is not None:
            return ("code",) + code
        return ("plain", value)

    elems: List[SymElem] = []
    for perm in permutations(range(n)):
        pi = {tids[i]: tids[perm[i]] for i in range(n)}
        if any(signature[t] != signature[pi[t]] for t in tids):
            continue
        if any(set(regs[t]) != set(regs[pi[t]]) for t in tids):
            continue
        sigma: Dict[int, int] = {}
        ok = True
        for tid in tids:
            if not ok:
                break
            image = regs[pi[tid]]
            for name, value in regs[tid].items():
                other = image[name]
                if not value.is_known or not other.is_known:
                    # Untranslated by the walk; must match verbatim.
                    if value == other and value.width == other.width:
                        continue
                    ok = False
                    break
                if value.width != other.width:
                    ok = False
                    break
                mine = classify(value.to_int())
                theirs = classify(other.to_int())
                if mine[0] != theirs[0]:
                    ok = False
                    break
                if mine[0] == "cell":
                    if mine[2] != theirs[2]:
                        ok = False
                        break
                    bound = sigma.get(mine[1])
                    if bound is None:
                        sigma[mine[1]] = theirs[1]
                    elif bound != theirs[1]:
                        ok = False
                        break
                elif mine[0] == "code":
                    if mine[2] != theirs[2] or pi[mine[1]] != theirs[1]:
                        ok = False
                        break
                elif mine[1] != theirs[1]:
                    ok = False
                    break
        if not ok:
            continue
        for i in range(len(cells)):
            sigma.setdefault(i, i)
        if sorted(sigma.values()) != list(range(len(cells))):
            continue
        if any(
            cells[i][1] != cells[sigma[i]][1]
            or cell_values[i] != cell_values[sigma[i]]
            for i in range(len(cells))
        ):
            continue
        elems.append(SymElem(len(elems), pi, sigma, geometry))
    if len(elems) <= 1:
        return None
    elems.sort(key=lambda e: not e.identity)  # identity first
    for index, elem in enumerate(elems):
        elem.index = index
    return SymmetryGroup(geometry, elems)


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------


def _encode_opt(value, encode):
    return (0,) if value is None else (1, encode(value))


class CanonicalKeys:
    """Canonical seen-keys: normal-form event lists + orbit minimisation.

    One instance lives for one DPOR search.  ``canonical(state)``
    returns ``(key, elem)`` where ``elem`` is the group element whose
    renaming realised the minimum (always the identity in trivial
    mode); the DPOR driver uses it to translate per-state bookkeeping
    into and out of canonical coordinates.
    """

    def __init__(self, initial: SystemState, group: Optional[SymmetryGroup]):
        if group is not None and group.nontrivial:
            self.group = group
            geometry = group.geometry
        else:
            geometry, _values = _build_geometry(initial)
            self.group = None
        self.geometry = geometry
        tids = sorted(initial.threads)
        self.identity = (
            group.elems[0] if self.group else _identity_elem(geometry, tids)
        )
        self.elems = group.elems if self.group else [self.identity]
        #: (addr, size) list the symmetric search must observe (closed
        #: under sigma by construction: sigma permutes cell indexes).
        self.cells = list(geometry.cells)
        self._write_cells: Dict[WriteId, FrozenSet[int]] = {}
        self._events_memo: Dict[tuple, tuple] = {}
        self._thread_memo: Dict[tuple, tuple] = {}
        self._instance_memo: Dict[tuple, tuple] = {}
        self._storage_memo: Dict[tuple, tuple] = {}

    @property
    def trivial(self) -> bool:
        return self.group is None

    # -- public API --------------------------------------------------------

    def canonical(self, state: SystemState) -> Tuple[CachedKey, SymElem]:
        """The orbit-representative key of ``state`` + the realising elem."""
        if self.group is None:
            return self._canonical_trivial(state), self.identity
        try:
            candidates = [
                self._walk_state(state, elem) for elem in self.elems
            ]
        except _Opaque:
            # Un-encodable continuation (interp backend): exact key, no
            # merging beyond key equality for this state.
            return state.key(), self.identity
        key, index = orbit_representative(candidates)
        return key, self.elems[index]

    def encode_transition(self, elem: SymElem, transition: Transition):
        """A hashable renaming of ``transition`` (canonical coordinates).

        In trivial mode the transition itself is the encoding (only the
        identity ever encodes, so equality is preserved verbatim).
        """
        if self.group is None:
            return transition
        detail = tuple(
            self._encode_detail(elem, part) for part in transition.detail
        )
        return (
            transition.kind,
            _encode_opt(transition.tid, elem.map_tid),
            _encode_opt(transition.ioid, elem.eioid),
            detail,
        )

    def write_cells(self, wid: WriteId, storage) -> FrozenSet[int]:
        """Cell indexes a write touches (memoised; footprints are fixed)."""
        cached = self._write_cells.get(wid)
        if cached is None:
            write = storage.writes_seen[wid]
            cached = self.geometry.cells_of_range(write.addr, write.size)
            if len(self._write_cells) >= _MEMO_LIMIT:
                self._write_cells.clear()
            self._write_cells[wid] = cached
        return cached

    # -- trivial-mode fast path --------------------------------------------

    def _canonical_trivial(self, state: SystemState) -> CachedKey:
        """Identity-only canonical key: real component keys + normal-form
        event lists.  No renaming, no deep thread walk."""
        storage = state.storage
        storage.key()  # materialise the memoised component keys
        threads_part = tuple(
            state.threads[tid].key() for tid in sorted(state.threads)
        )
        events_part = self._events_component(storage, self.identity, raw=True)
        return CachedKey((
            "NF",
            threads_part,
            storage._writes_key,
            storage._coh_key,
            events_part,
            storage._syncs_key,
            storage._atomic_key,
            storage._cp_key,
        ))

    # -- the propagation-list quotient -------------------------------------

    def _events_component(self, storage, elem: SymElem, raw: bool) -> tuple:
        """All propagation lists, quotiented to (event set, live order).

        The model consumes the *order* of a thread's propagation list
        through exactly four predicates (``storage.py``):

        * ``read_response`` / store-conditional resolution -- later
          **overlapping** write wins per byte;
        * ``can_propagate_write(w, target)`` -- barriers before ``w`` in
          ``w``'s *origin* list must already be at the target (Group A);
        * ``can_propagate_barrier(b, target)`` -- every event before
          ``b`` in ``b``'s *origin* list must be at the target (with
          superseded writes waived);
        * ``_has_cp_blocker(w)`` (and the analogous barrier-force check
          in ``reduction.py``) -- writes preceding the last barrier
          before ``w``, and earlier overlapping writes, must reach their
          coherence points first.

        Each consulted order fact dies *permanently* once its consumer
        can no longer fire: a write past its coherence point is skipped
        by every blocker scan, and a fully propagated event (present in
        every list) makes its Group-A gating vacuous -- both conditions
        are monotone.  The canonical encoding is therefore the sorted
        event set plus the still-live ordered pairs, expressed as index
        pairs into the sorted set.  States differing only in dead
        history order (the residual exponential after sleep sets) key
        identically; every predicate above evaluates identically on
        key-equal states, and death's monotonicity keeps the merged
        states equivalent under every future transition.
        """
        memo_key = (
            storage._events_tuple,
            storage._cp_key,
            -1 if raw else elem.index,
        )
        cached = self._events_memo.get(memo_key)
        if cached is not None:
            return cached
        threads = storage.threads
        events_pos = storage._events_pos
        cps = storage.coherence_points
        overlaps = storage._overlaps
        parts = []
        for tid in threads:
            events = storage.events_propagated_to[tid]
            n = len(events)
            # Fully propagated = present in every thread's list; initial
            # writes are born that way.
            fully = [
                all(event in events_pos[t] for t in threads)
                for event in events
            ]
            live = []
            for j in range(n):
                tag_j, pay_j = events[j]
                if tag_j not in ("w", "b"):  # pragma: no cover
                    raise _Opaque()
                for i in range(j):
                    tag_i, pay_i = events[i]
                    if tag_i == "w":
                        if tag_j == "w":
                            # Same-byte recency + coherence derivation.
                            alive = pay_j in overlaps[pay_i]
                        else:
                            # w in b's Group A, or w a cp-blocker via b.
                            alive = pay_i not in cps or (
                                pay_j.tid == tid
                                and not fully[i]
                                and not fully[j]
                            )
                    elif tag_j == "w":
                        # b gates w's propagation (origin Group A), or
                        # delimits w's cp-blocker prefix.
                        alive = pay_j not in cps or (
                            pay_j.tid == tid
                            and not fully[i]
                            and not fully[j]
                        )
                    else:
                        # b1 in b2's origin Group A.
                        alive = (
                            pay_j.tid == tid
                            and not fully[i]
                            and not fully[j]
                        )
                    if alive:
                        live.append((i, j))
            if raw:
                encoded = events
            else:
                encoded = [
                    ("w", elem.ewid(e[1])) if e[0] == "w"
                    else ("b", elem.ebid(e[1]))
                    for e in events
                ]
            order = sorted(range(n), key=lambda k: encoded[k])
            rank = [0] * n
            for position, k in enumerate(order):
                rank[k] = position
            parts.append((
                tid if raw else elem.map_tid(tid),
                (
                    tuple(encoded[k] for k in order),
                    tuple(sorted((rank[i], rank[j]) for i, j in live)),
                ),
            ))
        value = tuple(parts) if raw else tuple(sorted(parts))
        if len(self._events_memo) >= _MEMO_LIMIT:
            self._events_memo.clear()
        self._events_memo[memo_key] = value
        return value

    # -- the symmetric deep walk -------------------------------------------

    def _walk_state(self, state: SystemState, elem: SymElem) -> tuple:
        by_new_tid = sorted(
            (elem.map_tid(tid), tid) for tid in state.threads
        )
        threads_part = tuple(
            self._walk_thread(state.threads[tid], elem)
            for _new, tid in by_new_tid
        )
        return ("SYMM", threads_part, self._walk_storage(state.storage, elem))

    def _walk_thread(self, thread, elem: SymElem) -> tuple:
        memo_key = (thread.key(), elem.index)
        cached = self._thread_memo.get(memo_key)
        if cached is not None:
            return cached
        instances = thread.instances
        value = (
            elem.map_tid(thread.tid),
            tuple(
                self._walk_instance(instances[ioid], elem)
                for ioid in thread.sorted_ioids()
            ),
            self._walk_reservation(thread.reservation, elem),
        )
        if len(self._thread_memo) >= _MEMO_LIMIT:
            self._thread_memo.clear()
        self._thread_memo[memo_key] = value
        return value

    def _walk_reservation(self, reservation, elem: SymElem) -> tuple:
        if reservation is None:
            return (0,)
        addr, size, wid, ioid = reservation
        return (1, elem.map_val(addr), size, elem.ewid(wid), elem.eioid(ioid))

    def _walk_instance(self, instance, elem: SymElem) -> tuple:
        memo_key = (instance.key(), elem.index)
        cached = self._instance_memo.get(memo_key)
        if cached is not None:
            return cached
        ebits = elem.ebits
        eioid = elem.eioid
        value = (
            eioid(instance.ioid),
            elem.map_val(instance.address),
            instance.instruction.word,
            self._walk_mos(instance.mos, elem),
            tuple(
                (
                    (r.slice.reg, r.slice.lo, r.slice.hi),
                    ebits(r.value),
                    tuple(sorted(eioid(s) for s in r.sources)),
                )
                for r in instance.reg_reads
            ),
            tuple(
                ((r.slice.reg, r.slice.lo, r.slice.hi), ebits(r.value))
                for r in instance.reg_writes
            ),
            tuple(
                (
                    elem.map_val(r.addr),
                    r.size,
                    ebits(r.value),
                    r.kind,
                    tuple(
                        (elem.ewid(wid), off, length)
                        for wid, off, length in r.storage_sources
                    ),
                    _encode_opt(r.forwarded_from, eioid),
                )
                for r in instance.mem_reads
            ),
            tuple(
                (
                    elem.ewid(w.wid),
                    elem.map_val(w.addr),
                    w.size,
                    ebits(w.value),
                    1 if w.is_conditional else 0,
                )
                for w in instance.mem_writes
            ),
            1 if instance.writes_committed else 0,
            _encode_opt(instance.sc_resolved, lambda b: 1 if b else 0),
            _encode_opt(instance.barrier_kind, lambda k: k),
            1 if instance.barrier_committed else 0,
            _encode_opt(instance.nia, elem.map_val),
            1 if instance.finished else 0,
            _encode_opt(instance.prev, eioid),
            tuple(sorted(
                (elem.map_val(addr), eioid(child))
                for addr, child in instance.children.items()
            )),
            tuple(sorted(eioid(s) for s in instance.addr_sources)),
        )
        if len(self._instance_memo) >= _MEMO_LIMIT:
            self._instance_memo.clear()
        self._instance_memo[memo_key] = value
        return value

    def _walk_mos(self, mos: tuple, elem: SymElem) -> tuple:
        tag = mos[0]
        if tag == "done":
            return ("done",)
        if tag == "plain":
            return ("plain", self._walk_sail(mos[1], elem))
        if tag == "blocked_reg":
            reg_slice, pending = mos[1], mos[2]
            return (
                "blocked_reg",
                (reg_slice.reg, reg_slice.lo, reg_slice.hi),
                self._walk_sail(pending, elem),
            )
        if tag == "pending_read":
            _tag, kind, addr, size, pending = mos
            return ("pending_read", kind, elem.map_val(addr), size,
                    self._walk_sail(pending, elem))
        if tag == "pending_sc":
            _tag, addr, size, value, pending = mos
            return ("pending_sc", elem.map_val(addr), size,
                    elem.ebits(value), self._walk_sail(pending, elem))
        raise _Opaque()

    def _walk_sail(self, pending, elem: SymElem) -> tuple:
        if type(pending) is not CompiledState:
            raise _Opaque()
        # ``code`` is a process-wide pure function of ``word`` and the
        # clause, and ``fields`` of ``word``: the word + resume values
        # determine the continuation.
        values = tuple(
            (0,) if v is None else (1, elem.ebits(v))
            for v in pending.values
        )
        return ("CS", pending.word, 1 if pending.pending else 0, values)

    def _walk_storage(self, storage, elem: SymElem) -> tuple:
        storage_key = storage.key()
        memo_key = (storage_key, elem.index)
        cached = self._storage_memo.get(memo_key)
        if cached is not None:
            return cached
        ewid = elem.ewid
        value = (
            tuple(sorted(ewid(wid) for wid in storage.writes_seen)),
            tuple(sorted(
                (ewid(wid), tuple(sorted(ewid(s) for s in successors)))
                for wid, successors in storage.coherence_after.items()
                if successors
            )),
            self._events_component(storage, elem, raw=False),
            tuple(sorted(elem.ebid(b) for b in storage.unacknowledged_syncs)),
            tuple(sorted(elem.ebid(b) for b in storage.acknowledged_syncs)),
            tuple(sorted(
                (ewid(a), ewid(b)) for a, b in storage.atomic_pairs
            )),
            tuple(sorted(ewid(w) for w in storage.coherence_points)),
        )
        if len(self._storage_memo) >= _MEMO_LIMIT:
            self._storage_memo.clear()
        self._storage_memo[memo_key] = value
        return value

    def _encode_detail(self, elem: SymElem, part):
        if isinstance(part, WriteId):
            return elem.ewid(part)
        if isinstance(part, BarrierId):
            return elem.ebid(part)
        if isinstance(part, tuple):  # an Ioid
            return elem.eioid(part)
        return part  # bools (resolve_sc) and other plain scalars


# ----------------------------------------------------------------------
# Outcome closure
# ----------------------------------------------------------------------


def close_outcomes(outcomes, group: SymmetryGroup, requested_cells):
    """Close an outcome set under the group; project memory to
    ``requested_cells`` (in the requested order).

    A symmetric search only reports outcomes of orbit representatives;
    the pruned copies' outcomes are exactly the group translations.
    Register values and stored values are renamed by classification
    (address registers are registers of interest).
    """
    requested = tuple(requested_cells)
    closed = set()
    for register_part, memory_part in outcomes:
        for elem in group.elems:
            registers = tuple(sorted(
                (
                    elem.map_tid(tid),
                    name,
                    None if value is None else elem.map_val(value),
                )
                for tid, name, value in register_part
            ))
            memory = {
                (elem.map_val(addr), size): elem.map_val(value)
                for addr, size, value in memory_part
            }
            closed.add((
                registers,
                tuple(
                    (addr, size, memory[(addr, size)])
                    for addr, size in requested
                ),
            ))
    return closed
