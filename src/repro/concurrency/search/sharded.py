"""Intra-test parallel exploration: sharded-frontier multiprocessing DFS.

One litmus test's state graph is explored by several OS processes:

1. *Prefix expansion.*  The parent runs a breadth-first expansion of the
   graph down to ``shard_depth`` levels, deduplicating against a shared
   seen-set and summarising any final/deadlocked states it meets.  The
   surviving leaves are the *subtree roots*.
2. *Key-digest partitioning.*  Each root is assigned to the worker that
   owns its state key's digest partition (``crc32(key bytes) % jobs``),
   so ownership is a pure function of the state -- not of scheduling
   order, and not of ``PYTHONHASHSEED``: the digest walks the key
   structure itself instead of trusting the builtin salted ``hash``, so
   partition assignment (and with it work accounting and worker-failure
   reproduction) is byte-identical across interpreter runs.
3. *Worker DFS.*  Workers are forked (the ``fork`` start method is
   required: subtree root states and the prefix seen-set are inherited
   by memory, never pickled), and each runs the ordinary sequential
   driver over its roots with ONE worker-local seen-set seeded from the
   prefix, so duplicates *within* a partition are explored once.
4. *Join.*  Outcome sets (plain picklable tuples) and
   ``ExplorationStats`` come back over per-worker pipes (EOF on a pipe
   means the worker died without reporting -- a loud failure, not a
   hang) and are merged; a state reachable from roots owned by two
   different workers is explored by both, which costs time but never
   changes the result because outcomes merge as sets.

Determinism argument: the prefix expansion and every worker DFS are
deterministic, and the only cross-worker effects are set unions and
commutative counter merges, so verdicts and outcome sets are identical
to ``SequentialDFS`` regardless of scheduling.  Work *accounting* is not
bit-stable: cross-partition duplicates and scheduling skew make
``states_visited``/``transitions_taken`` an honest measure of work done,
not of unique states; ``unique_states`` (the prefix seen-set size plus
each worker's seen-set growth) is the states-covered counter.

The state budget is enforced per shard: the prefix charges the shared
budget, and each worker may visit up to the remaining budget in its own
partition, so a sharded run can do up to ``jobs`` times the sequential
work before giving up -- budget exhaustion still raises
``ExplorationLimit`` (with merged partial stats attached).

``reduction``/``context_bound`` (see ``reduction.py``) thread through
the whole pipeline: the prefix expansion prunes exactly as the reduced
driver would, each subtree root carries its sleep set and scheduling
context into the owning worker, and workers resume ``run_search`` from
those seeds.  Sleep-set pruning stays sound across partitions because
every pruned interleaving is covered by a sibling subtree that is
itself some worker's root, and outcomes merge as sets; a context-bound
truncation in the prefix or any worker downgrades the merged result to
``complete=False``.

Witness searches ship transition-*index* paths back from workers and
replay them in the parent (enumeration is deterministic), so traces
never need to be picklable.  When sharding is impossible -- one job,
no ``fork`` start method, already inside a daemonic pool worker, or
deadlock-state collection requested -- the strategy degrades to
``SequentialDFS`` (with the same reduction options).

``reduction="dpor"`` is accepted but the sharded pipeline itself runs
it as sleep sets (see ``ShardedParallel._shard_reduction`` for why the
mutable whole-search dpor state cannot be partitioned across one-shot
fork workers); only the sequential degradation path runs true
source-DPOR with symmetry canonicalisation.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .base import SearchStrategy
from .core import (
    CollectOutcomes,
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    StopOnWitness,
    Witness,
    extend_index_path,
    extend_trace,
    replay_index_path,
    run_search,
    visit_sleep,
)
from .reduction import make_reducer
from .sequential import SequentialDFS
from ..events import BarrierId, WriteId
from ..keys import CachedKey
from ..system import SystemState, Transition
from ..thread import ModelError
from ...sail.values import Bits

#: Parent-side exploration context inherited by forked workers:
#: (roots, prefix seen-structure, cells, per-worker limit, predicate,
#: (reduction, context_bound) policy).
_SHARD_CONTEXT = None

#: A subtree root: (prefix trace, state, sleep set, scheduling context).
Root = Tuple[Tuple[Transition, ...], SystemState, frozenset,
             Tuple[Optional[int], int]]


def _serialize_key(value, out: bytearray) -> None:
    """Append a stable, hash-seed-independent encoding of a key part.

    State keys are nested tuples of ints/strings/identifiers/``Bits``
    wrapped in ``CachedKey`` layers, but instance keys also embed opaque
    in-flight operation objects; those fall back to their type name.
    The digest built from this encoding needs *determinism*, not
    injectivity -- a collision only co-locates two roots in the same
    partition.
    """
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif type(value) is int:
        out += b"i%d;" % value
    elif type(value) is str:
        out += b"s%d:" % len(value)
        out += value.encode("utf-8", "surrogatepass")
    elif type(value) is CachedKey:
        _serialize_key(value.value, out)
    elif type(value) is tuple:
        out += b"("
        for item in value:
            _serialize_key(item, out)
        out += b")"
    elif type(value) is WriteId or type(value) is BarrierId:
        out += b"I"
        _serialize_key(value._sort_key, out)
    elif type(value) is Bits:
        out += b"B%d,%d,%d,%d;" % (
            value.width, value.ones, value.undefs, value.unknowns
        )
    elif type(value) is frozenset:
        parts = []
        for item in value:
            piece = bytearray()
            _serialize_key(item, piece)
            parts.append(bytes(piece))
        out += b"{"
        for piece in sorted(parts):
            out += piece
        out += b"}"
    else:
        out += b"?"
        out += type(value).__name__.encode("utf-8")


def _stable_digest(key) -> int:
    """``zlib.crc32`` over the stable encoding of a state key."""
    out = bytearray()
    _serialize_key(key, out)
    return zlib.crc32(bytes(out))


def _shard_worker(worker_id: int, root_indexes: List[int], mode: str,
                  connection):
    """Worker body: DFS over the owned subtree roots, one local seen-set.

    The report is the worker's last act; the connection's write end then
    closes with the process, so the parent sees EOF -- not a hang -- if
    the worker dies before (or while) reporting.  Reports carry the
    worker's seen-set *growth* over the prefix (its ``unique_states``
    contribution) and whether its reducer truncated the search.
    """
    roots, prefix_seen, cells, limit, predicate, policy = _SHARD_CONTEXT
    stats = ExplorationStats()
    reducer = make_reducer(*policy)
    if reducer is not None and reducer.sleep:
        # Stored sleep sets are immutable frozensets: a shallow dict
        # copy keeps the worker's updates off the (forked) prefix map.
        seen = dict(prefix_seen)
    else:
        seen = set(prefix_seen)
    prefix_unique = len(prefix_seen)

    def report(kind, payload, error):
        stats.unique_states = len(seen) - prefix_unique
        truncated = reducer is not None and reducer.truncated
        connection.send((kind, payload, stats, error, truncated))

    if mode == "explore":
        visitor = CollectOutcomes(cells)
        try:
            for index in root_indexes:
                _trace, state, sleep, context = roots[index]
                run_search(
                    state,
                    visitor,
                    limit=limit,
                    stats=stats,
                    strict_deadlocks=True,
                    seen=seen,
                    reducer=reducer,
                    sleep_seed=sleep,
                    context_seed=context,
                )
            report("ok", visitor.outcomes, None)
        except ExplorationLimit as exc:
            report("limit", visitor.outcomes, str(exc))
        except BaseException as exc:
            report("error", visitor.outcomes, repr(exc))
        return
    visitor = StopOnWitness(predicate, cells)
    try:
        for index in root_indexes:
            _trace, state, sleep, context = roots[index]
            found = run_search(
                state,
                visitor,
                limit=limit,
                stats=stats,
                strict_deadlocks=False,
                payload=(),
                extend=extend_index_path,
                seen=seen,
                reducer=reducer,
                sleep_seed=sleep,
                context_seed=context,
            )
            if found is not None:
                _state, path = found
                report("witness", (index, path), None)
                return
        report("ok", None, None)
    except ExplorationLimit as exc:
        report("limit", None, str(exc))
    except BaseException as exc:
        report("error", None, repr(exc))


@dataclass(frozen=True)
class ShardedParallel(SearchStrategy):
    """Fork-based intra-test parallel search over a sharded frontier.

    ``jobs=None`` resolves to the machine's usable CPU count at search
    time; ``shard_depth`` is how many transition levels the parent
    expands before handing subtrees to workers (deeper = more, smaller
    shards = better load balance, more prefix work).
    """

    jobs: Optional[int] = None
    shard_depth: int = 3
    reduction: str = "none"
    context_bound: Optional[int] = None
    #: With ``reduction="dpor"``: honoured only on the degradation path
    #: (see ``_shard_reduction``); the sharded pipeline itself runs
    #: sleep sets.
    symmetry: bool = False

    name = "sharded"

    # -- plumbing ---------------------------------------------------------

    def _shard_reduction(self) -> str:
        """The reduction the *sharded* pipeline actually runs.

        ``dpor`` normalises to ``sleep`` here: source-DPOR backtrack
        sets and the canonical seen map are mutable whole-search state
        that workers would have to share and merge mid-flight, which the
        fork-and-report pipeline (one-shot result pipes, no cross-worker
        channel) cannot express.  Sleep sets are the sound projection
        that *does* partition -- each root carries its own frozen sleep
        seed.  The ``_sequential`` degradation path is not affected: it
        runs full dpor (and symmetry) in one process.
        """
        return "sleep" if self.reduction == "dpor" else self.reduction

    def effective_jobs(self) -> int:
        """The worker count a search would actually use (public: the
        benchmark harness records it to keep entries comparable)."""
        if self.jobs is not None:
            return max(1, self.jobs)
        from ..parallel import default_job_count

        return default_job_count()

    @staticmethod
    def can_fork() -> bool:
        """Whether sharding is possible here (public: see effective_jobs)."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        # Daemonic pool workers (the corpus runner's) may not fork
        # children; degrade to the sequential engine there.
        return not multiprocessing.current_process().daemon

    def _sequential(self) -> SequentialDFS:
        """The degradation target, carrying the same reduction options."""
        return SequentialDFS(
            reduction=self.reduction,
            context_bound=self.context_bound,
            symmetry=self.symmetry,
        )

    def _expand(
        self,
        initial: SystemState,
        visitor,
        limit: int,
        stats: ExplorationStats,
        strict_deadlocks: bool,
        reducer,
    ):
        """Breadth-first prefix expansion to ``shard_depth`` levels.

        Returns ``(roots, seen, found)`` where ``roots`` are
        ``(prefix-trace, state, sleep set, context)`` leaves still to be
        searched, ``seen`` is the prefix dedup structure (a plain key
        set, or a key -> stored-sleep-set map under sleep-set
        reduction), and ``found`` is a non-``None`` visitor stop value
        (an early witness) if the prefix already decided the search.

        The per-state handling (final summarisation, deadlock
        accounting, strict-deadlock ModelError, budget check before
        counting, seen-keyed push, sleep/context pruning) mirrors
        ``core.run_search``/``core._run_reduced`` in breadth-first order
        and must stay semantically in lock-step with them; the
        cross-strategy equivalence tests pin the observable agreement.
        """
        sleep_on = reducer is not None and reducer.sleep
        root_sleep: frozenset = frozenset()
        roots: List[Root] = [((), initial, root_sleep, (None, 0))]
        if sleep_on:
            seen = {initial.key(): root_sleep}
        else:
            seen = {initial.key()}
        for _level in range(max(0, self.shard_depth)):
            next_roots: List[Root] = []
            for trace, state, sleep, context in roots:
                stats.max_frontier = max(
                    stats.max_frontier, len(roots) + len(next_roots)
                )
                # Budget check *before* counting, exactly as
                # ``Frontier.pop``: partial stats equal the budget.
                if stats.states_visited >= limit:
                    stats.unique_states = len(seen)
                    raise ExplorationLimit(
                        f"exceeded {limit} states; "
                        "increase params.max_states",
                        stats,
                    )
                stats.states_visited += 1
                if state.is_final():
                    stats.final_states += 1
                    found = visitor.on_final(state, trace)
                    if found is not None:
                        return [], seen, found
                    continue
                transitions = state.enumerate_transitions()
                if not transitions:
                    if state.threads_finished():
                        stats.deadlocks += 1
                        visitor.on_deadlock(state)
                        continue
                    if strict_deadlocks:
                        raise ModelError(
                            "deadlock: no transitions from a non-final "
                            "state\n" + state.render()
                        )
                    continue
                explored: List[Transition] = []
                for transition in transitions:
                    if sleep_on and transition in sleep:
                        continue
                    if reducer is not None and not reducer.within_bound(
                        context, transition
                    ):
                        continue
                    if sleep_on:
                        child_sleep = frozenset(
                            z
                            for source in (sleep, explored)
                            for z in source
                            if reducer.independent(state, z, transition)
                        )
                    else:
                        child_sleep = sleep
                    successor = state.apply(transition)
                    stats.transitions_taken += 1
                    key = successor.key()
                    if sleep_on:
                        # A root pushed after partial coverage will be
                        # explored fully by its worker -- a sound
                        # superset of the woken difference.
                        pruned, _wake = visit_sleep(seen, key, child_sleep)
                        explored.append(transition)
                        if pruned:
                            continue
                    else:
                        if key in seen:
                            continue
                        seen.add(key)
                    next_roots.append((
                        trace + (transition,),
                        successor,
                        child_sleep,
                        reducer.advance_context(context, transition)
                        if reducer is not None else context,
                    ))
            roots = next_roots
            if not roots:
                break
        return roots, seen, None

    def _partition(self, roots, jobs: int) -> List[List[int]]:
        """Key-digest-partitioned ownership: root -> worker by state key.

        Stable across interpreter runs (``PYTHONHASHSEED`` never enters):
        regression-tested by the hash-seed subprocess test.
        """
        bundles: List[List[int]] = [[] for _ in range(jobs)]
        for index, (_trace, state, _sleep, _context) in enumerate(roots):
            bundles[_stable_digest(state.key()) % jobs].append(index)
        return [bundle for bundle in bundles if bundle]

    @staticmethod
    def _collect(workers):
        """Yield one report per worker, detecting dead workers as EOF.

        Each worker has a dedicated pipe whose write end only the worker
        holds (the parent closes its copy right after the fork), so a
        worker that dies before -- or in the middle of -- sending its
        report delivers EOF instead of leaving the parent blocked on a
        half-written message.  ``connection.wait`` multiplexes the
        still-pending pipes.
        """
        from multiprocessing.connection import wait

        pending = {
            connection: process for process, connection in workers
        }
        while pending:
            for connection in wait(list(pending)):
                process = pending.pop(connection)
                try:
                    yield connection.recv()
                except EOFError:
                    process.join()
                    raise ModelError(
                        "sharded worker died without reporting "
                        f"(exit code {process.exitcode})"
                    ) from None

    @staticmethod
    def _terminate(workers):
        """Stop every still-running worker (the search is decided)."""
        for process, _connection in workers:
            if process.is_alive():
                process.terminate()

    @staticmethod
    def _reap(workers):
        """Close the read ends, then join every worker.

        Closing first matters on error paths: a sibling worker blocked
        in ``connection.send`` (payload larger than the pipe buffer)
        gets ``BrokenPipeError`` and exits instead of deadlocking the
        ``join``; on the normal path every pipe is already drained and
        the close is a no-op.
        """
        for _process, connection in workers:
            connection.close()
        for process, _connection in workers:
            process.join()

    def _dispatch(self, roots, seen, cells, limit, predicate, mode):
        """Fork one worker per non-empty partition; return the workers.

        Each entry is a ``(process, read-connection)`` pair; the parent
        drops its copy of the write end immediately so worker death is
        observable as EOF on the read end.
        """
        import multiprocessing

        global _SHARD_CONTEXT
        context = multiprocessing.get_context("fork")
        bundles = self._partition(roots, self.effective_jobs())
        _SHARD_CONTEXT = (
            roots, seen, cells, limit, predicate,
            (self._shard_reduction(), self.context_bound),
        )
        workers = []
        try:
            for worker_id, bundle in enumerate(bundles):
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_shard_worker,
                    args=(worker_id, bundle, mode, sender),
                    daemon=False,
                )
                process.start()
                sender.close()
                workers.append((process, receiver))
        finally:
            _SHARD_CONTEXT = None
        return workers

    # -- the strategy API -------------------------------------------------

    def explore(
        self,
        initial: SystemState,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
        collect_deadlocks: bool = False,
    ) -> ExplorationResult:
        jobs = self.effective_jobs()
        if jobs <= 1 or collect_deadlocks or not self.can_fork():
            return self._sequential().explore(
                initial, memory_cells, max_states, collect_deadlocks
            )
        limit = self.resolve_limit(initial, max_states)
        cells = tuple(memory_cells)
        stats = ExplorationStats()
        visitor = CollectOutcomes(cells)
        reducer = make_reducer(self._shard_reduction(), self.context_bound)
        seen = None
        started = time.perf_counter()
        try:
            roots, seen, _found = self._expand(
                initial, visitor, limit, stats,
                strict_deadlocks=True, reducer=reducer,
            )
            if len(roots) <= 1:
                # Graph too shallow to shard: finish inline on the shared
                # seen-set -- same traversal a one-partition worker would do.
                for _trace, state, sleep, context in roots:
                    run_search(
                        state,
                        visitor,
                        limit=limit,
                        stats=stats,
                        strict_deadlocks=True,
                        seen=seen,
                        reducer=reducer,
                        sleep_seed=sleep,
                        context_seed=context,
                    )
                return ExplorationResult(
                    visitor.outcomes, stats, [],
                    complete=reducer is None or not reducer.truncated,
                )
        finally:
            # Also on ExplorationLimit from the prefix or the inline
            # search: the exception carries this stats object, and its
            # partial work must not report zero seconds or coverage.
            stats.seconds = time.perf_counter() - started
            if seen is not None:
                stats.unique_states = len(seen)

        worker_limit = max(1, limit - stats.states_visited)
        workers = self._dispatch(
            roots, seen, cells, worker_limit, None, "explore"
        )
        outcomes = visitor.outcomes
        truncated = reducer is not None and reducer.truncated
        limit_error = None
        worker_error = None
        try:
            for kind, payload, wstats, error, wtruncated in self._collect(
                workers
            ):
                stats.merge(wstats)
                truncated = truncated or wtruncated
                if payload:
                    outcomes |= payload
                if kind == "limit" and limit_error is None:
                    limit_error = error
                elif kind == "error" and worker_error is None:
                    worker_error = error
                    # A worker error decides the whole explore; don't
                    # let the surviving shards burn CPU for a result
                    # that will be discarded (stop collecting too --
                    # terminated workers would only report as EOF).
                    self._terminate(workers)
                    break
        except BaseException:
            self._terminate(workers)
            raise
        finally:
            self._reap(workers)
        stats.seconds = time.perf_counter() - started
        if worker_error is not None:
            raise ModelError(f"sharded worker failed: {worker_error}")
        if limit_error is not None:
            raise ExplorationLimit(limit_error, stats)
        return ExplorationResult(outcomes, stats, [], complete=not truncated)

    def find_witness(
        self,
        initial: SystemState,
        predicate,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
    ) -> Optional[Witness]:
        jobs = self.effective_jobs()
        if jobs <= 1 or not self.can_fork():
            return self._sequential().find_witness(
                initial, predicate, memory_cells, max_states
            )
        limit = self.resolve_limit(initial, max_states)
        cells = tuple(memory_cells)
        stats = ExplorationStats()
        visitor = StopOnWitness(predicate, cells)
        reducer = make_reducer(self._shard_reduction(), self.context_bound)
        seen = None
        started = time.perf_counter()
        try:
            roots, seen, found = self._expand(
                initial, visitor, limit, stats,
                strict_deadlocks=False, reducer=reducer,
            )
            if found is not None:
                state, trace = found
                return Witness(list(trace), state, stats)
            if len(roots) <= 1:
                for trace, state, sleep, context in roots:
                    found = run_search(
                        state,
                        visitor,
                        limit=limit,
                        stats=stats,
                        strict_deadlocks=False,
                        payload=trace,
                        extend=extend_trace,
                        seen=seen,
                        reducer=reducer,
                        sleep_seed=sleep,
                        context_seed=context,
                    )
                    if found is not None:
                        final_state, full_trace = found
                        return Witness(list(full_trace), final_state, stats)
                if reducer is not None and reducer.truncated:
                    # A truncated witness search proves nothing:
                    # ``None`` would read as unsatisfiability, which
                    # the cut paths cannot support.
                    raise ExplorationLimit(
                        f"context bound {self.context_bound} truncated "
                        "the witness search before it completed",
                        stats,
                    )
                return None
        finally:
            # Also on ExplorationLimit: see explore() above.
            stats.seconds = time.perf_counter() - started
            if seen is not None:
                stats.unique_states = len(seen)

        worker_limit = max(1, limit - stats.states_visited)
        workers = self._dispatch(
            roots, seen, cells, worker_limit, predicate, "witness"
        )
        witness_payload = None
        truncated = reducer is not None and reducer.truncated
        limit_error = None
        worker_error = None
        try:
            for kind, payload, wstats, error, wtruncated in self._collect(
                workers
            ):
                stats.merge(wstats)
                truncated = truncated or wtruncated
                if kind == "witness":
                    witness_payload = payload
                    # A witness decides the search; stop the other shards.
                    self._terminate(workers)
                    break
                if kind == "limit" and limit_error is None:
                    limit_error = error
                elif kind == "error" and worker_error is None:
                    # Keep collecting: another shard may still produce a
                    # witness, which decides the search despite the error.
                    worker_error = error
        except BaseException:
            self._terminate(workers)
            raise
        finally:
            self._reap(workers)
        stats.seconds = time.perf_counter() - started
        if witness_payload is not None:
            root_index, index_path = witness_payload
            prefix_trace, root_state = roots[root_index][:2]
            subtree_trace, final_state = replay_index_path(
                root_state, index_path
            )
            return Witness(
                list(prefix_trace) + subtree_trace, final_state, stats
            )
        if worker_error is not None:
            raise ModelError(f"sharded worker failed: {worker_error}")
        if limit_error is not None:
            # No shard found a witness but one gave up: inconclusive.
            raise ExplorationLimit(limit_error, stats)
        if truncated:
            raise ExplorationLimit(
                f"context bound {self.context_bound} truncated the "
                "witness search before it completed",
                stats,
            )
        return None
