"""ELF64 structures shared by the reader and writer.

The paper's binary front-end parses statically linked Power64 ELF
executables (section 6).  POWER64 (big-endian ABI v1) uses ELFCLASS64,
ELFDATA2MSB, machine EM_PPC64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2MSB = 2  # big-endian
EV_CURRENT = 1
ET_EXEC = 2
EM_PPC64 = 21

PT_LOAD = 1

PF_X = 1
PF_W = 2
PF_R = 4

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_NOBITS = 8

STB_GLOBAL = 1
STT_OBJECT = 1
STT_FUNC = 2

EHDR_SIZE = 64
PHDR_SIZE = 56
SHDR_SIZE = 64
SYM_SIZE = 24


class ElfError(Exception):
    """Malformed or unsupported ELF image."""


@dataclass
class Segment:
    """One loadable program segment."""

    vaddr: int
    data: bytes
    memsz: int
    flags: int

    @property
    def executable(self) -> bool:
        return bool(self.flags & PF_X)


@dataclass
class Symbol:
    """One symbol-table entry."""

    name: str
    value: int
    size: int
    kind: int  # STT_*

    @property
    def is_function(self) -> bool:
        return self.kind == STT_FUNC


@dataclass
class ElfImage:
    """A parsed (or to-be-written) executable image."""

    entry: int
    segments: List[Segment]
    symbols: List[Symbol]

    def symbol(self, name: str) -> Symbol:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        raise KeyError(name)

    def symbol_at(self, address: int) -> Optional[str]:
        for sym in self.symbols:
            if sym.value == address:
                return sym.name
        return None
