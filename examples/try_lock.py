#!/usr/bin/env python3
"""Verifying a spinlock acquire against the architectural envelope.

The paper positions the oracle as a reference for "implementations of OS
synchronisation primitives and concurrent data structures" (section 1.4).
This example checks the POWER try-lock idiom -- lwarx / stwcx. followed by
an import barrier -- by exhaustively exploring two threads racing to
acquire the same lock:

  * mutual exclusion: both threads must never win;
  * the critical-section access of the winner is protected by isync;
  * dropping the barrier is visible in the explored state space.

Run:  python examples/try_lock.py
"""

from repro import parse_litmus, run_litmus

# Each thread tries to swing the lock word from 0 to its thread id + 1 with
# a single lwarx/stwcx. attempt, records CR0.EQ (success) in r10 via mfcr,
# and -- when it won -- writes to the protected variable after isync.
TRY_LOCK = """
POWER TryLock
{
0:r1=lock; 0:r2=data; 0:r7=1;
1:r1=lock; 1:r2=data; 1:r7=2;
lock=0; data=0;
}
 P0               | P1               ;
 lwarx r5,r0,r1   | lwarx r5,r0,r1   ;
 cmpwi r5,0       | cmpwi r5,0       ;
 bne out0         | bne out1         ;
 stwcx. r7,r0,r1  | stwcx. r7,r0,r1  ;
 bne out0         | bne out1         ;
 isync            | isync            ;
 stw r7,0(r2)     | stw r7,0(r2)     ;
 out0:            | out1:            ;
 mfcr r10         | mfcr r10         ;
exists (0:r5=0 /\\ 1:r5=0)
"""


def main() -> None:
    print(__doc__)
    test = parse_litmus(TRY_LOCK)
    result = run_litmus(test)
    stats = result.exploration.stats
    print(
        f"explored {stats.states_visited} states "
        f"({stats.final_states} final) in {stats.seconds:.1f}s\n"
    )

    eq_bit = 0x20000000  # CR0.EQ in the mfcr image: stwcx. succeeded
    both_won = neither_won = one_won = 0
    data_values = set()
    for registers, memory in result.outcomes:
        table = {(tid, reg): value for tid, reg, value in registers}
        p0_won = table.get((0, "GPR10"), 0) == eq_bit and table.get((0, "GPR5")) == 0
        p1_won = table.get((1, "GPR10"), 0) == eq_bit and table.get((1, "GPR5")) == 0
        for addr, _size, value in memory:
            data_values.add(value)
        if p0_won and p1_won:
            both_won += 1
        elif p0_won or p1_won:
            one_won += 1
        else:
            neither_won += 1

    print(f"outcomes where exactly one thread acquired the lock: {one_won}")
    print(f"outcomes where neither acquired (allowed: stwcx. may fail): "
          f"{neither_won}")
    print(f"outcomes where BOTH acquired (mutual-exclusion violations): "
          f"{both_won}")
    if both_won:
        raise SystemExit("BUG: the architecture allows both threads to win!")
    print("\nmutual exclusion holds across the entire architectural envelope.")
    # Both threads reading lock=0 simultaneously is fine -- only one
    # store-conditional can be coherence-adjacent to the initial write.
    print(f"model status for 'both read lock=0': {result.status} "
          "(reads race; the stwcx. pair arbitrates)")


if __name__ == "__main__":
    main()
