"""The POWER instruction corpus: encodings + Sail pseudocode.

``ALL_SPECS`` collects every instruction specification; ``repro.isa.model``
parses and type-checks the pseudocode and builds the decode table.
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec
from . import arithmetic, barriers, branch, crops, loadstore, logical, rotate_shift

ALL_SPECS: List[InstructionSpec] = (
    list(branch.SPECS)
    + list(loadstore.SPECS)
    + list(arithmetic.SPECS)
    + list(logical.SPECS)
    + list(rotate_shift.SPECS)
    + list(crops.SPECS)
    + list(barriers.SPECS)
)

__all__ = ["ALL_SPECS"]
