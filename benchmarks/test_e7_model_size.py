"""E7 -- model-size statistics (paper section 4.1).

The paper reports ~8500 lines of Sail (AST, decode, execution for 270
instructions), ~17000 lines of generated OCaml assembly plumbing, a 4300
line interpreter and a 2800 line concurrency model.  This bench inventories
the corresponding components of the reproduction.
"""

import os

from conftest import print_table

ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def _loc(*relative_paths):
    total = 0
    for rel in relative_paths:
        path = os.path.join(ROOT, rel)
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".py"):
                    total += _loc(os.path.join(rel, name))
            continue
        with open(path) as handle:
            total += sum(
                1
                for line in handle
                if line.strip() and not line.strip().startswith("#")
            )
    return total


def _sail_corpus_lines(model):
    return sum(
        len([l for l in spec.pseudocode.splitlines() if l.strip()])
        for spec in model.table.all_specs()
    )


def test_e7_model_size(model, benchmark):
    corpus_lines = benchmark(lambda: _sail_corpus_lines(model))

    rows = [
        ("Sail instruction corpus (pseudocode lines)", "~8500 (270 instrs)",
         f"{corpus_lines} ({len(model.table.all_specs())} instrs)"),
        ("Sail interpreter + analysis + typecheck", "~4300",
         _loc("sail")),
        ("concurrency model", "~2800", _loc("concurrency")),
        ("assembly/codec plumbing (OCaml in the paper)", "~17000",
         _loc("isa/spec.py", "isa/assembler.py", "isa/disasm.py",
              "isa/defs", "isa/model.py", "isa/registers.py")),
        ("litmus + ELF front-ends", "(unreported)",
         _loc("litmus", "elf")),
        ("golden emulator (hardware stand-in)", "(hardware)",
         _loc("golden")),
    ]
    print_table(
        "E7: model size (paper section 4.1 vs this reproduction)",
        ["component", "paper", "measured (non-blank LoC)"],
        rows,
    )

    # Sanity floor: the reproduction is a full system, not a stub.
    # (The Sail corpus is denser per line than the paper's extraction:
    # families share generated pseudocode, so ~680 lines cover 139
    # instructions versus the paper's 8500 for 270.)
    assert corpus_lines > 500
    assert _loc("sail") > 1500
    assert _loc("concurrency") > 1200
