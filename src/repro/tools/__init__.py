"""Command-line front-ends."""
