"""System-level tests of the thread model mechanisms.

Each test exercises one mechanism from section 2/5: speculation trees,
out-of-order satisfaction, store forwarding, restarts, dependency blocking,
store-conditional atomicity, and the eager-transition closure.
"""

import pytest

from repro.concurrency.exhaustive import explore, run_one
from repro.concurrency.params import ModelParams
from repro.concurrency.system import SystemState
from repro.isa.assembler import Assembler
from repro.isa.model import default_model
from repro.sail.values import Bits

X, Y, Z = 0x1000, 0x1010, 0x1020
CODE0, CODE1 = 0x50000, 0x60000


@pytest.fixture(scope="module")
def model():
    return default_model()


@pytest.fixture(scope="module")
def assembler(model):
    return Assembler(model)


def _b64(value):
    return Bits.from_int(value, 64)


def build(model, assembler, programs, registers, params=None,
          memory_addrs=(X, Y, Z)):
    program_memory = {}
    entries = {}
    for tid, program in enumerate(programs):
        base = CODE0 + tid * (CODE1 - CODE0)
        words, _ = assembler.assemble_program(program, base)
        entries[tid] = base
        for i, word in enumerate(words):
            program_memory[base + 4 * i] = word
    memory = [(addr, 4, Bits.zeros(32)) for addr in memory_addrs]
    return SystemState(
        model,
        program_memory,
        entries,
        registers,
        memory,
        params=params or ModelParams(),
    )


def outcomes_of(result, keys):
    collected = set()
    for registers, _memory in result.outcomes:
        table = {(tid, reg): value for tid, reg, value in registers}
        collected.add(tuple(table.get(key) for key in keys))
    return collected


class TestEagerClosure:
    def test_independent_instructions_execute_eagerly(self, model, assembler):
        system = build(
            model, assembler,
            [["li r1,5", "li r2,7", "add r3,r1,r2"]],
            {0: {}},
        )
        # With no memory accesses everything resolves in the initial closure.
        assert system.is_final()
        value = system.threads[0].final_register_value(model, "GPR3")
        assert value.to_int() == 12

    def test_register_dependency_chain(self, model, assembler):
        system = build(
            model, assembler,
            [["li r1,1", "addi r2,r1,1", "addi r3,r2,1", "addi r4,r3,1"]],
            {0: {}},
        )
        assert system.is_final()
        assert system.threads[0].final_register_value(model, "GPR4").to_int() == 4

    def test_speculative_fetch_of_both_branch_paths(self, model, assembler):
        system = build(
            model, assembler,
            [["lwz r5,0(r1)", "cmpwi r5,1", "beq L", "li r3,10", "L: li r4,20"]],
            {0: {"GPR1": _b64(X)}},
        )
        thread = system.threads[0]
        # The branch's read is pending, so both paths must be in the tree.
        branch = next(
            inst for inst in thread.instances.values()
            if inst.instruction.mnemonic == "bc"
        )
        assert len(branch.children) == 2

    def test_wrong_path_pruned_after_resolution(self, model, assembler):
        system = build(
            model, assembler,
            [["lwz r5,0(r1)", "cmpwi r5,1", "beq L", "li r3,10", "L: li r4,20"]],
            {0: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        # x is 0 so the branch falls through: r3=10 executes, then r4=20.
        assert outcomes_of(result, [(0, "GPR3"), (0, "GPR4")]) == {(10, 20)}


class TestForwarding:
    def test_load_forwards_from_uncommitted_store(self, model, assembler):
        system = build(
            model, assembler,
            [["li r7,42", "stw r7,0(r1)", "lwz r5,0(r1)"]],
            {0: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        assert outcomes_of(result, [(0, "GPR5")]) == {(42,)}

    def test_partial_overlap_waits_for_commit(self, model, assembler):
        # Byte store then word load over it: no forwarding possible, the
        # load must wait for the store to commit and read through storage.
        system = build(
            model, assembler,
            [["li r7,0xAB", "stb r7,1(r1)", "lwz r5,0(r1)"]],
            {0: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        assert outcomes_of(result, [(0, "GPR5")]) == {(0x00AB0000,)}


class TestRestarts:
    def test_corr_restart_produces_coherent_outcomes(self, model, assembler):
        system = build(
            model, assembler,
            [["li r7,1", "stw r7,0(r1)"],
             ["lwz r5,0(r1)", "lwz r6,0(r1)"]],
            {0: {"GPR1": _b64(X)}, 1: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        observed = outcomes_of(result, [(1, "GPR5"), (1, "GPR6")])
        assert (1, 0) not in observed  # CoRR forbidden
        assert (0, 1) in observed
        restarted = any(
            inst.restarts
            for state in [system]
            for inst in state.threads[1].instances.values()
        ) or True  # restarts occur along some path, not necessarily root

    def test_restart_counter_visible_along_restart_paths(self, model, assembler):
        # Drive one execution manually towards the restart: satisfy the
        # second load early, then the first; the explorer handles this
        # internally -- here we simply assert exploration terminates.
        system = build(
            model, assembler,
            [["li r7,1", "stw r7,0(r1)"],
             ["lwz r5,0(r1)", "lwz r6,0(r1)"]],
            {0: {"GPR1": _b64(X)}, 1: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        assert result.stats.states_visited > 0


class TestDependencies:
    def test_address_dependency_blocks_issue(self, model, assembler):
        system = build(
            model, assembler,
            [["lwz r5,0(r1)", "xor r6,r5,r5", "lwzx r4,r6,r2"]],
            {0: {"GPR1": _b64(X), "GPR2": _b64(Y)}},
        )
        thread = system.threads[0]
        dependent = next(
            inst for inst in thread.instances.values()
            if inst.instruction.mnemonic == "lwzx"
        )
        # Blocked on the xor's register write, hence no pending read yet.
        assert dependent.mos[0] in ("blocked_reg", "plain")

    def test_false_sharing_through_distinct_cr_fields(self, model, assembler):
        """cmp to cr1 then branch on cr0: no dependency between them."""
        system = build(
            model, assembler,
            [["lwz r5,0(r1)", "cmpw cr1,r5,r5", "beq L", "L: nop"]],
            {0: {"GPR1": _b64(X)}},
        )
        thread = system.threads[0]
        branch = next(
            inst for inst in thread.instances.values()
            if inst.instruction.mnemonic == "bc"
        )
        # The branch reads CR0 (bit 34); the compare writes CR1: the branch
        # resolves immediately from the initial CR without waiting.
        assert branch.nia is not None


class TestStoreConditional:
    def test_uncontended_success_and_failure_both_explored(
        self, model, assembler
    ):
        system = build(
            model, assembler,
            [["li r7,1", "lwarx r5,r0,r1", "stwcx. r7,r0,r1", "mfcr r6"]],
            {0: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        eq_bit = 0x20000000
        outcomes = outcomes_of(result, [(0, "GPR6")])
        # Success (CR0.EQ set) and architecturally-allowed failure.
        assert (eq_bit,) in outcomes
        assert (0,) in outcomes

    def test_stwcx_without_reservation_always_fails(self, model, assembler):
        system = build(
            model, assembler,
            [["li r7,1", "stwcx. r7,r0,r1", "mfcr r6"]],
            {0: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        assert outcomes_of(result, [(0, "GPR6")]) == {(0,)}


class TestEagerAblation:
    def test_non_eager_mode_matches_outcomes(self, model, assembler):
        programs = [["li r7,1", "stw r7,0(r1)"],
                    ["lwz r5,0(r1)"]]
        registers = {0: {"GPR1": _b64(X)}, 1: {"GPR1": _b64(X)}}
        eager = explore(build(model, assembler, programs, registers))
        lazy_params = ModelParams(eager=True)
        lazy = explore(
            build(model, assembler, programs, registers, params=lazy_params)
        )
        keys = [(1, "GPR5")]
        assert outcomes_of(eager, keys) == outcomes_of(lazy, keys) == {(0,), (1,)}


class TestRunOne:
    def test_single_execution_reaches_final(self, model, assembler):
        system = build(
            model, assembler,
            [["li r1,1", "stw r1,0(r2)"],
             ["lwz r5,0(r2)"]],
            {0: {"GPR2": _b64(X)}, 1: {"GPR2": _b64(X)}},
        )
        final = run_one(system)
        assert final.is_final()


class TestRendering:
    def test_render_mentions_storage_and_threads(self, model, assembler):
        system = build(
            model, assembler,
            [["li r7,1", "stw r7,0(r1)"]],
            {0: {"GPR1": _b64(X)}},
        )
        text = system.render()
        assert "Storage subsystem state" in text
        assert "Thread 0 state" in text
        assert "regs_in" in text


class TestWitnessExtraction:
    def test_find_witness_returns_trace(self, model, assembler):
        from repro.concurrency.exhaustive import find_witness

        system = build(
            model, assembler,
            [["li r7,1", "stw r7,0(r1)"],
             ["lwz r5,0(r1)"]],
            {0: {"GPR1": _b64(X)}, 1: {"GPR1": _b64(X)}},
        )

        def reader_saw_one(outcome):
            registers, _memory = outcome
            table = {(tid, reg): value for tid, reg, value in registers}
            return table.get((1, "GPR5")) == 1

        witness = find_witness(system, reader_saw_one)
        assert witness is not None
        trace, final = witness
        # The trace must commit and propagate the store before the read.
        labels = [str(t) for t in trace]
        assert any("commit store" in label for label in labels)
        assert any("propagate" in label for label in labels)
        assert final.is_final()

    def test_find_witness_unsatisfiable(self, model, assembler):
        from repro.concurrency.exhaustive import find_witness

        system = build(
            model, assembler,
            [["li r7,1", "stw r7,0(r1)"],
             ["lwz r5,0(r1)"]],
            {0: {"GPR1": _b64(X)}, 1: {"GPR1": _b64(X)}},
        )
        witness = find_witness(system, lambda outcome: False)
        assert witness is None
