"""Tests for the register registry, RegSlice algebra, and the type checker."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.model import default_model
from repro.isa.registers import cr_field_slice, power_registry
from repro.sail.outcomes import RegSlice
from repro.sail.parser import parse_execute_clause
from repro.sail.typecheck import SailTypeError, TypeChecker, check_corpus

REGISTRY = power_registry()
VIEW = REGISTRY.parser_view()


class TestRegistry:
    def test_gpr_is_a_file_of_32(self):
        info = REGISTRY.info("GPR")
        assert info.file_size == 32 and info.width == 64

    def test_cr_vendor_numbering(self):
        info = REGISTRY.info("CR")
        assert info.start == 32 and info.end == 63

    def test_instance_names(self):
        assert REGISTRY.instance_name("GPR", 5) == "GPR5"
        assert REGISTRY.instance_name("CR", None) == "CR"
        with pytest.raises(KeyError):
            REGISTRY.instance_name("GPR", 32)

    def test_shape_of_instance(self):
        assert REGISTRY.shape_of_instance("GPR17").width == 64
        assert REGISTRY.shape_of_instance("CR").start == 32
        with pytest.raises(KeyError):
            REGISTRY.shape_of_instance("GPR99")

    def test_slice_of_validates_range(self):
        reg_slice = REGISTRY.slice_of("CR", None, 40, 43)
        assert reg_slice == RegSlice("CR", 40, 43)
        with pytest.raises(KeyError):
            REGISTRY.slice_of("CR", None, 0, 3)  # below CR's start

    def test_xer_field_slices(self):
        assert REGISTRY.field_slice("XER", "SO") == RegSlice("XER", 32, 32)
        assert REGISTRY.field_slice("XER", "CA") == RegSlice("XER", 34, 34)

    def test_cr_field_helper(self):
        assert cr_field_slice(0) == RegSlice("CR", 32, 35)
        assert cr_field_slice(7) == RegSlice("CR", 60, 63)
        with pytest.raises(ValueError):
            cr_field_slice(8)


class TestRegSlice:
    def test_overlap_and_containment(self):
        a = RegSlice("CR", 32, 39)
        b = RegSlice("CR", 36, 43)
        c = RegSlice("CR", 40, 43)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
        assert b.contains(c)
        assert not c.contains(b)

    def test_different_registers_never_overlap(self):
        assert not RegSlice("GPR1", 0, 63).overlaps(RegSlice("GPR2", 0, 63))

    def test_intersection(self):
        a = RegSlice("CR", 32, 39)
        b = RegSlice("CR", 36, 43)
        assert a.intersection(b) == RegSlice("CR", 36, 39)
        assert a.intersection(RegSlice("CR", 40, 43)) is None

    @given(
        st.integers(0, 60), st.integers(0, 60),
        st.integers(1, 4), st.integers(1, 4),
    )
    def test_overlap_symmetry(self, lo_a, lo_b, len_a, len_b):
        a = RegSlice("R", lo_a, lo_a + len_a - 1)
        b = RegSlice("R", lo_b, lo_b + len_b - 1)
        assert a.overlaps(b) == b.overlaps(a)

    def test_width(self):
        assert RegSlice("CR", 32, 35).width == 4


class TestTypeChecker:
    def _check(self, body, fields=None):
        source = (
            f"function clause execute (T ({', '.join((fields or {}).keys())}))"
            f" = {{ {body} }}"
            if fields
            else f"function clause execute (T) = {{ {body} }}"
        )
        clause = parse_execute_clause(source, VIEW)
        TypeChecker(REGISTRY).check_clause(clause, fields or {})

    def test_whole_corpus_typechecks(self):
        model = default_model()
        assert check_corpus(model) == len(model.table.all_specs())

    def test_width_mismatch_in_declaration(self):
        with pytest.raises(SailTypeError):
            self._check("(bit[8]) x := 0x12345678")

    def test_width_mismatch_in_bitwise(self):
        with pytest.raises(SailTypeError):
            self._check("(bit[64]) x := EXTZ(32, 0b1) & EXTZ(64, 0b1)")

    def test_unbound_variable(self):
        with pytest.raises(SailTypeError):
            self._check("GPR[1] := nope")

    def test_register_range_out_of_bounds(self):
        with pytest.raises(SailTypeError):
            self._check("CR[20 .. 23] := 0b0000")  # CR starts at 32

    def test_unknown_builtin(self):
        with pytest.raises(SailTypeError):
            self._check("GPR[1] := FROBNICATE(1)")

    def test_builtin_arity(self):
        with pytest.raises(SailTypeError):
            self._check("GPR[1] := EXTS(1, 2, 3)")

    def test_slice_outside_width(self):
        with pytest.raises(SailTypeError):
            self._check("{ (bit[8]) x := 0x00; GPR[1] := EXTZ(64, x[4 .. 9]) }")

    def test_empty_slice(self):
        with pytest.raises(SailTypeError):
            self._check("{ (bit[8]) x := 0x00; GPR[1] := EXTZ(64, x[5 .. 2]) }")

    def test_memory_write_width(self):
        with pytest.raises(SailTypeError):
            self._check("MEMw(EXTZ(64, 0b0), 4) := 0xFF")  # 8 bits into 4 bytes

    def test_field_widths_flow_in(self):
        # RA is declared 5 bits wide; comparing against a 5-bit literal is
        # fine, slicing beyond is not.
        from repro.sail.values import Bits
        self._check("if RA == 0 then NOP()", fields={"RA": 5})
        with pytest.raises(SailTypeError):
            self._check("GPR[1] := EXTZ(64, RA[3 .. 7])", fields={"RA": 5})

    def test_valid_instruction_accepted(self):
        self._check(
            "(bit[64]) EA := GPR[RA] + EXTS(DS : 0b00); "
            "MEMw(EA, 8) := GPR[RS]; "
            "GPR[RA] := EA",
            fields={"RS": 5, "RA": 5, "DS": 14},
        )
