"""Loading ELF images into the model's memories (section 6).

Parsed binaries are checked for static linkage and basic ABI conformance,
then their loadable segments are split into code memory (executable
segments, as 32-bit opcodes) and data memory; symbol names, addresses and
initialisation values feed the data memory and the symbol pretty-printer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict

from ..isa.sequential import SequentialMachine
from .format import ElfError, ElfImage


@dataclass
class LoadedProgram:
    """An image split into the model's program/data memories."""

    entry: int
    program_memory: Dict[int, int] = field(default_factory=dict)  # addr -> opcode
    data_bytes: Dict[int, int] = field(default_factory=dict)  # addr -> byte
    symbols: Dict[str, int] = field(default_factory=dict)  # name -> addr
    symbol_sizes: Dict[str, int] = field(default_factory=dict)

    def symbol_of(self, address: int) -> str:
        for name, addr in self.symbols.items():
            if addr == address:
                return name
        return ""


def load_image(image: ElfImage) -> LoadedProgram:
    """Split an ELF image into code and data memories."""
    if not image.segments:
        raise ElfError("no loadable segments")
    loaded = LoadedProgram(entry=image.entry)
    for segment in image.segments:
        if segment.executable:
            if len(segment.data) % 4:
                raise ElfError("text segment size not a multiple of 4")
            if segment.vaddr % 4:
                raise ElfError("text segment is misaligned")
            for i in range(0, len(segment.data), 4):
                (word,) = struct.unpack(">I", segment.data[i : i + 4])
                loaded.program_memory[segment.vaddr + i] = word
        else:
            for i, byte in enumerate(segment.data):
                loaded.data_bytes[segment.vaddr + i] = byte
            for i in range(len(segment.data), segment.memsz):
                loaded.data_bytes[segment.vaddr + i] = 0  # .bss
    for symbol in image.symbols:
        loaded.symbols[symbol.name] = symbol.value
        loaded.symbol_sizes[symbol.name] = symbol.size
    return loaded


def load_into_machine(
    machine: SequentialMachine, loaded: LoadedProgram
) -> None:
    """Install a loaded program into a sequential machine."""
    for addr, word in loaded.program_memory.items():
        machine.memory.load_bytes(addr, struct.pack(">I", word))
    for addr, byte in loaded.data_bytes.items():
        machine.memory.load_bytes(addr, bytes([byte]))
    machine.cia = loaded.entry
