"""Sequential and concurrent test generation plus validation (section 7)."""

from .compare import ComparisonResult, SuiteReport, run_differential, run_suite
from .concurrent import OracleCheck, OracleReport, check_suite, expectation
from .sequential import SequentialTest, generate_suite, generate_tests

__all__ = [
    "ComparisonResult",
    "OracleCheck",
    "OracleReport",
    "SequentialTest",
    "SuiteReport",
    "check_suite",
    "expectation",
    "generate_suite",
    "generate_tests",
    "run_differential",
    "run_suite",
]
