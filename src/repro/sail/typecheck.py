"""Static type checking for Sail instruction descriptions (section 3).

The paper's Sail has dependent vector types ``vector<s,l,d,t>`` with an ad
hoc arithmetic constraint solver.  Our corpus needs the decidable core:
widths that are either statically known integers or statically *unknown*
(dependent on field values, e.g. ``MASK(to_num(MB)+32, ...)``), with
inference so instruction bodies need almost no annotations.

The checker validates, per execute clause:

  * declared widths match initialiser widths (where both are known);
  * operator operands are compatible (bitwise ops need equal known widths);
  * register reads/writes use registers from the registry, with constant
    bit-ranges inside the register's span;
  * builtins are applied at the right arity;
  * every variable is bound before use (instruction fields are parameters).

Anything width-dependent on runtime values degrades to ``UNKNOWN`` and is
checked dynamically by the interpreter -- mirroring the paper's split
between the type system and the interpreter's defensive checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from . import ast


class SailTypeError(Exception):
    """A static inconsistency in Sail pseudocode."""


@dataclass(frozen=True)
class TcType:
    """Inferred type: kind 'bits' (width known or None), 'int', or 'bool'."""

    kind: str
    width: Optional[int] = None

    def __str__(self) -> str:
        if self.kind == "bits":
            return f"bit[{self.width if self.width is not None else '?'}]"
        return self.kind


INT = TcType("int")
UNKNOWN_BITS = TcType("bits", None)


def bits(width: Optional[int]) -> TcType:
    return TcType("bits", width)


_BUILTIN_ARITIES = {
    "EXTS": (1, 2),
    "EXTZ": (1, 2),
    "MASK": (2, 2),
    "ROTL": (2, 2),
    "to_num": (1, 1),
    "UNDEFINED": (1, 1),
    "UNKNOWN": (1, 1),
    "length": (1, 1),
    "REPLICATE": (2, 2),
    "MULTIPLY_S": (3, 3),
    "MULTIPLY_U": (3, 3),
    "DIVS": (2, 2),
    "DIVU": (2, 2),
    "MODU": (2, 2),
    "COUNT_LEADING_ZEROS": (1, 1),
}

_COMPARISONS = {"==", "!=", "<", ">", "<=", ">=", "<u", ">u", "<=u", ">=u"}


class TypeChecker:
    """Checks one execute clause against the register registry."""

    def __init__(self, registry):
        self._registry = registry

    # ------------------------------------------------------------------

    def check_clause(
        self, clause: ast.FunctionClause, field_widths: Dict[str, int]
    ) -> None:
        env: Dict[str, TcType] = {
            name: bits(width) for name, width in field_widths.items()
        }
        self._check_stmt(clause.body, env)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, env: Dict[str, TcType]) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._check_stmt(inner, env)
            return
        if isinstance(stmt, ast.Decl):
            init = self._infer(stmt.init, env)
            declared = self._from_ast_type(stmt.typ)
            self._check_assignable(declared, init, f"declaration of {stmt.name}")
            env[stmt.name] = declared
            return
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt, env)
            return
        if isinstance(stmt, ast.If):
            self._check_condition(stmt.cond, env)
            self._check_stmt(stmt.then, dict(env))
            if stmt.orelse is not None:
                self._check_stmt(stmt.orelse, dict(env))
            return
        if isinstance(stmt, ast.Foreach):
            self._expect_int(stmt.start, env)
            self._expect_int(stmt.stop, env)
            body_env = dict(env)
            body_env[stmt.var] = INT
            self._check_stmt(stmt.body, body_env)
            return
        if isinstance(stmt, (ast.BarrierStmt, ast.Nop)):
            return
        raise SailTypeError(f"unknown statement {stmt!r}")

    def _check_assign(self, stmt: ast.Assign, env) -> None:
        value = self._infer(stmt.value, env)
        lhs = stmt.lhs
        if isinstance(lhs, ast.VarLHS):
            existing = env.get(lhs.name)
            if existing is not None:
                self._check_assignable(existing, value, f"assignment to {lhs.name}")
            else:
                env[lhs.name] = value
            return
        if isinstance(lhs, ast.VarSliceLHS):
            if lhs.name not in env:
                raise SailTypeError(f"slice assignment to unbound {lhs.name}")
            target = env[lhs.name]
            if target.kind != "bits":
                raise SailTypeError(f"slice assignment to non-vector {lhs.name}")
            lo = self._const_int(lhs.lo, env)
            hi = self._const_int(lhs.hi, env)
            if lo is not None and hi is not None:
                if lo > hi:
                    raise SailTypeError(f"empty slice [{lo}..{hi}] on {lhs.name}")
                if target.width is not None and hi >= target.width:
                    raise SailTypeError(
                        f"slice [{lo}..{hi}] outside {lhs.name}:{target}"
                    )
                self._check_assignable(
                    bits(hi - lo + 1), value, f"slice of {lhs.name}"
                )
            self._expect_int(lhs.lo, env)
            self._expect_int(lhs.hi, env)
            return
        if isinstance(lhs, ast.RegLHS):
            width = self._regspec_width(lhs.reg, env)
            self._check_assignable(bits(width), value, f"write to {lhs.reg.name}")
            return
        if isinstance(lhs, ast.MemLHS):
            self._expect_bits(lhs.addr, env, 64, "memory write address")
            size = self._const_int(lhs.size, env)
            if size is not None and value.kind == "bits" and value.width is not None:
                if value.width != 8 * size:
                    raise SailTypeError(
                        f"memory write of bit[{value.width}] with size {size}"
                    )
            return
        raise SailTypeError(f"unknown l-value {lhs!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _infer(self, expr: ast.Expr, env) -> TcType:
        if isinstance(expr, ast.Lit):
            return bits(expr.value.width)
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.Var):
            try:
                return env[expr.name]
            except KeyError:
                raise SailTypeError(f"unbound variable {expr.name}")
        if isinstance(expr, ast.RegRead):
            return bits(self._regspec_width(expr.reg, env))
        if isinstance(expr, ast.MemRead):
            self._expect_bits(expr.addr, env, 64, "memory read address")
            size = self._const_int(expr.size, env)
            return bits(8 * size if size is not None else None)
        if isinstance(expr, ast.StoreConditional):
            self._expect_bits(expr.addr, env, 64, "store-conditional address")
            self._infer(expr.value, env)
            return bits(1)
        if isinstance(expr, ast.Unop):
            operand = self._infer(expr.operand, env)
            if expr.op == "~" and operand.kind != "bits":
                raise SailTypeError("~ applied to a non-vector")
            return operand
        if isinstance(expr, ast.Binop):
            return self._infer_binop(expr, env)
        if isinstance(expr, ast.SliceExpr):
            return self._infer_slice(expr, env)
        if isinstance(expr, ast.IndexExpr):
            operand = self._infer(expr.operand, env)
            if operand.kind != "bits":
                raise SailTypeError("indexing a non-vector")
            self._expect_int(expr.index, env)
            return bits(1)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, env)
        if isinstance(expr, ast.IfExpr):
            self._check_condition(expr.cond, env)
            then = self._infer(expr.then, env)
            orelse = self._infer(expr.orelse, env)
            return self._join(then, orelse, "if-expression arms")
        raise SailTypeError(f"unknown expression {expr!r}")

    def _infer_binop(self, expr: ast.Binop, env) -> TcType:
        left = self._infer(expr.left, env)
        right = self._infer(expr.right, env)
        op = expr.op
        if op == ":":
            if left.kind != "bits" or right.kind != "bits":
                raise SailTypeError("concatenation of non-vectors")
            if left.width is None or right.width is None:
                return UNKNOWN_BITS
            return bits(left.width + right.width)
        if op in _COMPARISONS:
            if left.kind == "bits" and right.kind == "bits":
                self._join(left, right, f"comparison {op}")
            return bits(1)
        if op in ("&", "|", "^"):
            if left.kind != "bits" or right.kind != "bits":
                raise SailTypeError(f"bitwise {op} needs vectors")
            return self._join(left, right, f"bitwise {op}")
        if op in ("+", "-", "*"):
            if left.kind == "bits" and right.kind == "bits":
                return self._join(left, right, f"arithmetic {op}")
            return INT  # mixed arithmetic is integer arithmetic
        if op in ("/", "%"):
            return INT
        if op in ("<<", ">>"):
            self._expect_int(expr.right, env)
            return left
        raise SailTypeError(f"unknown operator {op}")

    def _infer_slice(self, expr: ast.SliceExpr, env) -> TcType:
        operand = self._infer(expr.operand, env)
        if operand.kind != "bits":
            raise SailTypeError("slicing a non-vector")
        lo = self._const_int(expr.lo, env)
        hi = self._const_int(expr.hi, env)
        self._expect_int(expr.lo, env)
        self._expect_int(expr.hi, env)
        if lo is not None and hi is not None:
            if lo > hi:
                raise SailTypeError(f"empty slice [{lo}..{hi}]")
            if operand.width is not None and hi >= operand.width:
                raise SailTypeError(
                    f"slice [{lo}..{hi}] outside bit[{operand.width}]"
                )
            return bits(hi - lo + 1)
        return UNKNOWN_BITS

    def _infer_call(self, expr: ast.Call, env) -> TcType:
        name = expr.func
        try:
            low, high = _BUILTIN_ARITIES[name]
        except KeyError:
            raise SailTypeError(f"unknown builtin {name}")
        if not low <= len(expr.args) <= high:
            raise SailTypeError(
                f"{name} applied to {len(expr.args)} arguments"
            )
        argument_types = [self._infer(a, env) for a in expr.args]
        if name in ("EXTS", "EXTZ"):
            if len(expr.args) == 1:
                return bits(64)
            width = self._const_int(expr.args[0], env)
            return bits(width)
        if name == "MASK":
            return bits(64)
        if name in ("ROTL", "REPLICATE"):
            if name == "ROTL":
                return argument_types[0]
            base = argument_types[0]
            count = self._const_int(expr.args[1], env)
            if base.width is not None and count is not None:
                return bits(base.width * count)
            return UNKNOWN_BITS
        if name == "to_num" or name == "length":
            return INT
        if name in ("UNDEFINED", "UNKNOWN"):
            return bits(self._const_int(expr.args[0], env))
        if name in ("MULTIPLY_S", "MULTIPLY_U"):
            return bits(self._const_int(expr.args[0], env))
        if name in ("DIVS", "DIVU", "MODU"):
            return self._join(
                argument_types[0], argument_types[1], name
            )
        if name == "COUNT_LEADING_ZEROS":
            return argument_types[0]
        raise SailTypeError(f"unhandled builtin {name}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _regspec_width(self, spec: ast.RegSpec, env) -> Optional[int]:
        """Width of a register reference; validates the register exists."""
        try:
            info = self._registry.info(spec.name)
        except KeyError:
            raise SailTypeError(f"unknown register {spec.name}")
        if spec.index is not None:
            self._expect_int(spec.index, env)
            if info.file_size is None:
                raise SailTypeError(f"{spec.name} is not a register file")
        if spec.lo is None:
            return info.width
        self._expect_int(spec.lo, env)
        if spec.hi is not None:
            self._expect_int(spec.hi, env)
        lo = self._const_int(spec.lo, env)
        hi = self._const_int(spec.hi, env) if spec.hi is not None else lo
        if lo is not None and hi is not None:
            if not (info.start <= lo <= hi <= info.end):
                raise SailTypeError(
                    f"bit range [{lo}..{hi}] outside "
                    f"{spec.name}[{info.start}..{info.end}]"
                )
            return hi - lo + 1
        return None

    def _from_ast_type(self, typ: ast.Type) -> TcType:
        if typ.kind == "bits":
            return bits(typ.width)
        if typ.kind == "int":
            return INT
        if typ.kind == "bool":
            return bits(1)
        raise SailTypeError(f"unknown declared type {typ}")

    def _join(self, a: TcType, b: TcType, context: str) -> TcType:
        if a.kind == "bits" and b.kind == "bits":
            if a.width is not None and b.width is not None and a.width != b.width:
                raise SailTypeError(
                    f"width mismatch in {context}: {a} vs {b}"
                )
            return a if a.width is not None else b
        if a.kind == b.kind:
            return a
        if {a.kind, b.kind} == {"bits", "int"}:
            # Integer literals coerce to vectors on assignment/compare.
            return a if a.kind == "bits" else b
        raise SailTypeError(f"type mismatch in {context}: {a} vs {b}")

    def _check_assignable(self, target: TcType, value: TcType, context: str):
        if target.kind == "bits" and value.kind == "int":
            return  # integer constants coerce to the declared width
        if target.kind == "int" and value.kind == "bits":
            raise SailTypeError(f"{context}: vector assigned to int")
        self._join(target, value, context)

    def _check_condition(self, expr: ast.Expr, env) -> None:
        cond = self._infer(expr, env)
        if cond.kind == "bits" and cond.width not in (1, None):
            raise SailTypeError(f"condition has type {cond}")

    def _expect_int(self, expr: ast.Expr, env) -> None:
        inferred = self._infer(expr, env)
        if inferred.kind not in ("int", "bits"):
            raise SailTypeError(f"expected an integer, found {inferred}")

    def _expect_bits(self, expr, env, width, context) -> None:
        inferred = self._infer(expr, env)
        if inferred.kind == "int":
            return  # coerced dynamically
        if inferred.kind != "bits":
            raise SailTypeError(f"{context}: expected bit[{width}]")
        if inferred.width is not None and inferred.width != width:
            raise SailTypeError(
                f"{context}: expected bit[{width}], found {inferred}"
            )

    def _const_int(self, expr: ast.Expr, env) -> Optional[int]:
        """Statically evaluate simple integer expressions where possible."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Binop) and expr.op in ("+", "-", "*"):
            left = self._const_int(expr.left, env)
            right = self._const_int(expr.right, env)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            return left * right
        return None


def check_corpus(model) -> int:
    """Type-check every instruction's pseudocode; returns the clause count.

    This is the "Sail typecheck" stage of the paper's Fig. 1 pipeline.
    """
    checker = TypeChecker(model.registry)
    count = 0
    for spec in model.table.all_specs():
        clause = model._clauses[spec.name]
        widths = {f.name: f.width for f in spec.operand_fields()}
        checker.check_clause(clause, widths)
        count += 1
    return count
