"""Fixed-point logical instructions (Power ISA 2.06B chapter 3.3.12).

Note the operand convention: logical X-forms write RA and read RS/RB, the
reverse of the arithmetic register order.
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec, spec
from .common import CR0_ALWAYS, CR0_RECORD, execute_clause

SPECS: List[InstructionSpec] = []


def _add(s: InstructionSpec) -> None:
    SPECS.append(s)


# ----------------------------------------------------------------------
# D-form immediates
# ----------------------------------------------------------------------

_D_LOGICAL = [
    # (name, mnemonic, opcd, op-expr, record, shifted)
    ("AndiRecord", "andi.", 28, "GPR[RS] & EXTZ(UI)", True, False),
    ("AndisRecord", "andis.", 29, "GPR[RS] & EXTZ(UI : 0x0000)", True, False),
    ("Ori", "ori", 24, "GPR[RS] | EXTZ(UI)", False, False),
    ("Oris", "oris", 25, "GPR[RS] | EXTZ(UI : 0x0000)", False, False),
    ("Xori", "xori", 26, "GPR[RS] ^ EXTZ(UI)", False, False),
    ("Xoris", "xoris", 27, "GPR[RS] ^ EXTZ(UI : 0x0000)", False, False),
]

for name, mnemonic, opcd, expr, record, _shifted in _D_LOGICAL:
    body = f"(bit[64]) r := {expr};\n  GPR[RA] := r"
    if record:
        body += ";\n  " + CR0_ALWAYS.format(r="r")
    _add(
        spec(
            name,
            mnemonic,
            "D",
            "fixed-point",
            f"{opcd} RS:5 RA:5 UI:16",
            "RA, RS, UI",
            execute_clause(name, "RS, RA, UI", body),
            category="logical",
        )
    )

# ----------------------------------------------------------------------
# X-form two-register logical operations (with Rc)
# ----------------------------------------------------------------------

_X_LOGICAL = [
    ("And", "and", 28, "GPR[RS] & GPR[RB]"),
    ("Or", "or", 444, "GPR[RS] | GPR[RB]"),
    ("Xor", "xor", 316, None),  # special-cased below
    ("Nand", "nand", 476, "~(GPR[RS] & GPR[RB])"),
    ("Nor", "nor", 124, "~(GPR[RS] | GPR[RB])"),
    ("Eqv", "eqv", 284, "~(GPR[RS] ^ GPR[RB])"),
    ("Andc", "andc", 60, "GPR[RS] & ~GPR[RB]"),
    ("Orc", "orc", 412, "GPR[RS] | ~GPR[RB]"),
]

#: xor of a register with itself is exactly zero even when the register
#: holds undef bits (two reads of one register see the same concrete value
#: on hardware).  The litmus idiom "xor rX,rY,rY" for artificial address
#: dependencies relies on this (e.g. MP+sync+addr-cr, where rY comes from
#: mfocrf with 60 undefined bits).  The register read is retained, so the
#: dependency is preserved; "0 & a" is bit-exactly zero in the lifted
#: domain.
_XOR_BODY = (
    "(bit[64]) r := 0;\n"
    "  if RS == RB then { (bit[64]) a := GPR[RS]; r := EXTZ(64, 0b0) & a }\n"
    "  else r := GPR[RS] ^ GPR[RB]"
)

for name, mnemonic, xo, expr in _X_LOGICAL:
    value = _XOR_BODY if expr is None else f"(bit[64]) r := {expr}"
    body = (
        f"{value};\n"
        "  GPR[RA] := r;\n"
        f"  {CR0_RECORD.format(r='r')}"
    )
    _add(
        spec(
            name,
            mnemonic,
            "X",
            "fixed-point",
            f"31 RS:5 RA:5 RB:5 {xo}:10 Rc:1",
            "RA, RS, RB",
            execute_clause(name, "RS, RA, RB", body),
            category="logical",
        )
    )

# ----------------------------------------------------------------------
# Sign extension and count-leading-zeros (RB field fixed to zero)
# ----------------------------------------------------------------------

_X_UNARY = [
    ("Extsb", "extsb", 954, "EXTS(64, (GPR[RS])[56..63])"),
    ("Extsh", "extsh", 922, "EXTS(64, (GPR[RS])[48..63])"),
    ("Extsw", "extsw", 986, "EXTS(64, (GPR[RS])[32..63])"),
    ("Cntlzw", "cntlzw", 26,
     "EXTZ(64, COUNT_LEADING_ZEROS((GPR[RS])[32..63]))"),
    ("Cntlzd", "cntlzd", 58, "COUNT_LEADING_ZEROS(GPR[RS])"),
]

for name, mnemonic, xo, expr in _X_UNARY:
    body = (
        f"(bit[64]) r := {expr};\n"
        "  GPR[RA] := r;\n"
        f"  {CR0_RECORD.format(r='r')}"
    )
    _add(
        spec(
            name,
            mnemonic,
            "X",
            "fixed-point",
            f"31 RS:5 RA:5 0:5 {xo}:10 Rc:1",
            "RA, RS",
            execute_clause(name, "RS, RA", body),
            category="logical",
        )
    )

# popcntb: population count of each byte, no record form (Rc bit reserved).
_add(
    spec(
        "Popcntb",
        "popcntb",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 0:5 122:10 0:1",
        "RA, RS",
        execute_clause(
            "Popcntb",
            "RS, RA",
            # Branch-free per-bit accumulation: summing the zero-extended
            # bits avoids 2^64-way forking in the exhaustive analysis.
            "(bit[64]) s := GPR[RS];\n"
            "  (bit[64]) r := 0;\n"
            "  foreach (i from 0 to 7) {\n"
            "    (bit[8]) n := 0x00;\n"
            "    foreach (j from 0 to 7)\n"
            "      n := n + EXTZ(8, s[8*i+j]);\n"
            "    r[8*i .. 8*i+7] := n\n"
            "  };\n"
            "  GPR[RA] := r",
        ),
        category="logical",
    )
)
