"""Tests for the diy-style cycle generator and the envelope oracle.

The fast tier covers generation (determinism, distinctness, family
coverage), lowering structure, the curated-family cross-check for the
two-thread shapes, and a sampled oracle-invariant run.  The heavier
three/four-thread cross-checks carry the ``slow`` marker like the
corresponding curated corpus entries; the full generated-suite oracle
run is opt-in via ``PPCMEM2_GEN_FULL=1``.
"""

import os

import pytest

from repro.isa.model import default_model
from repro.litmus import diy
from repro.litmus.library import by_name
from repro.litmus.parser import parse_litmus
from repro.litmus.runner import run_litmus
from repro.litmus.test import And, MemoryEquals, RegisterEquals
from repro.testgen.concurrent import check_suite, expectation, thread_runs

MODEL = default_model()

#: Curated entries whose exhaustive exploration is fast enough for tier 1
#: (same split as tests/test_litmus_corpus.py).
SLOW_CURATED = {
    "2+2W", "2+2W+syncs", "2+2W+lwsyncs",
    "WRC", "WRC+addrs", "WRC+sync+addr", "WRC+lwsync+addr",
    "RWC+syncs", "ISA2", "ISA2+sync+data+addr",
    "IRIW", "IRIW+addrs", "IRIW+syncs",
}

FAST_CROSSCHECK = sorted(set(diy.CURATED_CYCLES) - SLOW_CURATED)
SLOW_CROSSCHECK = sorted(set(diy.CURATED_CYCLES) & SLOW_CURATED)


# ----------------------------------------------------------------------
# Cycle well-formedness and classification
# ----------------------------------------------------------------------


class TestCycles:
    def test_known_families_classify(self):
        for name, names in diy.CURATED_CYCLES.items():
            family = diy.classify_family(diy.edges_from_names(names))
            assert family == by_name(name).family, (
                f"{name}: classified as {family}"
            )

    def test_direction_mismatch_rejected(self):
        error = diy.cycle_error(
            diy.edges_from_names(["PodWW", "Rfe", "PodWW", "Fre"])
        )
        assert error is not None and "direction" in error

    def test_reducible_com_pairs_rejected(self):
        # Rfe;Fre composes to Wse: never part of a critical cycle.
        error = diy.cycle_error(
            diy.edges_from_names(["PodWR", "Fre", "PodWW", "Rfe", "Fre"])
        )
        assert error is not None and "composes" in error

    def test_single_location_cycle_rejected(self):
        error = diy.cycle_error(
            diy.edges_from_names(["Rfe", "PodRR", "Fre", "Wse"])
        )
        assert error is not None

    def test_two_external_edges_required(self):
        error = diy.cycle_error(
            diy.edges_from_names(["PodWW", "PodWW", "PodWR", "Fre"])
        )
        assert error is not None and "external" in error

    def test_canonical_cycle_rotation_invariant(self):
        edges = diy.edges_from_names(["PodWW", "Rfe", "PodRR", "Fre"])
        rotated = edges[2:] + edges[:2]
        assert diy.canonical_cycle(edges) == diy.canonical_cycle(rotated)


# ----------------------------------------------------------------------
# Lowering
# ----------------------------------------------------------------------


class TestLowering:
    def test_mp_lowering_structure(self):
        generated = diy.generate_from_names(diy.CURATED_CYCLES["MP"])
        test = generated.test
        assert test.thread_count == 2
        assert sorted(test.init_memory) == ["x", "y"]
        # One Rfe atom (reads the written 1) and one Fre atom (reads 0).
        assert isinstance(test.condition, And)
        values = sorted(
            atom.value
            for atom in (test.condition.left, test.condition.right)
            if isinstance(atom, RegisterEquals)
        )
        assert values == [0, 1]

    def test_wse_pins_final_memory_value(self):
        generated = diy.generate_from_names(diy.CURATED_CYCLES["2+2W"])
        atoms = []
        stack = [generated.test.condition]
        while stack:
            node = stack.pop()
            if isinstance(node, And):
                stack.extend((node.left, node.right))
            else:
                atoms.append(node)
        assert all(isinstance(atom, MemoryEquals) for atom in atoms)
        assert sorted(atom.value for atom in atoms) == [2, 2]

    def test_dependency_lowering_emits_indexed_access(self):
        generated = diy.generate_from_names(diy.CURATED_CYCLES["MP+sync+addr"])
        flat = [line for program in generated.test.programs for line in program]
        assert any(line.startswith("xor ") for line in flat)
        assert any(line.startswith("lwzx ") for line in flat)

    def test_ctrlisync_lowering_emits_branch_and_isync(self):
        generated = diy.generate_from_names(
            diy.CURATED_CYCLES["MP+sync+ctrlisync"]
        )
        flat = [line for program in generated.test.programs for line in program]
        assert any(line.startswith("cmpw ") for line in flat)
        assert any(line.startswith("beq ") for line in flat)
        assert "isync" in flat

    def test_generated_source_parses_and_assembles(self):
        from repro.litmus.runner import build_system

        generated = diy.generate_from_names(diy.CURATED_CYCLES["S+sync+addr"])
        test = parse_litmus(generated.source)
        build_system(test, MODEL)  # raises if any instruction won't assemble


# ----------------------------------------------------------------------
# Seeded generation
# ----------------------------------------------------------------------


class TestGenerate:
    def test_deterministic_for_seed(self):
        first = diy.generate(7, 40)
        second = diy.generate(7, 40)
        assert [t.source for t in first] == [t.source for t in second]
        assert [t.name for t in first] == [t.name for t in second]

    def test_acceptance_seed0_size200(self):
        """The ISSUE acceptance run: 200 distinct parseable tests, >=8 families."""
        suite = diy.generate(0, 200)
        sources = {t.source for t in suite}
        assert len(sources) == 200
        families = {t.family for t in suite}
        assert len(families) >= 8
        shapes = {diy.canonical_cycle(t.edges) for t in suite}
        assert len(shapes) == 200  # structurally distinct, not just renamed
        for test in suite:
            parsed = parse_litmus(test.source)
            assert 2 <= parsed.thread_count <= 4

    def test_max_threads_respected(self):
        suite = diy.generate(3, 30, max_threads=2)
        assert all(t.thread_count == 2 for t in suite)

    def test_lifted_caps_reach_six_threads_and_four_runs(self):
        suite = diy.generate(3, 40, max_threads=6, max_run=4)
        assert max(t.thread_count for t in suite) >= 5
        longest = 0
        for test in suite:
            run = 0
            for edge in test.edges:
                run = 0 if edge.external else run + 1
                longest = max(longest, run)
        assert longest >= 3
        for test in suite:
            parse_litmus(test.source)  # >8 locations still lower and parse

    def test_no_wrap_around_reducible_candidates(self):
        """Regression: the sampler filters the closing communication pair.

        The consecutive-pair filter used to skip the wrap-around pair
        (last external edge -> cycle-initial external edge), so when the
        first thread had run length 0 the sampler built shapes like
        ``[Fre, ..., Rfe]`` (``Rfe;Fre`` composes to ``Wse``) only for
        ``cycle_error`` to throw the whole attempt away -- ~13% of all
        attempts on seed 0.  Now no candidate reaching validation may
        have a reducible wrap pair.
        """
        import random

        captured = []
        original = diy.cycle_error

        def capture(edges):
            captured.append(tuple(edges))
            return original(edges)

        rng = random.Random(0)
        diy.cycle_error = capture
        try:
            for _ in range(4000):
                diy._random_cycle(rng, max_threads=4, max_run=2)
        finally:
            diy.cycle_error = original
        assert captured  # some candidates reached validation
        for cycle in captured:
            last, first = cycle[-1], cycle[0]
            if last.external and first.external:
                assert (
                    (last.base, first.base) not in diy._REDUCIBLE_COM_PAIRS
                ), [e.name for e in cycle]

    def test_cycle_error_rejects_wrap_around_reducible_pair(self):
        # Rfe (last) wrapping into Fre (first) composes to Wse.
        error = diy.cycle_error(
            diy.edges_from_names(
                ["Fre", "PodWW", "Wse", "PodWW", "Rfe"]
            )
        )
        assert error is not None and "composes" in error

    def test_duplicates_do_not_exhaust_the_attempt_budget(self):
        # 60 distinct two-thread shapes need far more than 60 samples
        # (most are rotation duplicates); a tiny per-test budget must
        # still succeed because only dead ends are charged.
        suite = diy.generate(0, 60, max_threads=2, max_attempts_per_test=40)
        assert len(suite) == 60

    def test_exhaustion_reports_diagnostics(self):
        # The two-thread, run<=1 shape space is tiny; asking for far
        # more distinct cycles than exist must terminate (consecutive
        # unproductive samples) and name the seed and rejection counts.
        with pytest.raises(RuntimeError) as excinfo:
            diy.generate(
                0, 10_000, max_threads=2, max_run=1,
                max_attempts_per_test=300,
            )
        message = str(excinfo.value)
        assert "seed=0" in message
        assert "rotation_duplicates=" in message
        assert "dead_ends=" in message


# ----------------------------------------------------------------------
# Envelope expectations
# ----------------------------------------------------------------------


class TestExpectation:
    @pytest.mark.parametrize(
        "names,expected",
        [
            (["PodWW", "Rfe", "PodRR", "Fre"], "Allowed"),  # MP
            (["SyncdWW", "Rfe", "SyncdRR", "Fre"], "Forbidden"),  # MP+syncs
            (["LwSyncdWR", "Fre", "LwSyncdWR", "Fre"], "Allowed"),  # SB+lwsyncs
            (["SyncdWW", "Rfe", "DpCtrldR", "Fre"], "Allowed"),  # +ctrl
            (["SyncdWW", "Rfe", "DpCtrlIsyncdR", "Fre"], "Forbidden"),
            (["DpAddrdW", "Rfe", "DpAddrdW", "Rfe"], "Forbidden"),  # LB+addrs
            # LB+addrs+WW vs LB+datas+WW: the section 2.1.6 middle-write split
            (
                ["DpAddrdW", "PodWW", "Rfe", "DpAddrdW", "PodWW", "Rfe"],
                "Forbidden",
            ),
            (
                ["DpDatadW", "PodWW", "Rfe", "DpDatadW", "PodWW", "Rfe"],
                "Allowed",
            ),
            # sync reaches past an intervening access: still forbidden
            (
                ["DpAddrdR", "Fre", "SyncdWW", "PodWW", "Rfe"],
                "Forbidden",
            ),
            # all-sync IRIW: cumulativity makes it forbidden on 4 threads
            (
                ["Rfe", "SyncdRR", "Fre", "Rfe", "SyncdRR", "Fre"],
                "Forbidden",
            ),
            # dependency-only WRC: non-multi-copy-atomic -- the closure
            # abstains, the axiomatic solver decides Allowed
            (["Rfe", "DpAddrdW", "Rfe", "DpAddrdR", "Fre"], "Allowed"),
            # write-started lwsync into Wse: "weak" for the closure, the
            # solver decides Allowed (R+lwsync+sync class)
            (["LwSyncdWW", "Wse", "SyncdWR", "Fre"], "Allowed"),
        ],
    )
    def test_expected_statuses(self, names, expected):
        assert expectation(diy.edges_from_names(names)) == expected

    def test_closure_abstains_where_solver_decides(self):
        from repro.testgen.concurrent import closure_expectation

        for names in (
            ["Rfe", "DpAddrdW", "Rfe", "DpAddrdR", "Fre"],  # WRC+addrs
            ["LwSyncdWW", "Wse", "SyncdWR", "Fre"],  # R+lwsync+sync
        ):
            edges = diy.edges_from_names(names)
            assert closure_expectation(edges) is None
            assert expectation(edges) is not None

    def test_thread_runs_segmentation(self):
        edges = diy._build_rotation(
            diy.edges_from_names(diy.CURATED_CYCLES["WRC"])
        )
        runs = thread_runs(edges)
        assert len(runs) == 3  # one per thread
        assert sorted(
            len(directions) for directions, _internals, _out in runs
        ) == [1, 2, 2]


# ----------------------------------------------------------------------
# Cross-check against the curated corpus
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", FAST_CROSSCHECK)
def test_generated_shape_matches_curated_status(name):
    entry = by_name(name)
    generated = diy.generate_from_names(
        diy.CURATED_CYCLES[name], name=f"{name}-gen"
    )
    result = run_litmus(generated.test, MODEL)
    assert result.status == entry.architected, (
        f"{name}: generated shape gives {result.status}, "
        f"curated entry is {entry.architected}"
    )


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_CROSSCHECK)
def test_generated_shape_matches_curated_status_slow(name):
    if name == "IRIW+syncs":
        pytest.skip("exceeds the Python state budget (like the curated entry)")
    entry = by_name(name)
    generated = diy.generate_from_names(
        diy.CURATED_CYCLES[name], name=f"{name}-gen"
    )
    result = run_litmus(generated.test, MODEL)
    assert result.status == entry.architected


# ----------------------------------------------------------------------
# Oracle-invariant runs
# ----------------------------------------------------------------------


def _oracle_sample(size=10):
    """A deterministic, cheap sample: small two-thread asserted cycles."""
    suite = diy.generate(0, 200)
    sample = [
        test
        for test in suite
        if test.thread_count == 2
        and len(test.edges) <= 4
        and expectation(test.edges) is not None
    ]
    return sample[:size]


def test_oracle_invariants_sample():
    sample = _oracle_sample()
    expectations = {expectation(test.edges) for test in sample}
    assert expectations == {"Allowed", "Forbidden"}  # both directions hit
    report = check_suite(sample, jobs=1, max_states=150_000)
    assert report.checked == len(sample)
    assert report.sound, [
        (v.name, v.expected, v.status) for v in report.violations
    ]


@pytest.mark.slow
@pytest.mark.skipif(
    os.environ.get("PPCMEM2_GEN_FULL") != "1",
    reason="full generated-suite oracle run: set PPCMEM2_GEN_FULL=1",
)
def test_oracle_invariants_full_suite():
    suite = diy.generate(0, 200)
    report = check_suite(
        suite,
        jobs=int(os.environ.get("PPCMEM2_GEN_JOBS", "0")) or None,
        max_states=200_000,
    )
    assert report.sound, [
        (v.name, v.expected, v.status, v.edge_names)
        for v in report.violations
    ]
