"""An integrated concurrency and core-ISA architectural envelope model,
and test oracle, for IBM POWER multiprocessors.

Reproduction of Gray, Kerneis, Mulligan, Pulte, Sarkar, Sewell (MICRO 2015).

Quickstart::

    from repro import default_model, parse_litmus, run_litmus

    test = parse_litmus(open("MP+syncs.litmus").read())
    result = run_litmus(test)
    print(result.status)          # "Forbidden"
    for line, hit in result.outcome_table():
        print(("*" if hit else " "), line)

Packages:

* :mod:`repro.sail` -- the Sail instruction description language: lifted
  bitvectors, parser, type checker, and the outcome-producing interpreter.
* :mod:`repro.isa` -- the POWER ISA model: the instruction specifications
  (encodings + Sail pseudocode), decode/assemble/disassemble, the register
  model, and a sequential executor.
* :mod:`repro.concurrency` -- the operational concurrency model: storage
  subsystem (coherence, propagation, barriers, coherence points) and the
  per-thread trees of in-flight instructions; the exhaustive explorer.
* :mod:`repro.litmus` -- litmus-test parser, built-in corpus, and runner.
* :mod:`repro.elf` -- ELF64BE reader/writer/loader front-end.
* :mod:`repro.golden` -- an independent direct emulator standing in for
  POWER hardware in the differential validation of section 7.
* :mod:`repro.testgen` -- automatic sequential test generation and the
  model-vs-golden differential comparison harness.
"""

from .isa.model import DecodedInstruction, IsaModel, default_model
from .isa.assembler import Assembler
from .isa.sequential import SequentialMachine
from .litmus.parser import parse_litmus
from .litmus.runner import LitmusResult, build_system, run_litmus
from .litmus.library import corpus as litmus_corpus
from .concurrency.exhaustive import ExplorationResult, explore
from .concurrency.params import ModelParams
from .concurrency.system import SystemState
from .sail.values import Bits

__version__ = "1.0.0"

__all__ = [
    "Assembler",
    "Bits",
    "DecodedInstruction",
    "ExplorationResult",
    "IsaModel",
    "LitmusResult",
    "ModelParams",
    "SequentialMachine",
    "SystemState",
    "build_system",
    "default_model",
    "explore",
    "litmus_corpus",
    "parse_litmus",
    "run_litmus",
]
