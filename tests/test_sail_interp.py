"""Tests for the Sail interpreter and the outcome interface."""

import pytest

from repro.isa.registers import power_registry
from repro.sail.interp import (
    Interp,
    InterpState,
    LiftedBranch,
    SailRuntimeError,
    initial_state,
    resume,
)
from repro.sail.outcomes import (
    Barrier,
    Done,
    ReadMem,
    ReadReg,
    WriteMem,
    WriteReg,
)
from repro.sail.parser import parse_statement
from repro.sail.values import Bits, FALSE, TRUE

REGISTRY = power_registry()
VIEW = REGISTRY.parser_view()
INTERP = Interp(REGISTRY)


def _run(source, fields=None, reg_values=None, memory=None):
    """Drive a statement to completion, returning (env-ish trace)."""
    stmt = parse_statement(source, VIEW)
    state = initial_state(stmt, fields or {})
    reg_values = dict(reg_values or {})
    memory = dict(memory or {})
    reg_writes = {}
    mem_writes = {}
    barriers = []
    outcome = INTERP.run_to_outcome(state)
    for _ in range(1000):
        if isinstance(outcome, Done):
            return reg_writes, mem_writes, barriers
        if isinstance(outcome, ReadReg):
            key = str(outcome.slice)
            value = reg_values.get(key, Bits.zeros(outcome.slice.width))
            outcome = INTERP.run_to_outcome(resume(outcome.state, value))
        elif isinstance(outcome, WriteReg):
            reg_writes[str(outcome.slice)] = outcome.value
            outcome = INTERP.run_to_outcome(resume(outcome.state, None))
        elif isinstance(outcome, ReadMem):
            value = memory.get(
                outcome.addr.to_int(), Bits.zeros(8 * outcome.size)
            )
            outcome = INTERP.run_to_outcome(resume(outcome.state, value))
        elif isinstance(outcome, WriteMem):
            mem_writes[outcome.addr.to_int()] = outcome.value
            reply = TRUE if outcome.kind == "conditional" else None
            outcome = INTERP.run_to_outcome(resume(outcome.state, reply))
        elif isinstance(outcome, Barrier):
            barriers.append(outcome.kind)
            outcome = INTERP.run_to_outcome(resume(outcome.state, None))
        else:
            raise AssertionError(f"unexpected outcome {outcome!r}")
    raise AssertionError("statement did not terminate")


class TestBasicExecution:
    def test_declaration_coerces_to_width(self):
        regs, _, _ = _run(
            "{ (bit[64]) b := 0; GPR[3] := b }",
        )
        assert regs["GPR3[0..63]"] == Bits.zeros(64)

    def test_sequencing_and_arithmetic(self):
        regs, _, _ = _run(
            "{ (bit[8]) a := 0x02; (bit[8]) b := 0x03; GPR[1] := EXTZ(64, a + b) }"
        )
        assert regs["GPR1[0..63]"].to_int() == 5

    def test_if_statement_picks_branch(self):
        regs, _, _ = _run(
            "{ (bit[8]) r := 0; if 0b1 == 0b1 then r := 0x11 else r := 0x22; "
            "GPR[1] := EXTZ(64, r) }"
        )
        assert regs["GPR1[0..63]"].to_int() == 0x11

    def test_foreach_accumulates(self):
        regs, _, _ = _run(
            "{ (bit[64]) r := 0; "
            "foreach (i from 1 to 4) r := r + EXTZ(64, 0b1); "
            "GPR[1] := r }"
        )
        assert regs["GPR1[0..63]"].to_int() == 4

    def test_foreach_downto(self):
        regs, _, _ = _run(
            "{ (int) n := 0; (bit[64]) r := 0; "
            "foreach (i from 3 downto 1) r := r + EXTZ(64, 0b1); "
            "GPR[1] := r }"
        )
        assert regs["GPR1[0..63]"].to_int() == 3

    def test_empty_foreach_body_never_runs(self):
        regs, _, _ = _run(
            "{ (bit[64]) r := 0; "
            "foreach (i from 3 to 1) r := r + EXTZ(64, 0b1); "
            "GPR[1] := r }"
        )
        assert regs["GPR1[0..63]"].to_int() == 0

    def test_register_read_flows_in(self):
        regs, _, _ = _run(
            "GPR[2] := GPR[1]",
            reg_values={"GPR1[0..63]": Bits.from_int(77, 64)},
        )
        assert regs["GPR2[0..63]"].to_int() == 77

    def test_memory_write_value_and_address(self):
        _, mem, _ = _run(
            "{ (bit[64]) EA := 0; EA := EXTZ(64, 0x10); "
            "MEMw(EA, 2) := 0xBEEF }"
        )
        assert mem[0x10].to_int() == 0xBEEF

    def test_barrier_outcomes_in_order(self):
        _, _, barriers = _run(
            "{ BARRIER_SYNC(); BARRIER_LWSYNC(); BARRIER_ISYNC() }"
        )
        assert barriers == ["sync", "lwsync", "isync"]

    def test_variable_slice_assignment(self):
        regs, _, _ = _run(
            "{ (bit[8]) r := 0x00; r[0 .. 3] := 0xF; GPR[1] := EXTZ(64, r) }"
        )
        assert regs["GPR1[0..63]"].to_int() == 0xF0

    def test_unbound_variable_raises(self):
        with pytest.raises(SailRuntimeError):
            _run("GPR[1] := nope")

    def test_integer_index_arithmetic(self):
        regs, _, _ = _run(
            "CR[4*2+32 .. 4*2+35] := 0b1010",
        )
        assert regs["CR[40..43]"].to_int() == 0b1010


class TestOutcomeInterface:
    def test_read_reg_exposes_precise_slice(self):
        stmt = parse_statement("GPR[1] := EXTZ(64, XER.CA)", VIEW)
        outcome = INTERP.run_to_outcome(initial_state(stmt, {}))
        assert isinstance(outcome, ReadReg)
        assert str(outcome.slice) == "XER[34]"

    def test_store_conditional_success_flag(self):
        source = (
            "{ (bit[64]) EA := 0; "
            "(bit[1]) ok := STORE_CONDITIONAL(EA, 4, 0x00000001); "
            "GPR[1] := EXTZ(64, ok) }"
        )
        stmt = parse_statement(source, VIEW)
        outcome = INTERP.run_to_outcome(initial_state(stmt, {}))
        assert isinstance(outcome, WriteMem)
        assert outcome.kind == "conditional"
        # Failure path: CR write must see 0.
        after = INTERP.run_to_outcome(resume(outcome.state, FALSE))
        assert isinstance(after, WriteReg)
        assert after.value == Bits.zeros(64)

    def test_states_are_reusable_snapshots(self):
        """Resuming the same pending state twice gives independent futures."""
        stmt = parse_statement("GPR[1] := GPR[2]", VIEW)
        outcome = INTERP.run_to_outcome(initial_state(stmt, {}))
        assert isinstance(outcome, ReadReg)
        first = INTERP.run_to_outcome(
            resume(outcome.state, Bits.from_int(1, 64))
        )
        second = INTERP.run_to_outcome(
            resume(outcome.state, Bits.from_int(2, 64))
        )
        assert first.value.to_int() == 1
        assert second.value.to_int() == 2

    def test_state_hash_equality(self):
        stmt = parse_statement("GPR[1] := GPR[2]", VIEW)
        a = initial_state(stmt, {"F": Bits.from_int(3, 5)})
        b = initial_state(stmt, {"F": Bits.from_int(3, 5)})
        assert a == b and hash(a) == hash(b)

    def test_resume_requires_pending(self):
        stmt = parse_statement("NOP()", VIEW)
        with pytest.raises(SailRuntimeError):
            resume(initial_state(stmt, {}), None)


class TestLiftedConditions:
    def test_fork_on_unknown_condition(self):
        stmt = parse_statement(
            "{ (bit[1]) c := UNKNOWN(1); if c == 0b1 then GPR[1] := 0 "
            "else GPR[2] := 0 }",
            VIEW,
        )
        state = initial_state(stmt, {})
        with pytest.raises(LiftedBranch) as info:
            INTERP.run_to_outcome(state, fork_on_lifted=True)
        assert len(info.value.states) == 2

    def test_concrete_mode_rejects_lifted_condition(self):
        stmt = parse_statement(
            "{ (bit[1]) c := UNDEFINED(1); if c == 0b1 then NOP() }", VIEW
        )
        with pytest.raises(Exception):
            INTERP.run_to_outcome(initial_state(stmt, {}))


class TestFuelExhaustion:
    def test_runaway_loop_is_caught(self):
        # A loop of purely internal steps must exhaust the fuel budget
        # rather than spinning forever.
        stmt = parse_statement(
            "foreach (i from 0 to 1000000) x := i", VIEW
        )
        with pytest.raises(SailRuntimeError):
            INTERP.run_to_outcome(initial_state(stmt, {}), fuel=500)
