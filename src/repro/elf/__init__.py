"""ELF64 big-endian front-end (reader, writer, loader)."""

from .format import ElfError, ElfImage, Segment, Symbol
from .loader import LoadedProgram, load_image, load_into_machine
from .reader import read_elf
from .writer import make_executable, write_elf

__all__ = [
    "ElfError",
    "ElfImage",
    "LoadedProgram",
    "Segment",
    "Symbol",
    "load_image",
    "load_into_machine",
    "make_executable",
    "read_elf",
    "write_elf",
]
