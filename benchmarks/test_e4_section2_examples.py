"""E4 -- the paper's section-2 examples.

Section 2 motivates the ISA/concurrency interface with five tests that the
model must allow (each exercising one interface mechanism) plus the natural
forbidden controls.  This bench regenerates that table.
"""

from conftest import print_table

from repro.litmus.library import by_name
from repro.litmus.runner import run_litmus

#: (test, expected status, the section-2 mechanism it witnesses)
SECTION2 = [
    ("MP+sync+ctrl", "Allowed",
     "2.1.1 no single program point (speculative satisfaction)"),
    ("MP+sync+rs", "Allowed",
     "2.1.2 no per-thread register state (shadow registers)"),
    ("MP+sync+addr-cr", "Allowed",
     "2.1.4 bit-granular CR dependencies"),
    ("PPOCA", "Allowed",
     "2.1.5 forwarding from uncommitted speculative stores"),
    ("LB+datas+WW", "Allowed",
     "2.1.6 non-atomic intra-instruction register reads"),
    # Controls: flipping the mechanism must flip the verdict.
    ("MP+sync+addr", "Forbidden", "control: real address dependency"),
    ("MP+sync+addr-cr-same", "Forbidden", "control: same CR field"),
    ("PPOAA", "Forbidden", "control: address instead of control dep"),
    ("LB+addrs+WW", "Forbidden", "control: middle-write address dep"),
    ("MP+syncs", "Forbidden", "control: sync on both sides"),
]


def test_e4_section2_examples(model, benchmark):
    def run_all():
        return {
            name: run_litmus(by_name(name).parse(), model)
            for name, _expect, _why in SECTION2
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name, expect, why in SECTION2:
        result = results[name]
        rows.append(
            (
                name,
                expect,
                result.status,
                result.exploration.stats.states_visited,
                why,
            )
        )
        assert result.status == expect, f"{name}: {result.status} != {expect}"
    print_table(
        "E4: section-2 examples (paper: all five mechanisms Allowed, "
        "controls Forbidden)",
        ["test", "paper", "model", "states", "mechanism"],
        rows,
    )
