"""E8 -- ablation: the architectural granularity of register dependencies.

Section 2.1.4 argues CR must be treated as (at most) 4-bit fields and
preferably 32 single bits: MP+sync+addr-cr is observable on hardware, so a
model with a monolithic CR would be unsound.  This ablation runs the model
at each granularity and shows the verdict flipping -- exactly the
experiment the paper uses to justify the design choice.
"""

from conftest import print_table

from repro.concurrency.params import ModelParams
from repro.litmus.library import by_name
from repro.litmus.runner import run_litmus


def _status(model, name, granularity):
    params = ModelParams(cr_granularity=granularity)
    return run_litmus(by_name(name).parse(), model, params=params)


def test_e8_cr_granularity_ablation(model, benchmark):
    def run_ablation():
        table = {}
        for granularity in ("bit", "field", "whole"):
            table[granularity] = _status(
                model, "MP+sync+addr-cr", granularity
            )
        return table

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    rows = []
    for granularity, expect, sound in [
        ("bit", "Allowed", "sound (matches hardware)"),
        ("field", "Allowed", "sound (distinct 4-bit fields: cr3 vs cr4)"),
        ("whole", "Forbidden", "UNSOUND: forbids an observed outcome"),
    ]:
        result = results[granularity]
        rows.append(
            (
                granularity,
                result.status,
                expect,
                result.exploration.stats.states_visited,
                sound,
            )
        )
        assert result.status == expect, (
            f"granularity={granularity}: {result.status} != {expect}"
        )
    print_table(
        "E8: CR dependency granularity vs MP+sync+addr-cr "
        "(hardware-observed: Allowed)",
        ["granularity", "model", "expected", "states", "consequence"],
        rows,
    )


def test_e8_same_field_dependency_respected_at_all_granularities(model):
    """The control test must stay Forbidden regardless of granularity."""
    rows = []
    for granularity in ("bit", "field", "whole"):
        result = _status(model, "MP+sync+addr-cr-same", granularity)
        rows.append((granularity, result.status))
        assert result.status == "Forbidden"
    print_table(
        "E8 control: MP+sync+addr-cr-same (same CR field carries the dep)",
        ["granularity", "model"],
        rows,
    )
