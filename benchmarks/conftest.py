"""Shared fixtures for the evaluation benchmarks (DESIGN.md section 5)."""

import pytest

from repro.isa.model import default_model


@pytest.fixture(scope="session")
def model():
    return default_model()


def print_table(title, headers, rows):
    """Uniform table rendering for the paper-artefact reproductions."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
