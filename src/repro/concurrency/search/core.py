"""Shared machinery of the pluggable search subsystem.

The exhaustive oracle used to live as two near-identical ~50-line DFS
loops in ``concurrency/exhaustive.py`` (``explore`` and ``find_witness``).
This module is the single search driver both modes -- and every strategy
backend -- now run on:

  * ``Frontier`` -- DFS stack + seen-set bookkeeping with state-budget
    accounting (optionally over a caller-owned seen set, which the
    sharded backend uses to share one dedup set across subtree roots);
  * ``run_search`` -- the unified loop, parameterised by a *visitor*
    (``CollectOutcomes`` for explore, ``StopOnWitness`` for witness
    searches) and an optional payload extender (transition traces for
    witnesses, transition-index paths for worker-side searches);
  * the result vocabulary: ``ExplorationStats`` / ``ExplorationResult``
    (now with an explicit ``complete`` flag for budget-bounded partial
    results), ``Witness``, ``ExplorationLimit`` (now carrying the
    partial ``stats`` so budget exhaustion no longer zeroes the work
    accounting), and the outcome summarisers.

The sequential strategy drives this loop directly and is bit-identical
-- states visited, transitions taken, outcomes -- to the pre-refactor
engine; the other backends recompose the same pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..system import SystemState, Transition
from ..thread import ModelError

#: An outcome: ((tid, reg, value-int-or-None) ...) + ((addr,size,value) ...).
Outcome = Tuple[Tuple, Tuple]


class ExplorationLimit(Exception):
    """The state budget was exhausted before the search completed.

    ``stats`` carries the accounting of the work done up to the point of
    exhaustion (``None`` only for hand-raised instances), so callers can
    fold partial searches into corpus totals instead of zeroing them.
    """

    def __init__(self, message: str, stats: Optional["ExplorationStats"] = None):
        super().__init__(message)
        self.stats = stats


@dataclass
class ExplorationStats:
    states_visited: int = 0
    transitions_taken: int = 0
    final_states: int = 0
    deadlocks: int = 0
    max_frontier: int = 0
    seconds: float = 0.0
    #: Distinct state keys deduplicated against (seen-set sizes, merged).
    #: ``states_visited`` measures work *done* -- for sharded searches it
    #: folds in cross-partition duplicate exploration -- while this
    #: counts states *covered*; benchmarks record both so throughput
    #: entries stop conflating the two.
    unique_states: int = 0

    def merge(self, other: "ExplorationStats") -> None:
        """Fold another search's accounting into this one (corpus totals)."""
        self.states_visited += other.states_visited
        self.transitions_taken += other.transitions_taken
        self.final_states += other.final_states
        self.deadlocks += other.deadlocks
        self.max_frontier = max(self.max_frontier, other.max_frontier)
        self.seconds += other.seconds
        self.unique_states += other.unique_states


@dataclass
class ExplorationResult:
    outcomes: Set[Outcome]
    stats: ExplorationStats
    deadlock_states: List[SystemState] = field(default_factory=list)
    #: False when the search returned a *partial* outcome set because a
    #: state budget ran out (``BoundedIterative``); the outcome set is
    #: then a sound under-approximation, not the envelope.
    complete: bool = True

    def register_outcomes(self) -> Set[Tuple]:
        """Just the register parts of the outcomes."""
        return {registers for registers, _memory in self.outcomes}


@dataclass
class Witness:
    """A witnessing execution: the abstract-machine trace plus statistics.

    Unpackable, indexable and sized as the ``(trace, final_state)``
    two-tuple that ``find_witness`` originally returned.
    """

    trace: List[Transition]
    final_state: SystemState
    stats: ExplorationStats

    def __iter__(self) -> Iterator:
        yield self.trace
        yield self.final_state

    def __getitem__(self, index):
        return (self.trace, self.final_state)[index]

    def __len__(self) -> int:
        return 2


class Frontier:
    """DFS frontier + seen-set bookkeeping shared by the search modes.

    Each stack entry is a (state, payload) pair; explore-mode searches
    carry no payload, witness searches carry the transition path.
    Popping counts a visited state against the budget; pushing applies a
    transition, counts it, and deduplicates the successor against the
    seen keys.  ``seen`` lets a caller share one dedup set across
    several searches (the sharded backend's per-worker partition).
    """

    def __init__(self, initial: SystemState, payload, limit: int,
                 stats: ExplorationStats, seen: Optional[Set] = None):
        self.limit = limit
        self.stats = stats
        self.stack: List[Tuple[SystemState, object]] = [(initial, payload)]
        if seen is None:
            self.seen: Set = {initial.key()}
        else:
            seen.add(initial.key())
            self.seen = seen

    def __bool__(self) -> bool:
        return bool(self.stack)

    def pop(self) -> Tuple[SystemState, object]:
        stats = self.stats
        stats.max_frontier = max(stats.max_frontier, len(self.stack))
        # Budget check *before* counting: an ``ExplorationLimit``'s
        # partial stats must equal the budget exactly, not overstate the
        # work by the one state that was never processed.
        if stats.states_visited >= self.limit:
            raise ExplorationLimit(
                f"exceeded {self.limit} states; increase params.max_states",
                stats,
            )
        state, payload = self.stack.pop()
        stats.states_visited += 1
        return state, payload

    def push(self, state: SystemState, transition: Transition,
             payload) -> None:
        successor = state.apply(transition)
        self.stats.transitions_taken += 1
        key = successor.key()
        if key not in self.seen:
            self.seen.add(key)
            self.stack.append((successor, payload))


def registers_of_interest(
    system: SystemState,
    static_cache: Optional[Dict[int, FrozenSet[str]]] = None,
) -> List[Tuple[int, str]]:
    """(tid, register) pairs whose final values describe an outcome.

    The static output registers of an instance depend only on its fetch
    address (program memory is fixed for the whole exploration), so they are
    computed once per address and cached across the search's final states;
    each state only extends the set with its dynamically discovered writes.
    """
    if static_cache is None:
        static_cache = {}
    names: List[Tuple[int, str]] = []
    for tid, thread in sorted(system.threads.items()):
        seen = set(thread.initial_registers)
        for instance in thread.instances.values():
            for record in instance.reg_writes:
                seen.add(record.slice.reg)
            static = static_cache.get(instance.address)
            if static is None:
                static = frozenset(
                    out.reg for out in instance.static_fp.regs_out
                )
                static_cache[instance.address] = static
            seen.update(static)
        for name in sorted(seen):
            names.append((tid, name))
    return names


def outcome_of(
    system: SystemState,
    memory_cells: Iterable[Tuple[int, int]],
    static_cache: Optional[Dict[int, FrozenSet[str]]] = None,
) -> List[Outcome]:
    registers = []
    by_tid: Dict[int, List[str]] = {}
    for tid, name in registers_of_interest(system, static_cache):
        by_tid.setdefault(tid, []).append(name)
    for tid, names in by_tid.items():
        values = system.threads[tid].final_register_values(
            system.model, names
        )
        for name in names:
            value = values[name]
            registers.append(
                (tid, name, value.to_int() if value.is_known else None)
            )
    register_part = tuple(registers)
    cells = list(memory_cells)
    if not cells:
        return [(register_part, ())]
    outcomes = []
    for memory in system.final_memory(cells):
        memory_part = tuple(
            (addr, size, memory[(addr, size)]) for addr, size in cells
        )
        outcomes.append((register_part, memory_part))
    return outcomes


class CollectOutcomes:
    """Explore-mode visitor: accumulate every final state's outcomes."""

    def __init__(self, cells: Tuple[Tuple[int, int], ...],
                 collect_deadlocks: bool = False,
                 static_cache: Optional[Dict] = None):
        self.cells = cells
        self.collect_deadlocks = collect_deadlocks
        self.static_cache = static_cache if static_cache is not None else {}
        self.outcomes: Set[Outcome] = set()
        self.deadlock_states: List[SystemState] = []

    def on_final(self, state: SystemState, payload) -> None:
        self.outcomes.update(outcome_of(state, self.cells, self.static_cache))
        return None

    def on_deadlock(self, state: SystemState) -> None:
        if self.collect_deadlocks:
            self.deadlock_states.append(state)


class StopOnWitness:
    """Witness-mode visitor: stop at the first satisfying final state."""

    def __init__(self, predicate, cells: Tuple[Tuple[int, int], ...],
                 static_cache: Optional[Dict] = None):
        self.predicate = predicate
        self.cells = cells
        self.static_cache = static_cache if static_cache is not None else {}

    def on_final(self, state: SystemState, payload):
        for outcome in outcome_of(state, self.cells, self.static_cache):
            if self.predicate(outcome):
                return (state, payload)
        return None

    def on_deadlock(self, state: SystemState) -> None:
        pass


#: Payload extender building a transition trace (sequential witnesses).
def extend_trace(path, transition, _index):
    return path + (transition,)


#: Payload extender building a transition-*index* path -- picklable, and
#: deterministically replayable because transition enumeration is a pure
#: function of the state (the sharded backend ships these across workers).
def extend_index_path(path, _transition, index):
    return path + (index,)


def run_search(
    initial: SystemState,
    visitor,
    *,
    limit: int,
    stats: ExplorationStats,
    strict_deadlocks: bool,
    payload=None,
    extend: Optional[Callable] = None,
    seen: Optional[Set] = None,
    reducer=None,
    canon=None,
    sleep_seed: FrozenSet[Transition] = frozenset(),
    context_seed: Tuple[Optional[int], int] = (None, 0),
):
    """The unified DFS loop behind every search mode.

    Pops states, summarises finals through the visitor (a non-``None``
    visitor result stops the search and is returned), counts deadlocked
    coherence-constrained paths, and pushes successors.  With
    ``strict_deadlocks`` a stuck non-final state raises ``ModelError``
    (explore mode); without it the path is abandoned (witness mode, which
    historically skipped such states).  ``extend`` builds child payloads;
    ``None`` propagates no payload (explore mode).

    A non-``None`` ``reducer`` (``reduction.Reducer``) switches to the
    pruning loop: sleep-set partial-order reduction and/or context
    bounding.  ``sleep_seed``/``context_seed`` seed the root's pruning
    state (the sharded backend resumes worker subtrees mid-path); with
    sleep sets on, ``seen`` must be (and defaults to) a dict mapping
    state key to its stored sleep set instead of a plain set.

    A reducer with ``dpor`` set additionally requires ``canon`` (a
    ``symmetry.CanonicalKeys``) and dispatches to the source-DPOR loop
    in ``dpor.py``; its ``seen`` maps *canonical* keys to per-state
    coverage entries and must be private to one search.
    """
    if reducer is not None and reducer.dpor:
        from .dpor import run_dpor

        return run_dpor(
            initial, visitor, limit=limit, stats=stats,
            strict_deadlocks=strict_deadlocks, reducer=reducer,
            canon=canon, payload=payload, extend=extend, seen=seen,
            sleep_seed=sleep_seed, context_seed=context_seed,
        )
    if reducer is not None:
        return _run_reduced(
            initial, visitor, limit=limit, stats=stats,
            strict_deadlocks=strict_deadlocks, payload=payload,
            extend=extend, seen=seen, reducer=reducer,
            sleep_seed=sleep_seed, context_seed=context_seed,
        )
    frontier = Frontier(initial, payload, limit, stats, seen=seen)
    while frontier:
        state, path = frontier.pop()
        if state.is_final():
            # Residual propagate/ack transitions only add coherence edges;
            # the final-memory enumeration over linear extensions of the
            # current partial order already covers every continuation.
            stats.final_states += 1
            found = visitor.on_final(state, path)
            if found is not None:
                return found
            continue
        transitions = state.enumerate_transitions()
        if not transitions:
            if state.threads_finished():
                # Threads complete but some write cannot reach its coherence
                # point (a barrier-induced cycle): a dead path representing
                # coherence choices no hardware execution can realise.
                stats.deadlocks += 1
                visitor.on_deadlock(state)
                continue
            if strict_deadlocks:
                raise ModelError(
                    "deadlock: no transitions from a non-final state\n"
                    + state.render()
                )
            continue
        if extend is None:
            for transition in transitions:
                frontier.push(state, transition, None)
        else:
            for index, transition in enumerate(transitions):
                frontier.push(state, transition, extend(path, transition, index))
    return None


def visit_sleep(seen, key, sleep: FrozenSet[Transition]):
    """Record an arrival at ``key`` with ``sleep``; say what to explore.

    The seen map stores one sleep set per state -- the *intersection*
    of every arrival's sleep set, which by induction is exactly the set
    of transitions NOT yet explored from the state (Godefroid's
    state-caching sleep-set algorithm).  Returns

    * ``(False, None)`` -- first arrival: explore everything awake;
    * ``(True, None)`` -- the stored set is a subset of this arrival's,
      so every continuation this arrival would explore already was:
      prune;
    * ``(False, wake)`` -- partial coverage: only the transitions in
      ``wake`` (previously asleep on every visit, awake now) need
      exploring, and the stored set shrinks to the intersection.
    """
    stored = seen.get(key)
    if stored is None:
        seen[key] = sleep
        return False, None
    if stored <= sleep:
        return True, None
    seen[key] = stored & sleep
    return False, stored - sleep


def _run_reduced(
    initial: SystemState,
    visitor,
    *,
    limit: int,
    stats: ExplorationStats,
    strict_deadlocks: bool,
    payload,
    extend: Optional[Callable],
    seen,
    reducer,
    sleep_seed: FrozenSet[Transition],
    context_seed: Tuple[Optional[int], int],
):
    """``run_search`` with sleep-set pruning and/or a context bound.

    Kept as a separate loop so the unreduced driver stays byte-for-byte
    on its historical hot path (and bit-identical in its counters); the
    cross-strategy equivalence tests pin the observable agreement of the
    two loops.  See ``reduction`` for the pruning theory; the state/
    final/deadlock handling mirrors the plain loop exactly.

    The root is always explored fully (never pruned against ``seen``):
    callers resume worker subtrees from roots whose keys the shared
    prefix seen-structure already records.  Exploring a superset of the
    stored difference is always sound -- the stored set only shrinks.
    """
    sleep_on = reducer.sleep
    if seen is None:
        seen = {} if sleep_on else set()
    if sleep_on:
        visit_sleep(seen, initial.key(), sleep_seed)
    else:
        seen.add(initial.key())
    stack = [(initial, payload, sleep_seed, context_seed, None)]
    while stack:
        stats.max_frontier = max(stats.max_frontier, len(stack))
        if stats.states_visited >= limit:
            raise ExplorationLimit(
                f"exceeded {limit} states; increase params.max_states",
                stats,
            )
        state, path, sleep, context, wake = stack.pop()
        stats.states_visited += 1
        if state.is_final():
            stats.final_states += 1
            found = visitor.on_final(state, path)
            if found is not None:
                return found
            continue
        transitions = state.enumerate_transitions()
        if not transitions:
            if state.threads_finished():
                stats.deadlocks += 1
                visitor.on_deadlock(state)
                continue
            if strict_deadlocks:
                raise ModelError(
                    "deadlock: no transitions from a non-final state\n"
                    + state.render()
                )
            continue
        explored: List[Transition] = []
        for index, transition in enumerate(transitions):
            if sleep_on:
                if wake is not None and transition not in wake:
                    # A revisit: everything outside the woken difference
                    # was already explored from this state.
                    continue
                if transition in sleep:
                    # Covered by an equivalent interleaving through the
                    # sibling that put this transition to sleep.
                    continue
            if not reducer.within_bound(context, transition):
                continue
            if sleep_on:
                child_sleep = frozenset(
                    z
                    for source in (sleep, explored)
                    for z in source
                    if reducer.independent(state, z, transition)
                )
            else:
                child_sleep = sleep
            successor = state.apply(transition)
            stats.transitions_taken += 1
            key = successor.key()
            if sleep_on:
                pruned, child_wake = visit_sleep(seen, key, child_sleep)
                explored.append(transition)
                if pruned:
                    continue
            else:
                if key in seen:
                    continue
                seen.add(key)
                child_wake = None
            stack.append((
                successor,
                extend(path, transition, index) if extend else None,
                child_sleep,
                reducer.advance_context(context, transition),
                child_wake,
            ))
    return None


def replay_index_path(
    initial: SystemState, indexes: Iterable[int]
) -> Tuple[List[Transition], SystemState]:
    """Rebuild the transition trace behind a transition-index path.

    Enumeration order is deterministic, so replaying the indexes from the
    same initial state reproduces the worker's exact trace.
    """
    trace: List[Transition] = []
    state = initial
    for index in indexes:
        transitions = state.enumerate_transitions()
        transition = transitions[index]
        trace.append(transition)
        state = state.apply(transition)
    return trace, state
