"""Abstract syntax for the Sail instruction description language.

This is the deep embedding described in section 2.2 of the paper: a typed
instruction description is represented as a term of this AST type, and the
interpreter (``repro.sail.interp``) gives it semantics with the outcome-based
interface to the concurrency model.

Nodes are immutable dataclasses.  The ISA model parses every instruction's
pseudocode exactly once (``repro.isa.model``), so node *identity* is stable
and is used when hashing interpreter states for memoisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from .values import Bits


class SailSyntaxError(Exception):
    """Raised by the lexer/parser on malformed Sail source."""


# ----------------------------------------------------------------------
# Types (section 3: vector<start, length, direction, bit> etc., restricted
# to the forms the POWER corpus needs)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """A Sail type: ``bit[n]`` (kind='bits'), ``int``, or ``bool``."""

    kind: str
    width: Optional[int] = None

    def __str__(self) -> str:
        if self.kind == "bits":
            return f"bit[{self.width}]"
        return self.kind


BIT = Type("bits", 1)
INT = Type("int")
BOOL = Type("bool")


def bits_type(width: int) -> Type:
    return Type("bits", width)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True, eq=False)
class Lit(Expr):
    """A bitvector literal (``0b0101``, ``0x1F`` with explicit width)."""

    value: Bits


@dataclass(frozen=True, eq=False)
class IntLit(Expr):
    """An integer literal (decimal, used for indices/counts)."""

    value: int


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A local variable or instruction-field reference."""

    name: str


@dataclass(frozen=True)
class RegSpec:
    """A (possibly computed) register slice reference.

    ``name``  -- architected register file or register name (GPR, CR, XER...)
    ``index`` -- optional index expression for register files (``GPR[RA]``)
    ``lo``/``hi`` -- optional bit-range expressions in the register's own
                     POWER numbering (``CR[4*BF+32 .. 4*BF+35]``)
    """

    name: str
    index: Optional[Expr] = None
    lo: Optional[Expr] = None
    hi: Optional[Expr] = None


@dataclass(frozen=True, eq=False)
class RegRead(Expr):
    reg: RegSpec


@dataclass(frozen=True, eq=False)
class MemRead(Expr):
    """``MEMr(addr, size)`` or ``MEMr_reserve(addr, size)``."""

    kind: str  # "plain" | "reserve"
    addr: Expr
    size: Expr


@dataclass(frozen=True, eq=False)
class StoreConditional(Expr):
    """``STORE_CONDITIONAL(addr, size, value)`` -- evaluates to a success bit."""

    addr: Expr
    size: Expr
    value: Expr


@dataclass(frozen=True, eq=False)
class Unop(Expr):
    op: str  # "~" | "-"
    operand: Expr


@dataclass(frozen=True, eq=False)
class Binop(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, eq=False)
class SliceExpr(Expr):
    """``e[lo .. hi]`` in POWER bit numbering relative to e's MSB=0."""

    operand: Expr
    lo: Expr
    hi: Expr


@dataclass(frozen=True, eq=False)
class IndexExpr(Expr):
    """``e[i]`` -- a single bit."""

    operand: Expr
    index: Expr


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """A builtin function application (EXTS, EXTZ, ROTL, to_num, ...)."""

    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True, eq=False)
class IfExpr(Expr):
    cond: Expr
    then: Expr
    orelse: Expr


# ----------------------------------------------------------------------
# L-values
# ----------------------------------------------------------------------


class LValue:
    __slots__ = ()


@dataclass(frozen=True, eq=False)
class VarLHS(LValue):
    name: str


@dataclass(frozen=True, eq=False)
class VarSliceLHS(LValue):
    name: str
    lo: Expr
    hi: Expr


@dataclass(frozen=True, eq=False)
class RegLHS(LValue):
    reg: RegSpec


@dataclass(frozen=True, eq=False)
class MemLHS(LValue):
    """``MEMw(addr, size) := value``."""

    addr: Expr
    size: Expr


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


class Stmt:
    __slots__ = ()


@dataclass(frozen=True, eq=False)
class Decl(Stmt):
    """``(bit[64]) EA := e;`` -- typed local declaration with initialiser."""

    name: str
    typ: Type
    init: Expr


@dataclass(frozen=True, eq=False)
class Assign(Stmt):
    lhs: LValue
    value: Expr


@dataclass(frozen=True, eq=False)
class If(Stmt):
    cond: Expr
    then: Stmt
    orelse: Optional[Stmt]


@dataclass(frozen=True, eq=False)
class Block(Stmt):
    body: Tuple[Stmt, ...]


@dataclass(frozen=True, eq=False)
class Foreach(Stmt):
    """``foreach (i from e1 to e2) s`` (or ``downto``)."""

    var: str
    start: Expr
    stop: Expr
    downto: bool
    body: Stmt


@dataclass(frozen=True, eq=False)
class BarrierStmt(Stmt):
    """Signals a memory-barrier event to the concurrency model."""

    kind: str  # "sync" | "lwsync" | "eieio" | "isync"


@dataclass(frozen=True, eq=False)
class Nop(Stmt):
    pass


@dataclass(frozen=True)
class FunctionClause:
    """``function clause execute (Name (F1, F2, ...)) = body``.

    ``fields`` carries the field names in AST-constructor order; their widths
    come from the instruction's encoding specification.
    """

    function: str
    ast_name: str
    fields: Tuple[str, ...]
    body: Stmt
