"""The POWER architected register model.

Registers carry their vendor-documentation bit numbering (section 2.1.4 of
the paper): 64-bit registers are numbered 0..63 MSB-first; the 32-bit
condition register CR is numbered 32..63 and partitioned into 4-bit fields
CR0..CR7 whose bits carry the LT/GT/EQ/SO flag names.  The architectural
granularity of register dependencies is a single bit, which is what lets the
model allow ``MP+sync+addr-cr``.

``CIA`` and ``NIA`` are the current/next instruction address pseudo-registers
of the vendor pseudocode; the thread model treats them specially (they never
give rise to dependencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..sail.outcomes import RegSlice
from ..sail.parser import RegistryView


@dataclass(frozen=True)
class RegisterInfo:
    """Shape of one architected register (or register file)."""

    name: str
    start: int  # first bit index in the vendor numbering
    width: int
    file_size: Optional[int] = None  # number of entries if a register file

    @property
    def end(self) -> int:
        return self.start + self.width - 1


class Registry:
    """All architected registers the ISA model knows about."""

    def __init__(self) -> None:
        self._registers: Dict[str, RegisterInfo] = {}
        self._fields: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._instance_shapes: Dict[str, RegisterInfo] = {}

    def add(self, info: RegisterInfo) -> None:
        self._registers[info.name] = info
        self._instance_shapes.clear()

    def add_field(self, reg: str, field: str, lo: int, hi: int) -> None:
        self._fields[(reg, field)] = (lo, hi)

    # -- lookup --------------------------------------------------------

    def info(self, name: str) -> RegisterInfo:
        return self._registers[name]

    def is_file(self, name: str) -> bool:
        return self._registers[name].file_size is not None

    def names(self) -> Iterable[str]:
        return self._registers.keys()

    def instance_name(self, name: str, index: Optional[int]) -> str:
        """Concrete register instance name: ``GPR``+5 -> ``GPR5``."""
        info = self._registers[name]
        if info.file_size is None:
            if index is not None:
                raise KeyError(f"{name} is not a register file")
            return name
        if index is None or not 0 <= index < info.file_size:
            raise KeyError(f"bad index {index} for register file {name}")
        return f"{name}{index}"

    def shape_of_instance(self, instance: str) -> RegisterInfo:
        """Shape info for a concrete instance name (``GPR5`` -> GPR's shape).

        Memoised: the final-state outcome extraction resolves the same few
        instance names for every final state of an exploration.
        """
        found = self._instance_shapes.get(instance)
        if found is not None:
            return found
        if instance in self._registers:
            found = self._registers[instance]
        else:
            for name, info in self._registers.items():
                if info.file_size is not None and instance.startswith(name):
                    suffix = instance[len(name):]
                    if suffix.isdigit() and int(suffix) < info.file_size:
                        found = info
                        break
        if found is None:
            raise KeyError(f"unknown register instance {instance}")
        self._instance_shapes[instance] = found
        return found

    def full_slice(self, instance: str) -> RegSlice:
        info = self.shape_of_instance(instance)
        return RegSlice(instance, info.start, info.end)

    def slice_of(
        self,
        name: str,
        index: Optional[int],
        lo: Optional[int],
        hi: Optional[int],
    ) -> RegSlice:
        """Resolve a (file, index, bit-range) reference to a ``RegSlice``."""
        instance = self.instance_name(name, index)
        info = self._registers[name]
        if lo is None:
            lo, hi = info.start, info.end
        assert hi is not None
        if not (info.start <= lo <= hi <= info.end):
            raise KeyError(
                f"bit range [{lo}..{hi}] outside {name}[{info.start}..{info.end}]"
            )
        return RegSlice(instance, lo, hi)

    def field_slice(self, reg: str, field: str) -> RegSlice:
        lo, hi = self._fields[(reg, field)]
        return RegSlice(reg, lo, hi)

    def parser_view(self) -> RegistryView:
        files = {n for n, i in self._registers.items() if i.file_size is not None}
        return RegistryView(set(self._registers), files, self._fields)


def power_registry() -> Registry:
    """The registers of the POWER fixed-point and branch facilities."""
    registry = Registry()
    registry.add(RegisterInfo("GPR", 0, 64, file_size=32))
    registry.add(RegisterInfo("CR", 32, 32))
    registry.add(RegisterInfo("XER", 0, 64))
    registry.add(RegisterInfo("LR", 0, 64))
    registry.add(RegisterInfo("CTR", 0, 64))
    registry.add(RegisterInfo("CIA", 0, 64))
    registry.add(RegisterInfo("NIA", 0, 64))
    # XER flag bits (Power ISA 2.06B numbering).
    registry.add_field("XER", "SO", 32, 32)
    registry.add_field("XER", "OV", 33, 33)
    registry.add_field("XER", "CA", 34, 34)
    return registry


# Flag-bit positions inside each 4-bit CRn field.
CR_LT, CR_GT, CR_EQ, CR_SO = 0, 1, 2, 3


def cr_field_slice(field_index: int) -> RegSlice:
    """The ``RegSlice`` of condition-register field CRn (n = 0..7)."""
    if not 0 <= field_index < 8:
        raise ValueError(f"CR field index {field_index} out of range")
    lo = 32 + 4 * field_index
    return RegSlice("CR", lo, lo + 3)


#: Registers whose reads/writes never create dependencies (section 2.1.4).
PSEUDO_REGISTERS = frozenset({"CIA", "NIA"})
