"""Exhaustive exploration: compute the set of all allowed executions.

This is the test-oracle mode of section 6: a memoised depth-first search
over the system-state transition graph.  Final states are summarised as
*outcomes* -- per-thread final register values plus possible final memory
values (one outcome per linearisation of residual coherence freedom).

The search is exact, not a sampling: with the eager-transition closure the
branching transitions are exactly the observable ordering choices, so the
collected outcome set is the architectural envelope for the test.

``explore`` and ``find_witness`` share the frontier/seen bookkeeping
(``_Frontier``) and the ``ExplorationStats`` accounting, so witness searches
report the same statistics as full explorations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..sail.values import Bits
from .system import SystemState, Transition
from .thread import ModelError

#: An outcome: ((tid, reg, value-int-or-None) ...) + ((addr,size,value) ...).
Outcome = Tuple[Tuple, Tuple]


class ExplorationLimit(Exception):
    """The state budget was exhausted before the search completed."""


@dataclass
class ExplorationStats:
    states_visited: int = 0
    transitions_taken: int = 0
    final_states: int = 0
    deadlocks: int = 0
    max_frontier: int = 0
    seconds: float = 0.0

    def merge(self, other: "ExplorationStats") -> None:
        """Fold another search's accounting into this one (corpus totals)."""
        self.states_visited += other.states_visited
        self.transitions_taken += other.transitions_taken
        self.final_states += other.final_states
        self.deadlocks += other.deadlocks
        self.max_frontier = max(self.max_frontier, other.max_frontier)
        self.seconds += other.seconds


@dataclass
class ExplorationResult:
    outcomes: Set[Outcome]
    stats: ExplorationStats
    deadlock_states: List[SystemState] = field(default_factory=list)

    def register_outcomes(self) -> Set[Tuple]:
        """Just the register parts of the outcomes."""
        return {registers for registers, _memory in self.outcomes}


@dataclass
class Witness:
    """A witnessing execution: the abstract-machine trace plus statistics.

    Unpackable, indexable and sized as the ``(trace, final_state)``
    two-tuple that ``find_witness`` originally returned.
    """

    trace: List[Transition]
    final_state: SystemState
    stats: ExplorationStats

    def __iter__(self) -> Iterator:
        yield self.trace
        yield self.final_state

    def __getitem__(self, index):
        return (self.trace, self.final_state)[index]

    def __len__(self) -> int:
        return 2


class _Frontier:
    """DFS frontier + seen-set bookkeeping shared by the search modes.

    Each stack entry is a (state, payload) pair; ``explore`` carries no
    payload, ``find_witness`` carries the transition path.  Popping counts
    a visited state against the budget; pushing applies a transition,
    counts it, and deduplicates the successor against the seen keys.
    """

    def __init__(self, initial: SystemState, payload, limit: int,
                 stats: ExplorationStats):
        self.limit = limit
        self.stats = stats
        self.stack: List[Tuple[SystemState, object]] = [(initial, payload)]
        self.seen: Set = {initial.key()}

    def __bool__(self) -> bool:
        return bool(self.stack)

    def pop(self) -> Tuple[SystemState, object]:
        stats = self.stats
        stats.max_frontier = max(stats.max_frontier, len(self.stack))
        state, payload = self.stack.pop()
        stats.states_visited += 1
        if stats.states_visited > self.limit:
            raise ExplorationLimit(
                f"exceeded {self.limit} states; increase params.max_states"
            )
        return state, payload

    def push(self, state: SystemState, transition: Transition,
             payload) -> None:
        successor = state.apply(transition)
        self.stats.transitions_taken += 1
        key = successor.key()
        if key not in self.seen:
            self.seen.add(key)
            self.stack.append((successor, payload))


def _registers_of_interest(
    system: SystemState,
    static_cache: Optional[Dict[int, FrozenSet[str]]] = None,
) -> List[Tuple[int, str]]:
    """(tid, register) pairs whose final values describe an outcome.

    The static output registers of an instance depend only on its fetch
    address (program memory is fixed for the whole exploration), so they are
    computed once per address and cached across the search's final states;
    each state only extends the set with its dynamically discovered writes.
    """
    if static_cache is None:
        static_cache = {}
    names: List[Tuple[int, str]] = []
    for tid, thread in sorted(system.threads.items()):
        seen = set(thread.initial_registers)
        for instance in thread.instances.values():
            for record in instance.reg_writes:
                seen.add(record.slice.reg)
            static = static_cache.get(instance.address)
            if static is None:
                static = frozenset(
                    out.reg for out in instance.static_fp.regs_out
                )
                static_cache[instance.address] = static
            seen.update(static)
        for name in sorted(seen):
            names.append((tid, name))
    return names


def _outcome_of(
    system: SystemState,
    memory_cells: Iterable[Tuple[int, int]],
    static_cache: Optional[Dict[int, FrozenSet[str]]] = None,
) -> List[Outcome]:
    registers = []
    for tid, name in _registers_of_interest(system, static_cache):
        value = system.threads[tid].final_register_value(system.model, name)
        registers.append(
            (tid, name, value.to_int() if value.is_known else None)
        )
    register_part = tuple(registers)
    cells = list(memory_cells)
    if not cells:
        return [(register_part, ())]
    outcomes = []
    for memory in system.final_memory(cells):
        memory_part = tuple(
            (addr, size, memory[(addr, size)]) for addr, size in cells
        )
        outcomes.append((register_part, memory_part))
    return outcomes


def explore(
    initial: SystemState,
    memory_cells: Iterable[Tuple[int, int]] = (),
    max_states: Optional[int] = None,
    collect_deadlocks: bool = False,
) -> ExplorationResult:
    """Exhaustively enumerate all reachable final states.

    ``memory_cells`` lists (addr, size) memory locations whose final values
    the caller cares about (from the litmus test's final condition).
    """
    limit = max_states if max_states is not None else initial.params.max_states
    cells = tuple(memory_cells)
    stats = ExplorationStats()
    outcomes: Set[Outcome] = set()
    deadlocks: List[SystemState] = []
    static_cache: Dict[int, FrozenSet[str]] = {}
    started = time.perf_counter()

    frontier = _Frontier(initial, None, limit, stats)
    while frontier:
        state, _ = frontier.pop()
        if state.is_final():
            # Residual propagate/ack transitions only add coherence edges;
            # the final-memory enumeration over linear extensions of the
            # current partial order already covers every continuation.
            stats.final_states += 1
            outcomes.update(_outcome_of(state, cells, static_cache))
            continue
        transitions = state.enumerate_transitions()
        if not transitions:
            if state.threads_finished():
                # Threads complete but some write cannot reach its coherence
                # point (a barrier-induced cycle): a dead path representing
                # coherence choices no hardware execution can realise.
                stats.deadlocks += 1
                if collect_deadlocks:
                    deadlocks.append(state)
                continue
            raise ModelError(
                "deadlock: no transitions from a non-final state\n"
                + state.render()
            )
        for transition in transitions:
            frontier.push(state, transition, None)

    stats.seconds = time.perf_counter() - started
    return ExplorationResult(outcomes, stats, deadlocks)


def find_witness(
    initial: SystemState,
    predicate,
    memory_cells: Iterable[Tuple[int, int]] = (),
    max_states: Optional[int] = None,
) -> Optional[Witness]:
    """Search for one execution whose outcome satisfies ``predicate``.

    Returns a ``Witness`` (unpackable as ``(trace, final_state)``, with
    ``.stats`` carrying the same accounting as ``explore``) for the first
    witnessing execution found, or None if the predicate is unsatisfiable.
    The trace is the abstract-machine run behind the outcome -- the
    executable counterpart of the paper's execution diagrams.
    """
    limit = max_states if max_states is not None else initial.params.max_states
    cells = tuple(memory_cells)
    stats = ExplorationStats()
    static_cache: Dict[int, FrozenSet[str]] = {}
    started = time.perf_counter()

    frontier = _Frontier(initial, (), limit, stats)
    while frontier:
        state, path = frontier.pop()
        if state.is_final():
            stats.final_states += 1
            for outcome in _outcome_of(state, cells, static_cache):
                if predicate(outcome):
                    stats.seconds = time.perf_counter() - started
                    return Witness(list(path), state, stats)
            continue
        transitions = state.enumerate_transitions()
        if not transitions and state.threads_finished():
            stats.deadlocks += 1
            continue
        for transition in transitions:
            frontier.push(state, transition, path + (transition,))

    stats.seconds = time.perf_counter() - started
    return None


def run_one(initial: SystemState, choose=None, max_steps: int = 100000):
    """Run a single (pseudo-random or guided) execution to completion.

    ``choose(state, transitions)`` picks one transition; the default takes
    the first.  Used by the interactive front-end and the emulator mode.
    """
    state = initial
    last: Optional[Transition] = None
    for step in range(max_steps):
        if state.is_final():
            return state
        transitions = state.enumerate_transitions()
        if not transitions:
            raise ModelError(
                f"deadlock in single execution after {step} steps "
                f"(last transition: {last if last is not None else 'none'})\n"
                + state.render()
            )
        transition = transitions[0] if choose is None else choose(
            state, transitions
        )
        state = state.apply(transition)
        last = transition
    raise ModelError(
        f"execution did not terminate within the step budget "
        f"({max_steps} steps; last transition: "
        f"{last if last is not None else 'none'})"
    )
