"""Pluggable search strategies for the exhaustive oracle.

The oracle's two questions -- all reachable outcomes, or one witnessing
execution -- are answered by interchangeable ``SearchStrategy``
backends over a single unified DFS driver (``core.run_search``):

* ``SequentialDFS`` -- the reference single-process engine,
  bit-identical to the historical ``explore``/``find_witness``;
* ``ShardedParallel`` -- intra-test multiprocessing: the frontier is
  split at a configurable depth into subtree shards owned by forked
  workers (key-hash partitioning), outcome sets and stats merged on
  join;
* ``BoundedIterative`` -- growing-state-budget iterative deepening that
  returns partial outcome sets flagged ``complete=False`` instead of
  raising ``ExplorationLimit`` mid-search.

``resolve_strategy`` turns ``None`` / a name / an instance into a
strategy; ``make_strategy`` builds one by name with tuning options
(the CLI's ``--strategy`` / ``--shard-depth``).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from .base import SearchStrategy
from .bounded import BoundedIterative
from .core import (
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    Frontier,
    Outcome,
    Witness,
    outcome_of,
    registers_of_interest,
    replay_index_path,
    run_search,
)
from .sequential import SequentialDFS
from .sharded import ShardedParallel

#: Name -> class registry for the CLI and corpus-worker protocol.
STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    SequentialDFS.name: SequentialDFS,
    ShardedParallel.name: ShardedParallel,
    BoundedIterative.name: BoundedIterative,
}


def make_strategy(
    name: str,
    jobs: Optional[int] = None,
    shard_depth: Optional[int] = None,
    initial_budget: Optional[int] = None,
) -> SearchStrategy:
    """Build a strategy by registry name, applying only relevant options."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r} "
            f"(choose from {sorted(STRATEGIES)})"
        ) from None
    if cls is ShardedParallel:
        options = {}
        if jobs is not None:
            options["jobs"] = jobs
        if shard_depth is not None:
            options["shard_depth"] = shard_depth
        return ShardedParallel(**options)
    if cls is BoundedIterative and initial_budget is not None:
        return BoundedIterative(initial_budget=initial_budget)
    return cls()


def resolve_strategy(spec=None, **options) -> SearchStrategy:
    """Coerce ``None`` / a name / a ``SearchStrategy`` into a strategy."""
    if spec is None:
        return SequentialDFS()
    if isinstance(spec, SearchStrategy):
        return spec
    if isinstance(spec, str):
        return make_strategy(spec, **options)
    raise TypeError(f"not a search strategy: {spec!r}")


__all__ = [
    "BoundedIterative",
    "ExplorationLimit",
    "ExplorationResult",
    "ExplorationStats",
    "Frontier",
    "Outcome",
    "STRATEGIES",
    "SearchStrategy",
    "SequentialDFS",
    "ShardedParallel",
    "Witness",
    "make_strategy",
    "outcome_of",
    "registers_of_interest",
    "replay_index_path",
    "resolve_strategy",
    "run_search",
]
