"""Disassembler: 32-bit opcodes back to assembly text.

The inverse of ``repro.isa.assembler``, generated from the same encoding
specifications; used by the interactive UI's Fig. 3-style state display and
by the codec round-trip benchmarks (E9).
"""

from __future__ import annotations

import re
from typing import Optional

from .model import DecodedInstruction, IsaModel
from .spec import REG_FIELDS, SIGNED_FIELDS

_MEM_OPERAND = re.compile(r"^(?P<disp>[^()]*)\((?P<base>[^()]+)\)$")


def _signed(value: int, width: int) -> int:
    if value >> (width - 1):
        return value - (1 << width)
    return value


def disassemble(
    model: IsaModel, word: int, address: Optional[int] = None
) -> str:
    """Render an opcode as assembly (``addr`` resolves branch targets)."""
    instruction = model.decode(word)
    if instruction is None:
        return f".long 0x{word:08x}"
    return render(instruction, address)


def render(
    instruction: DecodedInstruction, address: Optional[int] = None
) -> str:
    spec = instruction.spec
    fields = dict(instruction.fields)
    widths = {f.name: f.width for f in spec.operand_fields()}

    mnemonic = spec.mnemonic
    if fields.get("OE"):
        mnemonic += "o"
    if fields.get("Rc") and not mnemonic.endswith("."):
        mnemonic += "."
    if fields.get("LK"):
        mnemonic += "l"
    if fields.get("AA"):
        mnemonic += "a"

    parts = []
    for template in spec.syntax:
        if not template:
            continue
        parts.append(_render_operand(template, fields, widths, address))
    operands = ",".join(parts)
    return f"{mnemonic} {operands}".strip()


def _render_operand(template, fields, widths, address) -> str:
    match = _MEM_OPERAND.match(template)
    if match:
        disp_field, base_field = match.group("disp"), match.group("base")
        raw = fields[disp_field]
        disp = _signed(raw, widths[disp_field])
        if disp_field == "DS":
            disp *= 4
        return f"{disp}(r{fields[base_field]})"
    if template in REG_FIELDS:
        return f"r{fields[template]}"
    if template == "target":
        field = "LI" if "LI" in fields else "BD"
        offset = _signed(fields[field], widths[field]) << 2
        if fields.get("AA"):
            # Absolute target: render as a (possibly negative) signed
            # address so re-assembly reproduces the same field value.
            return str(offset)
        if address is not None:
            return f"0x{(address + offset) & ((1 << 64) - 1):x}"
        return f".{offset:+d}"
    if template == "spr":
        raw = fields["SPR"]
        number = ((raw & 0x1F) << 5) | (raw >> 5)
        return {1: "xer", 8: "lr", 9: "ctr"}.get(number, str(number))
    if template == "fxm":
        mask = fields["FXM"]
        if mask and mask & (mask - 1) == 0:
            return f"cr{7 - mask.bit_length() + 1}"
        return str(mask)
    if template == "sh6":
        return str((fields["SHH"] << 5) | fields["SHL"])
    if template in ("mb6", "me6"):
        raw = fields["MBE"]
        return str(((raw & 1) << 5) | (raw >> 1))
    if template in ("BF", "BFA"):
        return f"cr{fields[template]}"
    value = fields[template]
    if template in SIGNED_FIELDS:
        return str(_signed(value, widths[template]))
    return str(value)
