"""Tests for the Sail lexer and parser."""

import pytest

from repro.isa.registers import power_registry
from repro.sail import ast
from repro.sail.ast import SailSyntaxError
from repro.sail.lexer import tokenize
from repro.sail.parser import parse_execute_clause, parse_statement

VIEW = power_registry().parser_view()


class TestLexer:
    def test_binary_literal(self):
        tokens = tokenize("0b0101")
        assert tokens[0].kind == "bits"
        assert tokens[0].value == "0101"

    def test_hex_literal_expands_to_bits(self):
        tokens = tokenize("0x1F")
        assert tokens[0].value == "00011111"

    def test_decimal_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind == "int" and tokens[0].value == 42

    def test_assignment_vs_concat(self):
        kinds = [t.text for t in tokenize("a := b : c") if t.kind == "op"]
        assert kinds == [":=", ":"]

    def test_range_operator(self):
        texts = [t.text for t in tokenize("x[1 .. 5]")]
        assert ".." in texts

    def test_comments_stripped(self):
        tokens = tokenize("a # this is a comment\nb")
        idents = [t.text for t in tokens if t.kind == "ident"]
        assert idents == ["a", "b"]

    def test_unsigned_comparison_operators(self):
        texts = [t.text for t in tokenize("a <u b >=u c")]
        assert "<u" in texts and ">=u" in texts

    def test_bad_character_rejected(self):
        with pytest.raises(SailSyntaxError):
            tokenize("a @ b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1 and tokens[1].line == 2


class TestStatementParsing:
    def test_declaration(self):
        stmt = parse_statement("(bit[64]) EA := 0", VIEW)
        assert isinstance(stmt, ast.Decl)
        assert stmt.typ.width == 64

    def test_block_with_semicolons(self):
        stmt = parse_statement("{ a := 1; b := 2 }", VIEW)
        assert isinstance(stmt, ast.Block)
        assert len(stmt.body) == 2

    def test_if_then_else(self):
        stmt = parse_statement("if RA == 0 then b := 0 else b := 1", VIEW)
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_register_file_read(self):
        stmt = parse_statement("x := GPR[RA]", VIEW)
        read = stmt.value
        assert isinstance(read, ast.RegRead)
        assert read.reg.name == "GPR"
        assert read.reg.index is not None

    def test_cr_bit_range(self):
        stmt = parse_statement("CR[32 .. 35] := 0b0010", VIEW)
        assert isinstance(stmt.lhs, ast.RegLHS)
        assert stmt.lhs.reg.name == "CR"

    def test_xer_named_field(self):
        stmt = parse_statement("x := XER.SO", VIEW)
        spec = stmt.value.reg
        assert spec.name == "XER"
        assert spec.lo.value == 32 and spec.hi.value == 32

    def test_unknown_register_field_rejected(self):
        with pytest.raises(SailSyntaxError):
            parse_statement("x := XER.NOPE", VIEW)

    def test_memory_write(self):
        stmt = parse_statement("MEMw(EA, 8) := GPR[RS]", VIEW)
        assert isinstance(stmt.lhs, ast.MemLHS)

    def test_memory_read_kinds(self):
        plain = parse_statement("x := MEMr(EA, 4)", VIEW).value
        reserve = parse_statement("x := MEMr_reserve(EA, 4)", VIEW).value
        assert plain.kind == "plain"
        assert reserve.kind == "reserve"

    def test_store_conditional(self):
        stmt = parse_statement(
            "(bit[1]) ok := STORE_CONDITIONAL(EA, 4, v)", VIEW
        )
        assert isinstance(stmt.init, ast.StoreConditional)

    def test_foreach(self):
        stmt = parse_statement("foreach (i from 0 to 7) x := i", VIEW)
        assert isinstance(stmt, ast.Foreach)
        assert not stmt.downto

    def test_foreach_downto(self):
        stmt = parse_statement("foreach (i from 7 downto 0) x := i", VIEW)
        assert stmt.downto

    def test_barrier_statements(self):
        assert parse_statement("BARRIER_SYNC()", VIEW).kind == "sync"
        assert parse_statement("BARRIER_LWSYNC()", VIEW).kind == "lwsync"
        assert parse_statement("BARRIER_EIEIO()", VIEW).kind == "eieio"
        assert parse_statement("BARRIER_ISYNC()", VIEW).kind == "isync"

    def test_variable_slice_assignment(self):
        stmt = parse_statement("r[8 .. 15] := 0x00", VIEW)
        assert isinstance(stmt.lhs, ast.VarSliceLHS)


class TestExpressionParsing:
    def _expr(self, text):
        return parse_statement(f"x := {text}", VIEW).value

    def test_precedence_mul_over_add(self):
        expr = self._expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_concat_under_arith(self):
        expr = self._expr("a : b + c")
        assert expr.op == ":"

    def test_comparison_looser_than_concat(self):
        expr = self._expr("a == b : c")
        assert expr.op == "=="

    def test_parenthesised_slice(self):
        expr = self._expr("(GPR[RS])[32 .. 63]")
        assert isinstance(expr, ast.SliceExpr)
        assert isinstance(expr.operand, ast.RegRead)

    def test_single_bit_index(self):
        expr = self._expr("BO[2]")
        assert isinstance(expr, ast.IndexExpr)

    def test_if_expression(self):
        expr = self._expr("if a == b then 0b1 else 0b0")
        assert isinstance(expr, ast.IfExpr)

    def test_builtin_call(self):
        expr = self._expr("EXTS(64, D)")
        assert isinstance(expr, ast.Call)
        assert expr.func == "EXTS" and len(expr.args) == 2

    def test_unary_operators(self):
        assert self._expr("~a").op == "~"
        assert self._expr("-a").op == "-"


class TestExecuteClause:
    def test_fig2_stdu_clause(self):
        source = """
function clause execute (Stdu (RS, RA, DS)) =
{ EA := GPR[RA] + EXTS (DS : 0b00);
  MEMw(EA,8) := GPR[RS];
  GPR[RA] := EA }
"""
        clause = parse_execute_clause(source, VIEW)
        assert clause.function == "execute"
        assert clause.ast_name == "Stdu"
        assert clause.fields == ("RS", "RA", "DS")
        assert isinstance(clause.body, ast.Block)
        assert len(clause.body.body) == 3

    def test_clause_without_fields(self):
        source = "function clause execute (Eieio) = { BARRIER_EIEIO() }"
        clause = parse_execute_clause(source, VIEW)
        assert clause.fields == ()

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SailSyntaxError):
            parse_execute_clause(
                "function clause execute (A) = { NOP() } garbage", VIEW
            )
