"""Pretty-printer for the herdtools ``.litmus`` format (POWER flavour).

``emit_litmus`` is the inverse of ``parser.parse_litmus``: it renders a
``LitmusTest`` back to source in a canonical normal form (sorted initial
state, aligned instruction columns, bracketed memory atoms).  The normal
form is a fixed point of ``parse`` followed by ``emit``, which the
round-trip property test pins down: ``emit(parse(emit(t))) == emit(t)``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from .test import (
    And,
    Condition,
    LitmusTest,
    MemoryEquals,
    Not,
    Or,
    RegisterEquals,
    TrueCondition,
)


def _register_source_name(name: str) -> str:
    """Architected instance name back to litmus syntax (GPR5 -> r5)."""
    match = re.fullmatch(r"GPR(\d+)", name)
    if match:
        return f"r{int(match.group(1))}"
    return name.lower()


def _register_sort_key(name: str) -> Tuple[int, Union[int, str]]:
    match = re.fullmatch(r"GPR(\d+)", name)
    if match:
        return (0, int(match.group(1)))
    return (1, name)


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------

#: Precedence levels: Or binds loosest, And tighter, atoms tightest.
_PREC_OR, _PREC_AND, _PREC_ATOM = 0, 1, 2


def format_condition(condition: Condition) -> str:
    """Render a condition AST without the outer ``exists (...)`` wrapper."""
    return _format(condition, _PREC_OR)


def _format(condition: Condition, context: int) -> str:
    if isinstance(condition, RegisterEquals):
        reg = _register_source_name(condition.register)
        return f"{condition.tid}:{reg}={condition.value}"
    if isinstance(condition, MemoryEquals):
        return f"[{condition.location}]={condition.value}"
    if isinstance(condition, TrueCondition):
        return "true"
    if isinstance(condition, Not):
        return f"~({_format(condition.operand, _PREC_OR)})"
    if isinstance(condition, And):
        text = (
            f"{_format(condition.left, _PREC_AND)}"
            f" /\\ {_format(condition.right, _PREC_AND)}"
        )
        return f"({text})" if context > _PREC_AND else text
    if isinstance(condition, Or):
        text = (
            f"{_format(condition.left, _PREC_OR)}"
            f" \\/ {_format(condition.right, _PREC_OR)}"
        )
        return f"({text})" if context > _PREC_OR else text
    raise TypeError(f"unknown condition {condition!r}")


# ----------------------------------------------------------------------
# The test
# ----------------------------------------------------------------------


def emit_litmus(test: LitmusTest) -> str:
    """Render a ``LitmusTest`` to canonical ``.litmus`` source."""
    lines: List[str] = [f"{test.arch} {test.name}", "{"]

    for tid in sorted(test.init_registers):
        assignments = test.init_registers[tid]
        parts = []
        for name in sorted(assignments, key=_register_sort_key):
            value = assignments[name]
            parts.append(f"{tid}:{_register_source_name(name)}={value}")
        if parts:
            lines.append("; ".join(parts) + ";")
    memory_parts = [
        f"{var}={test.init_memory[var]}" for var in sorted(test.init_memory)
    ]
    if memory_parts:
        lines.append("; ".join(memory_parts) + ";")
    lines.append("}")

    lines.extend(_format_code_table(test.programs))

    quantifier = {"exists": "exists", "not exists": "~exists", "forall": "forall"}[
        test.quantifier
    ]
    lines.append(f"{quantifier} ({format_condition(test.condition)})")
    return "\n".join(lines) + "\n"


def _format_code_table(programs: List[List[str]]) -> List[str]:
    depth = max(len(program) for program in programs)
    rows: List[List[str]] = [[f"P{tid}" for tid in range(len(programs))]]
    for i in range(depth):
        rows.append(
            [
                program[i] if i < len(program) else ""
                for program in programs
            ]
        )
    widths = [
        max(len(rows[r][c]) for r in range(len(rows)))
        for c in range(len(programs))
    ]
    return [
        " " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) + " ;"
        for row in rows
    ]
