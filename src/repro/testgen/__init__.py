"""Sequential and concurrent test generation plus validation (section 7)."""

from .axiomatic import AxiomaticVerdict, decide
from .compare import ComparisonResult, SuiteReport, run_differential, run_suite
from .concurrent import (
    OracleCheck,
    OracleReport,
    check_suite,
    closure_expectation,
    expectation,
    expectation_with_oracle,
)
from .sequential import SequentialTest, generate_suite, generate_tests

__all__ = [
    "AxiomaticVerdict",
    "ComparisonResult",
    "OracleCheck",
    "OracleReport",
    "SequentialTest",
    "SuiteReport",
    "check_suite",
    "closure_expectation",
    "decide",
    "expectation",
    "expectation_with_oracle",
    "generate_suite",
    "generate_tests",
    "run_differential",
    "run_suite",
]
