"""Envelope-checking as a service: engine, verdict cache, daemon, client.

The query path is layered (see SERVICE.md):

* ``engine`` -- ``EnvelopeEngine.run_request(request) -> Verdict``, the
  one façade every entry point (CLI verbs, corpus runner, testgen
  harness, daemon) calls; ``run_batch`` schedules many requests across
  worker processes;
* ``cache`` -- the persistent content-hash-keyed verdict store;
* ``daemon``/``client`` -- ``ppcmem2 serve`` and ``ppcmem2 client``,
  the HTTP service and its thin stdlib client;
* ``smoke`` -- the self-contained CI smoke (daemon up, batch twice,
  second run must be all cache hits with identical verdicts).
"""

from .cache import SCHEMA_VERSION, VerdictCache, cache_key
from .engine import (
    BatchResult,
    EngineRequest,
    EnvelopeEngine,
    Verdict,
)

__all__ = [
    "BatchResult",
    "EngineRequest",
    "EnvelopeEngine",
    "SCHEMA_VERSION",
    "Verdict",
    "VerdictCache",
    "cache_key",
]
