"""Source-DPOR exploration over canonical state keys.

``run_dpor`` is the ``--reduction dpor`` driver ``core.run_search``
dispatches to: a depth-first search with explicit frames (one per state
on the current path) combining three layers:

1. **Canonical seen keys** (``symmetry.CanonicalKeys``): states are
   deduplicated modulo the commuting normal form of their propagation
   lists and, when the test is thread-symmetric, modulo the symmetry
   group's orbit.  ``reduction.py`` establishes that normal-form-equal
   states are observationally equivalent with *identical* enabled
   transition sets, and orbit-equal states are isomorphic under the
   group element's renaming -- so merging them (and translating the
   per-state bookkeeping through the arrival's group element) preserves
   the outcome envelope.

2. **Sleep sets** exactly as the ``--reduction sleep`` loop: after
   exploring ``t``, independent siblings (the fine state-conditional
   ``Reducer.independent`` relation) sleep below it.

3. **Source-DPOR race detection** (Abdulla, Aronis, Jonsson, Sagonas:
   source sets without wakeup trees -- sound, not minimal): each frame
   starts with a *single* enabled transition in its backtrack set; when
   a step taken at depth ``d`` races with an earlier step at depth
   ``i`` (the race is detected over an *abstract* dependence relation
   on cell-level footprints, a sound over-approximation of
   ``Reducer.independent``'s negation unioned over states -- barrier
   steps are scoped to their propagation list, appends into it, their
   may-complete sync's origin thread, and other may-completing syncs,
   not treated as dependent on everything -- with happens-before
   tracked as transitively-closed bitmask chains), the reversal is
   scheduled at frame ``i``: the racing transition itself is added
   when an equal-valued transition is enabled at ``i`` and the step is
   happens-before-independent of every intermediate step (a *weak
   initial* of the reversing sequence -- because ``_absdep`` unions
   the fine relation over states, hb-clearness means the step commutes
   with the whole intermediate sequence at every state, so this is
   sound for any kind); otherwise the frame *saturates*
   (backtrack := every awake transition), which trivially contains any
   source set.

Revisits are *stateful*: a seen entry stores the canonical encodings of
the transitions already explored from the state plus a **blob** summary
(thread ids, touched cells, list-append targets, barrier targets and
may-complete sync origins, global-kind flag) of every step in its
covered subtree.  An arrival whose awake set is covered is pruned; a
partially-covered arrival resumes a frame over the difference.  Either
way the stored blob is translated into path coordinates, replayed
against every frame on the path (saturating the dependent ones -- the
aggregate stands in for per-step race replay, trading precision for
per-arrival cost), and merged into the parent's accumulating blob.
Entries are final whenever consulted: a frame for key ``K`` on the
stack means the current state descends from ``K``, so a second arrival
at ``K`` would close a cycle -- impossible in the DAG of states.

On conflict-dense tests saturation makes the race layer degrade toward
plain sleep sets over canonical keys; the measured win (PERFORMANCE.md)
comes primarily from the canonical-key quotient, with the race layer
pruning the sparse-conflict shapes.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Tuple

from ..symmetry import (
    OUT_OF_CELLS,
    CanonicalKeys,
    SymElem,
    close_outcomes,
    detect_symmetry,
)
from ..events import INITIAL_TID
from ..system import SystemState, Transition
from ..thread import ModelError
from .core import ExplorationLimit, ExplorationStats
from .reduction import (
    BARRIER_KINDS,
    GLOBAL_KINDS,
    _APPENDING_KINDS,
    Reducer,
)


def prepare_dpor(
    initial: SystemState,
    symmetry: bool,
    memory_cells,
    collect_deadlocks: bool = False,
):
    """Build the canonicaliser and cell plan for one dpor explore.

    Returns ``(canon, search_cells, finish)``: the ``CanonicalKeys``
    instance to pass to ``run_search``, the memory cells the search
    should collect, and a callback mapping the raw outcome set to the
    caller-facing one.

    Thread symmetry is only detected when asked for, and is disabled
    when exact deadlock states must be reported (a symmetric search
    returns orbit *representatives*; outcomes close under the group,
    arbitrary deadlock states do not).  With a nontrivial group the
    search widens to every data cell -- outcome closure permutes cell
    values, so it needs all of them -- and ``finish`` closes the
    outcome set under the group before projecting back to the
    requested cells.  If the caller asks about a cell outside the
    detected geometry, symmetry is dropped rather than risk projecting
    a value the closure cannot translate.
    """
    requested = tuple(memory_cells)
    group = None
    if symmetry and not collect_deadlocks:
        group = detect_symmetry(initial)
    if group is not None:
        searched = tuple(group.geometry.cells)
        if not set(requested) <= set(searched):
            group = None
    canon = CanonicalKeys(initial, group)
    if group is None:
        return canon, requested, lambda outcomes: outcomes
    return (
        canon,
        searched,
        lambda outcomes: close_outcomes(outcomes, group, requested),
    )

#: Kinds that append an event to a propagation list.  ``resolve_sc``
#: appends only on success, which is state-dependent -- the abstraction
#: treats it as always appending.
_ABS_APPENDING = _APPENDING_KINDS | {"resolve_sc"}

#: Empty blob: (thread-side tids, written cells, observed cells,
#: global-kind flag, list-append targets, barrier-append targets,
#: may-complete sync origins, may-complete flag).
_EMPTY_BLOB = (
    frozenset(), frozenset(), frozenset(), False,
    frozenset(), frozenset(), frozenset(), False,
)


def _inter(a: FrozenSet[int], b: FrozenSet[int]) -> bool:
    if not a or not b:
        return False
    if OUT_OF_CELLS in a or OUT_OF_CELLS in b:
        return True
    return not a.isdisjoint(b)


def _absdep(a: tuple, b: tuple) -> bool:
    """Abstract dependence of two step summaries.

    A sound over-approximation of ``not Reducer.independent``, unioned
    over every state where both steps could fire: kinds in
    ``GLOBAL_KINDS`` are dependent on everything; barrier steps mirror
    the fine relation's scoping (same propagation list, appends into
    the barrier's list, a possibly-completing sync against its origin
    thread's steps or another possibly-completing sync,
    ``commit_barrier`` against its own thread) with the state-dependent
    ``_completes_sync`` over-approximated by a static may-complete
    flag; same-thread thread-side steps are dependent,
    different-thread thread-side steps (no store-conditional) are
    independent, and everything else meets over cell footprints.
    """
    kind_a, tid_a, side_a, mut_a, obs_a, bar_a = a
    kind_b, tid_b, side_b, mut_b, obs_b, bar_b = b
    if kind_a in GLOBAL_KINDS or kind_b in GLOBAL_KINDS:
        return True
    if bar_a is not None or bar_b is not None:
        if bar_a is not None and bar_b is not None:
            if tid_a == tid_b:
                # Two barrier events in one list: order is significant.
                return True
            may_a, org_a, key_a = bar_a
            may_b, org_b, key_b = bar_b
            if may_a and may_b and key_a != key_b:
                # Two eager acknowledgements may reorder.  The *same*
                # barrier delivered to two different lists can never
                # complete twice at one state (completion means every
                # other list already holds the event), so same-key
                # pairs skip this rule.
                return True
            if (may_a and tid_b == org_a) or (may_b and tid_a == org_b):
                return True
            return False
        if bar_a is not None:
            may, origin, _key = bar_a
            b_tid, b_side = tid_a, side_a
            o_kind, o_tid, o_side = kind_b, tid_b, side_b
        else:
            may, origin, _key = bar_b
            b_tid, b_side = tid_b, side_b
            o_kind, o_tid, o_side = kind_a, tid_a, side_a
        if may and o_side and o_tid == origin:
            # A completing delivery acknowledges eagerly; the ack's
            # observable scope is the sync's origin thread.
            return True
        if o_kind in _ABS_APPENDING and o_tid == b_tid:
            # An append into the barrier's list: relative order decides
            # Group-A membership and cp-blocker windows.
            return True
        if b_side and o_side and o_tid == b_tid:
            # ``commit_barrier`` vs its own thread's thread-side steps.
            return True
        return False
    if side_a and side_b:
        if tid_a == tid_b:
            return True
        if kind_a != "resolve_sc" and kind_b != "resolve_sc":
            return False
    return (
        _inter(mut_a, mut_b)
        or _inter(mut_a, obs_b)
        or _inter(mut_b, obs_a)
    )


def _blob_dep(step: tuple, blob: tuple) -> bool:
    """Would ``step`` race with *some* step summarised by ``blob``?"""
    tids, mut, obs, special, appends, btargets, borigins, bcomplete = blob
    if not (tids or mut or obs or special or appends):
        return False
    kind, tid, side, step_mut, step_obs, bar = step
    if kind in GLOBAL_KINDS or special:
        return True
    if bar is not None:
        may, origin, _key = bar
        if tid in appends:
            # The subtree appended into this barrier's list.
            return True
        if tid in borigins:
            # A barrier event landing in a may-complete sync's origin
            # list (the blob granularity cannot check the fine rule's
            # ioid side, so any event there counts).
            return True
        if may and (bcomplete or origin in tids):
            return True
        if side and tid in tids:
            return True
        return False
    if side and (tid in tids or tid in borigins):
        return True
    if kind in _ABS_APPENDING and tid in btargets:
        return True
    return (
        _inter(step_mut, mut)
        or _inter(step_mut, obs)
        or _inter(mut, step_obs)
    )


class _Frame:
    """One state on the current DFS path."""

    __slots__ = (
        "state", "payload", "sleep", "context", "transitions", "backtrack",
        "explored", "explored_set", "explored_enc", "saturated", "elem",
        "entry", "blob", "taken_abs", "hb_taken",
    )

    def __init__(self, state, payload, sleep, context, transitions,
                 elem, entry, backtrack, explored_enc):
        self.state = state
        self.payload = payload
        self.sleep = sleep
        self.context = context
        self.transitions = transitions
        #: Transitions scheduled for exploration (ignored once saturated).
        self.backtrack = backtrack
        self.explored: List[Transition] = []
        self.explored_set = set()
        #: Canonical encodings explored on *previous* visits (never fed
        #: into child sleep sets -- conservative).
        self.explored_enc = explored_enc
        self.saturated = False
        self.elem: SymElem = elem
        self.entry = entry
        #: Mutable concrete-coordinate summary of the subtree below
        #: (same eight fields as ``_EMPTY_BLOB``).
        self.blob = [set(), set(), set(), False, set(), set(), set(), False]
        self.taken_abs: Optional[tuple] = None
        self.hb_taken = 0


def run_dpor(
    initial: SystemState,
    visitor,
    *,
    limit: int,
    stats: ExplorationStats,
    strict_deadlocks: bool,
    reducer: Reducer,
    canon: CanonicalKeys,
    payload=None,
    extend: Optional[Callable] = None,
    seen=None,
    sleep_seed: FrozenSet[Transition] = frozenset(),
    context_seed: Tuple[Optional[int], int] = (None, 0),
):
    """The source-DPOR loop (see the module docstring).

    ``seen`` maps canonical key -> ``[explored encodings, blob]``; it
    must be private to one search (entries assume this loop's visit
    protocol).  Mirrors ``core._run_reduced``'s budget, final, deadlock
    and accounting semantics: a state counts as visited when a frame is
    created for it (or when a final/stuck state is first reached);
    pruned revisits are uncounted.
    """
    if seen is None:
        seen = {}
    frames: List[_Frame] = []
    encode = canon.encode_transition

    def count_visit() -> None:
        if stats.states_visited >= limit:
            raise ExplorationLimit(
                f"exceeded {limit} states; increase params.max_states",
                stats,
            )
        stats.states_visited += 1

    single_list = len(initial.storage.threads) <= 1

    def abstract(state: SystemState, transition: Transition) -> tuple:
        mut_ranges, obs_ranges = reducer._footprint(state, transition)
        cells_of = canon.geometry.cells_of_range
        mut: FrozenSet[int] = frozenset()
        for addr, size in mut_ranges:
            mut = mut | cells_of(addr, size)
        obs: FrozenSet[int] = frozenset()
        for addr, size in obs_ranges:
            obs = obs | cells_of(addr, size)
        kind = transition.kind
        bar = None
        if kind in BARRIER_KINDS:
            # (may-complete-a-sync, sync origin tid, barrier identity).
            # Sync-ness is immutable once the barrier exists, so the
            # may-complete flag over-approximates ``_completes_sync``
            # across every state the step could fire in; a committed
            # event lands only in its own thread's list, completing
            # only in single-list systems.
            if kind == "commit_barrier":
                bar = (single_list, transition.tid, transition.ioid)
            else:
                bid = transition.detail[0]
                barrier = state.storage.barriers_seen[bid]
                bar = (barrier.kind == "sync", bid.tid, bid)
        return (
            kind,
            transition.tid,
            transition.ioid is not None,
            mut,
            obs,
            bar,
        )

    def saturate(frame: _Frame) -> None:
        frame.saturated = True

    def replay_blob(blob: tuple, upto: int) -> None:
        """Saturate every path frame whose taken step races the blob."""
        for index in range(upto):
            frame = frames[index]
            if not frame.saturated and _blob_dep(frame.taken_abs, blob):
                saturate(frame)

    def decode_blob(blob: tuple, elem: SymElem) -> tuple:
        """Canonical blob -> path (concrete) coordinates."""
        if canon.trivial or elem.identity:
            return blob
        tids, mut, obs, special, appends, btargets, borigins, bcomp = blob
        pi_inv = elem.pi_inv
        sigma_inv = elem.sigma_inv
        return (
            frozenset(pi_inv.get(t, t) for t in tids),
            frozenset(sigma_inv.get(c, c) for c in mut),
            frozenset(sigma_inv.get(c, c) for c in obs),
            special,
            frozenset(pi_inv.get(t, t) for t in appends),
            frozenset(pi_inv.get(t, t) for t in btargets),
            frozenset(pi_inv.get(t, t) for t in borigins),
            bcomp,
        )

    def merge_blob(target: list, blob: tuple) -> None:
        target[0] |= blob[0]
        target[1] |= blob[1]
        target[2] |= blob[2]
        target[3] = target[3] or blob[3]
        target[4] |= blob[4]
        target[5] |= blob[5]
        target[6] |= blob[6]
        target[7] = target[7] or blob[7]

    def encode_blob(blob: tuple, elem: SymElem) -> tuple:
        """Path (concrete) blob -> canonical coordinates."""
        if canon.trivial or elem.identity:
            return blob
        pi = elem.pi
        sigma = elem.sigma
        return (
            frozenset(pi.get(t, t) for t in blob[0]),
            frozenset(sigma.get(c, c) for c in blob[1]),
            frozenset(sigma.get(c, c) for c in blob[2]),
            blob[3],
            frozenset(pi.get(t, t) for t in blob[4]),
            frozenset(pi.get(t, t) for t in blob[5]),
            frozenset(pi.get(t, t) for t in blob[6]),
            blob[7],
        )

    # -- outcome-determined end-game cut ---------------------------------
    #
    # Once every thread has finished, the register part of the outcome is
    # fixed, and once every write overlapping an *observed* cell is past
    # its coherence point (``reach_coherence_point`` totally orders
    # overlapping writes), the memory part is too: every final reachable
    # from here yields the same outcome.  The remaining storage end-game
    # (interleavings of leftover propagations, coherence commitments and
    # barrier deliveries) is replaced by (a) one deterministic playout
    # that proves *some* final is reachable (cp-stuck tails are dead
    # paths and yield no outcome, so eager emission without the playout
    # would be unsound) and (b) a statically-computed blob standing in
    # for every step the skipped subtree could take, replayed against
    # the path exactly like a revisit blob -- races between end-game
    # storage traffic and earlier thread steps still schedule their
    # reversals.  Descendants only consume end-game capabilities (threads
    # are finished, so no new writes or barriers appear), hence the blob
    # computed at the cut state covers the whole subtree.
    # The cut coexists with ``strict_deadlocks``: the storage end-game
    # (threads finished, only propagations / coherence commitments /
    # barrier acks left) always keeps some transition enabled until the
    # state is final, and if the deterministic playout nevertheless
    # finds a stuck state it returns ``None`` and the subtree is
    # explored normally -- the ModelError tripwire fires on that path.
    cells = getattr(visitor, "cells", None)
    final_cut = (
        cells is not None
        and not getattr(visitor, "collect_deadlocks", False)
        and reducer.context_bound is None
    )

    def outcome_frozen(state: SystemState) -> bool:
        """Is every reachable final's outcome already determined?

        Registers are fixed once threads finish; the memory part of an
        outcome is the per-cell coherence maximum, and
        ``final_memory_values`` enumerates linear extensions of the
        established ``coherence_after`` -- so once each observed cell's
        overlapping writes are pairwise coherence-ordered (the order
        only ever grows, and it grows acyclically), the cell's final
        value can no longer change.  Writes past their coherence point
        are not required: ordering edges accrue during propagation and
        coherence commitment, long before cp-completion.
        """
        if not state.threads_finished():
            return False
        storage = state.storage
        after = storage.coherence_after
        writes = list(storage.writes_seen.values())

        def reaches(source, goal) -> bool:
            stack = [source]
            visited = {source}
            while stack:
                for nxt in after.get(stack.pop(), ()):
                    if nxt == goal:
                        return True
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append(nxt)
            return False

        for addr, size in cells:
            # Initial writes are coherence-before every overlapping write
            # by fiat (see ``_order_consistent``), not via explicit
            # ``coherence_after`` edges -- they never make a cell
            # undetermined.
            relevant = [
                w.wid for w in writes
                if w.tid != INITIAL_TID and w.overlaps(addr, size)
            ]
            for i, first in enumerate(relevant):
                for second in relevant[i + 1:]:
                    if not (reaches(first, second)
                            or reaches(second, first)):
                        return False
        return True

    def endgame_blob(state: SystemState) -> tuple:
        """Over-approximate summary of every possible step below."""
        storage = state.storage
        cells_of = canon.geometry.cells_of_range
        tids = list(storage.threads)
        touched = set()
        appends = set()
        btargets = set()
        borigins = set()
        bcomplete = False
        past_cp = storage.coherence_points
        for write in storage.writes_seen.values():
            event = ("w", write.wid)
            missing = [
                t for t in tids if not storage.is_propagated_to(event, t)
            ]
            if missing or write.wid not in past_cp:
                touched |= cells_of(write.addr, write.size)
                appends.update(missing)
        for bid, barrier in storage.barriers_seen.items():
            event = ("b", bid)
            missing = [
                t for t in tids if not storage.is_propagated_to(event, t)
            ]
            if missing:
                appends.update(missing)
                btargets.update(missing)
                if barrier.kind == "sync":
                    borigins.add(bid.tid)
                    bcomplete = True
        frozen_cells = frozenset(touched)
        return (
            frozenset(), frozen_cells, frozen_cells,
            bool(storage.unacknowledged_syncs),
            frozenset(appends), frozenset(btargets), frozenset(borigins),
            bcomplete,
        )

    def complete_final(state: SystemState, child_payload):
        """Deterministic storage playout to some reachable final."""
        steps = 0
        while not state.is_final():
            transitions = prune_props(state, state.enumerate_transitions())
            if not transitions or steps > 100_000:
                return None
            chosen = transitions[0]
            if extend:
                child_payload = extend(child_payload, chosen, 0)
            state = state.apply(chosen)
            stats.transitions_taken += 1
            steps += 1
        return state, child_payload

    def thread_done(state: SystemState, tid: int) -> bool:
        thread = state.threads[tid]
        finished = thread._finished_cache
        if finished is None:
            finished = state._thread_finished(thread)
            thread._finished_cache = finished
        return finished

    def prune_props(state: SystemState, transitions):
        """Drop outcome-irrelevant propagations into finished threads.

        A finished thread never issues another read, so a write
        propagated to it can only matter through (a) the Group-A
        condition of a barrier delivery into that thread's list (sync
        acknowledgement needs delivery everywhere, delivery needs the
        barrier's origin-prefix writes at the target) and (b) the
        coherence edges the propagation commits.  (b) is subsumed by
        ``reach_coherence_point``, which can commit any linearisation
        the propagation could have forced (propagation only ever
        *constrains* rcp choices; finality never requires full
        propagation).  (a) is preserved by exception: syncs not yet
        delivered to the target, plus the transitive closure of what
        their deliveries require (origin-list prefixes, write Group-A
        barriers), stay enumerable; non-sync barrier deliveries
        outside that closure only impose coherence-point windows --
        constraints, which removing never blocks a witness.  Future
        barriers are covered because the filter is re-evaluated per
        state -- the moment a new barrier commits with the write in
        its Group A, the propagation reappears in the transition
        list.

        Soundness is two inclusions.  Pruned executions are verbatim
        full-system executions (transitions are only removed), so no
        outcome is added.  None is lost either: delay each pruned
        propagation until the filter stops pruning it (a barrier needs
        it -- by then its own Group-A barriers are delivered and its
        origin-order predecessors in the target list are inserted
        first, so it is enabled) or drop it entirely; dropping only
        removes committed coherence edges, and the resulting final is
        a full-system-reachable state whose value enumeration is a
        superset of the witnessed one.
        """
        if not final_cut:
            return transitions
        storage = state.storage
        events_pos = storage._events_pos
        barriers_seen = storage.barriers_seen
        needed: dict = {}

        def needed_at(target: int):
            """Events still required at ``target``: syncs not yet
            delivered there (acknowledgement needs delivery everywhere)
            plus, transitively, whatever their deliveries need -- a
            barrier's whole origin-list prefix, a write's origin-list
            Group-A barriers."""
            cached = needed.get(target)
            if cached is not None:
                return cached
            cached = set()
            target_pos = events_pos[target]
            stack = [
                ("b", bid)
                for bid, barrier in barriers_seen.items()
                if barrier.kind == "sync" and ("b", bid) not in target_pos
            ]
            while stack:
                event = stack.pop()
                if event in cached:
                    continue
                cached.add(event)
                origin = event[1].tid
                position = events_pos[origin].get(event)
                if position is None:
                    continue
                barriers_only = event[0] == "w"
                for entry in storage.events_propagated_to[origin][:position]:
                    if barriers_only and entry[0] != "b":
                        continue
                    if entry not in target_pos and entry not in cached:
                        stack.append(entry)
            needed[target] = cached
            return cached

        def survives(t: Transition) -> bool:
            if t.kind == "propagate_write":
                tag = "w"
            elif t.kind == "propagate_barrier":
                tag = "b"
            else:
                return True
            if not thread_done(state, t.tid):
                return True
            return (tag, t.detail[0]) in needed_at(t.tid)

        kept = [t for t in transitions if survives(t)]
        if len(kept) == len(transitions):
            return transitions
        # Never manufacture a stuck state out of a live one: if only
        # pruned propagations remain, keep the original list.
        return kept if kept else transitions

    def race_scan(transition: Transition, t_abs: tuple) -> None:
        """Detect races of the step being taken against the path."""
        depth = len(frames) - 1
        frame = frames[depth]
        direct = [
            index
            for index in range(depth)
            if _absdep(frames[index].taken_abs, t_abs)
        ]
        hb = 0
        for index in direct:
            hb |= (1 << index) | frames[index].hb_taken
        covered = 0
        for index in reversed(direct):
            if (covered >> index) & 1:
                covered |= frames[index].hb_taken
                continue
            racer = frames[index]
            covered |= (1 << index) | racer.hb_taken
            if racer.saturated:
                continue
            between = ((1 << depth) - 1) & ~((1 << (index + 1)) - 1)
            if (
                (hb & between) == 0
                and transition in racer.transitions
            ):
                # A weak initial of the race-reversing sequence: one
                # source-set member suffices.  Sound for *every* kind:
                # ``hb & between == 0`` means the step is abstractly --
                # hence (``_absdep`` unions the fine relation over
                # states) at every state -- independent of each
                # intermediate step, so an equal-valued transition
                # enabled at the racer commutes with the whole
                # intermediate sequence and taking it there explores
                # exactly the reversal trace; any intermediate that
                # could change what the transition does (a propagation
                # feeding a read, a same-thread step, an eager sync
                # acknowledgement) is dependent by footprint /
                # same-tid / barrier / global rules and already blocks
                # the hb-clear test.
                if (
                    transition not in racer.explored_set
                    and encode(racer.elem, transition)
                    not in racer.explored_enc
                ):
                    racer.backtrack.add(transition)
            else:
                saturate(racer)
        frame.taken_abs = t_abs
        frame.hb_taken = hb
        # The step itself joins the frame's subtree summary.
        blob = frame.blob
        kind = t_abs[0]
        if t_abs[2]:
            blob[0].add(t_abs[1])
        blob[1] |= t_abs[3]
        blob[2] |= t_abs[4]
        if kind in GLOBAL_KINDS:
            blob[3] = True
        if kind in _ABS_APPENDING:
            blob[4].add(t_abs[1])
        bar = t_abs[5]
        if bar is not None:
            blob[5].add(t_abs[1])
            if bar[0]:
                blob[6].add(bar[1])
                blob[7] = True

    def next_transition(frame: _Frame) -> Optional[Transition]:
        for transition in frame.transitions:
            if transition in frame.explored_set:
                continue
            if transition in frame.sleep:
                continue
            if not frame.saturated and transition not in frame.backtrack:
                continue
            if frame.explored_enc and (
                encode(frame.elem, transition) in frame.explored_enc
            ):
                continue
            if not reducer.within_bound(frame.context, transition):
                continue
            return transition
        return None

    def push(state, child_payload, sleep, context, transitions, elem,
             entry, backtrack, explored_enc) -> None:
        frames.append(_Frame(
            state, child_payload, sleep, context, transitions, elem,
            entry, backtrack, explored_enc,
        ))
        stats.max_frontier = max(stats.max_frontier, len(frames))

    def arrive(state, child_payload, sleep, context):
        """Handle one reached state; returns a visitor result or None."""
        ckey, elem = canon.canonical(state)
        entry = seen.get(ckey)
        if entry is not None:
            blob = entry[1]
            if blob is not _EMPTY_BLOB:
                concrete = decode_blob(blob, elem)
                replay_blob(concrete, len(frames))
                if frames:
                    merge_blob(frames[-1].blob, concrete)
            if entry[2]:
                # A key cut on first visit: outcome already emitted and
                # (same canonical key => same continuations) determined
                # identically here; the blob replay above re-established
                # the subtree's race obligations.
                return None
            if state.is_final():
                return None
            transitions = prune_props(state, state.enumerate_transitions())
            if not transitions:
                return None
            need = [
                transition
                for transition in transitions
                if transition not in sleep
                and encode(elem, transition) not in entry[0]
            ]
            if not need:
                return None
            count_visit()
            push(state, child_payload, sleep, context, transitions, elem,
                 entry, {need[0]}, entry[0])
            return None
        count_visit()
        entry = [set(), _EMPTY_BLOB, False]
        seen[ckey] = entry
        if state.is_final():
            stats.final_states += 1
            return visitor.on_final(state, child_payload)
        transitions = prune_props(state, state.enumerate_transitions())
        if not transitions:
            if state.threads_finished():
                stats.deadlocks += 1
                visitor.on_deadlock(state)
                return None
            if strict_deadlocks:
                raise ModelError(
                    "deadlock: no transitions from a non-final state\n"
                    + state.render()
                )
            return None
        if final_cut and outcome_frozen(state):
            done = complete_final(state, child_payload)
            if done is not None:
                blob = endgame_blob(state)
                replay_blob(blob, len(frames))
                if frames:
                    merge_blob(frames[-1].blob, blob)
                entry[1] = encode_blob(blob, elem)
                entry[2] = True
                stats.final_states += 1
                return visitor.on_final(done[0], done[1])
            # Frozen but cp-stuck along the deterministic playout:
            # explore normally (sound either way; outcomes, if any,
            # are still the determined one).
        awake = [t for t in transitions if t not in sleep]
        backtrack = {awake[0]} if awake else set()
        push(state, child_payload, sleep, context, transitions, elem,
             entry, backtrack, entry[0])
        return None

    found = arrive(initial, payload, sleep_seed, context_seed)
    if found is not None:
        return found
    while frames:
        frame = frames[-1]
        transition = next_transition(frame)
        if transition is None:
            # Frame done: publish this visit's coverage to the entry and
            # fold the subtree summary into the parent.
            entry = frame.entry
            elem = frame.elem
            if frame.explored:
                entry[0].update(
                    encode(elem, t) for t in frame.explored
                )
            blob = (
                frozenset(frame.blob[0]),
                frozenset(frame.blob[1]),
                frozenset(frame.blob[2]),
                frame.blob[3],
                frozenset(frame.blob[4]),
                frozenset(frame.blob[5]),
                frozenset(frame.blob[6]),
                frame.blob[7],
            )
            if blob != _EMPTY_BLOB:
                canonical_blob = encode_blob(blob, elem)
                stored = entry[1]
                entry[1] = (
                    canonical_blob if stored is _EMPTY_BLOB else tuple(
                        stored[i] | canonical_blob[i] if i in (0, 1, 2, 4, 5, 6)
                        else (stored[i] or canonical_blob[i])
                        for i in range(8)
                    )
                )
            frames.pop()
            if frames:
                merge_blob(frames[-1].blob, blob)
            continue
        state = frame.state
        child_sleep = frozenset(
            z
            for source in (frame.sleep, frame.explored)
            for z in source
            if reducer.independent(state, z, transition)
        )
        t_abs = abstract(state, transition)
        successor = state.apply(transition)
        stats.transitions_taken += 1
        race_scan(transition, t_abs)
        frame.explored.append(transition)
        frame.explored_set.add(transition)
        if not frame.saturated:
            # Disabled-sibling races: an awake sibling this step disables
            # (a store-conditional branch killed by resolving the other
            # way, a propagation blocked by a fresh coherence commitment)
            # never occurs in the subtree below, so the occurrence-based
            # race scan cannot schedule its reversal -- schedule it here.
            # Siblings that merely stay enabled are covered by the scan:
            # they are taken somewhere below or provably redundant.
            succ_enabled = (
                () if successor.is_final()
                else prune_props(successor, successor.enumerate_transitions())
            )
            if len(succ_enabled) < len(frame.transitions):
                still = set(succ_enabled)
                for sibling in frame.transitions:
                    if (
                        sibling not in still
                        and sibling not in frame.explored_set
                        and sibling not in frame.sleep
                    ):
                        frame.backtrack.add(sibling)
        index = frame.transitions.index(transition) if extend else 0
        found = arrive(
            successor,
            extend(frame.payload, transition, index) if extend else None,
            child_sleep,
            reducer.advance_context(frame.context, transition),
        )
        if found is not None:
            return found
    return None
