"""E6 -- exploration performance (paper section 8).

The paper reports that sequential checking takes minutes and exhaustive
concurrent checking hours on a single machine, with no optimisation beyond
the straightforward compilation of the definitions.  This bench measures
transitions/second and states explored for representative tests, plus the
effect of the eager-transition closure.
"""

from conftest import print_table

from repro.litmus.library import by_name
from repro.litmus.runner import build_system, run_litmus
from repro.testgen.compare import run_suite
from repro.testgen.sequential import generate_suite

REPRESENTATIVE = ["MP", "MP+syncs", "SB+syncs", "R", "WRC+sync+addr"]


def test_e6_concurrent_exploration_rate(model, benchmark):
    def explore_family():
        return {
            name: run_litmus(by_name(name).parse(), model)
            for name in REPRESENTATIVE
        }

    results = benchmark.pedantic(explore_family, rounds=1, iterations=1)

    rows = []
    total_states = total_transitions = total_seconds = 0.0
    for name in REPRESENTATIVE:
        stats = results[name].exploration.stats
        rate = stats.transitions_taken / stats.seconds if stats.seconds else 0
        rows.append(
            (
                name,
                stats.states_visited,
                stats.final_states,
                stats.transitions_taken,
                f"{stats.seconds:.2f}s",
                f"{rate:,.0f}/s",
            )
        )
        total_states += stats.states_visited
        total_transitions += stats.transitions_taken
        total_seconds += stats.seconds
    rows.append(
        (
            "TOTAL",
            int(total_states),
            "",
            int(total_transitions),
            f"{total_seconds:.2f}s",
            f"{total_transitions / total_seconds:,.0f}/s",
        )
    )
    print_table(
        "E6: exhaustive exploration performance "
        "(paper: concurrent checking takes hours at full corpus scale)",
        ["test", "states", "finals", "transitions", "time", "rate"],
        rows,
    )
    assert total_transitions > 0


def test_e6_sequential_rate(model, benchmark):
    tests = generate_suite(model, per_instruction=2, seed=99)

    report = benchmark(lambda: run_suite(model, tests))

    print(
        f"\nE6: sequential mode: {report.total} single-instruction tests "
        f"(paper: full 6984-test run takes minutes)"
    )
    assert report.all_passed


def test_e6_state_count_scales_with_interleaving(model):
    """More racing threads => more states: the combinatorial challenge."""
    small = run_litmus(by_name("CoRR").parse(), model)
    medium = run_litmus(by_name("MP").parse(), model)
    large = run_litmus(by_name("SB+syncs").parse(), model)
    counts = [
        r.exploration.stats.states_visited for r in (small, medium, large)
    ]
    print(f"\nE6: state-count growth CoRR -> MP -> SB+syncs: {counts}")
    assert counts[0] < counts[1] < counts[2]
