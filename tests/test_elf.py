"""ELF front-end tests: writer/reader round trips and the loader pipeline."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.elf.format import (
    ElfError,
    ElfImage,
    PF_R,
    PF_W,
    PF_X,
    Segment,
    STT_FUNC,
    STT_OBJECT,
    Symbol,
)
from repro.elf.loader import load_image, load_into_machine
from repro.elf.reader import read_elf
from repro.elf.writer import make_executable, write_elf
from repro.isa.assembler import Assembler
from repro.isa.model import default_model
from repro.isa.sequential import SequentialMachine


def _simple_image(entry=0x10000):
    text = Segment(0x10000, struct.pack(">I", 0x60000000), 4, PF_R | PF_X)
    data = Segment(0x20000, b"\x00\x01\x02\x03", 8, PF_R | PF_W)
    symbols = [
        Symbol("main", 0x10000, 4, STT_FUNC),
        Symbol("x", 0x20000, 4, STT_OBJECT),
    ]
    return ElfImage(entry=entry, segments=[text, data], symbols=symbols)


class TestRoundTrip:
    def test_header_and_entry(self):
        blob = write_elf(_simple_image())
        image = read_elf(blob)
        assert image.entry == 0x10000

    def test_segments_preserved(self):
        image = read_elf(write_elf(_simple_image()))
        assert len(image.segments) == 2
        text = next(s for s in image.segments if s.executable)
        assert text.vaddr == 0x10000
        assert text.data == struct.pack(">I", 0x60000000)

    def test_bss_memsz_preserved(self):
        image = read_elf(write_elf(_simple_image()))
        data = next(s for s in image.segments if not s.executable)
        assert data.memsz == 8 and len(data.data) == 4

    def test_symbols_preserved(self):
        image = read_elf(write_elf(_simple_image()))
        assert image.symbol("main").is_function
        assert image.symbol("x").value == 0x20000
        assert image.symbol_at(0x20000) == "x"

    @settings(max_examples=30, deadline=None)
    @given(
        words=st.lists(
            st.integers(0, (1 << 32) - 1), min_size=1, max_size=16
        ),
        data=st.binary(min_size=0, max_size=64),
        entry_offset=st.integers(0, 3),
    )
    def test_property_roundtrip(self, words, data, entry_offset):
        blob = make_executable(
            text_addr=0x10000,
            code_words=words,
            data_addr=0x20000,
            data=data,
            symbols={"main": (0x10000, 4 * len(words), True)},
            entry=0x10000 + 4 * min(entry_offset, len(words) - 1),
        )
        image = read_elf(blob)
        text = next(s for s in image.segments if s.executable)
        assert [
            struct.unpack(">I", text.data[i : i + 4])[0]
            for i in range(0, len(text.data), 4)
        ] == words
        if data:
            loaded = next(s for s in image.segments if not s.executable)
            assert loaded.data == data


class TestValidation:
    def test_bad_magic_rejected(self):
        blob = bytearray(write_elf(_simple_image()))
        blob[0] = 0x00
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_wrong_endianness_rejected(self):
        blob = bytearray(write_elf(_simple_image()))
        blob[5] = 1  # ELFDATA2LSB
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_wrong_machine_rejected(self):
        blob = bytearray(write_elf(_simple_image()))
        blob[18:20] = struct.pack(">H", 62)  # x86-64
        with pytest.raises(ElfError):
            read_elf(bytes(blob))

    def test_truncated_rejected(self):
        with pytest.raises(ElfError):
            read_elf(b"\x7fELF")


class TestLoader:
    def test_loader_splits_code_and_data(self):
        loaded = load_image(read_elf(write_elf(_simple_image())))
        assert loaded.program_memory[0x10000] == 0x60000000
        assert loaded.data_bytes[0x20001] == 0x01
        assert loaded.data_bytes[0x20004] == 0  # .bss zero fill
        assert loaded.symbols["x"] == 0x20000

    def test_misaligned_text_rejected(self):
        image = _simple_image()
        image.segments[0] = Segment(0x10002, b"\x00\x00\x00\x00", 4, PF_X)
        with pytest.raises(ElfError):
            load_image(image)

    def test_end_to_end_sequential_run(self):
        """Assemble a small program, write it to ELF, read it back, run it.

        This mirrors the paper's section 7 flow where generated tests are
        standard ELF binaries exercising the ELF front-end.
        """
        model = default_model()
        assembler = Assembler(model)
        data_addr = 0x20000
        program = [
            "lis r3,3",           # r3 = 0x30000
            "addi r3,r3,-0x8000", # adjust for lis sign games: r3 = 0x28000
            "li r4,7",
            "li r5,5",
            "add r6,r4,r5",
            "stw r6,0(r3)",
            "lwz r7,0(r3)",
        ]
        words, _ = assembler.assemble_program(program, 0x10000)
        blob = make_executable(
            text_addr=0x10000,
            code_words=words,
            data_addr=data_addr,
            data=bytes(16),
            symbols={
                "main": (0x10000, 4 * len(words), True),
                "cell": (data_addr, 4, False),
            },
        )
        loaded = load_image(read_elf(blob))
        machine = SequentialMachine(model)
        load_into_machine(machine, loaded)
        machine.run(loaded.entry)
        assert machine.gpr(7).to_int() == 12
        assert machine.gpr(6).to_int() == 12
