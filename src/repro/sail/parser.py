"""Recursive-descent parser for the Sail instruction description language.

The parser is parameterised by a register registry (``repro.isa.registers``)
so that it can distinguish register references (``GPR[RA]``, ``CR[32..35]``,
``XER.SO``) from local variables, and fold register bit-ranges into the
``RegSpec`` so the model sees precise, bit-granular register footprints
(section 2.1.4 of the paper).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .ast import (
    Assign,
    BarrierStmt,
    Binop,
    Block,
    Call,
    Decl,
    Expr,
    Foreach,
    FunctionClause,
    If,
    IfExpr,
    IndexExpr,
    IntLit,
    LValue,
    Lit,
    MemLHS,
    MemRead,
    Nop,
    RegLHS,
    RegRead,
    RegSpec,
    SailSyntaxError,
    SliceExpr,
    Stmt,
    StoreConditional,
    Type,
    Unop,
    Var,
    VarLHS,
    VarSliceLHS,
    bits_type,
    BOOL,
    INT,
)
from .lexer import Token, tokenize
from .values import Bits

BARRIER_STATEMENTS = {
    "BARRIER_SYNC": "sync",
    "BARRIER_LWSYNC": "lwsync",
    "BARRIER_EIEIO": "eieio",
    "BARRIER_ISYNC": "isync",
}

# Binary operator precedence levels, loosest first.
_BINOP_LEVELS: Sequence[Sequence[str]] = (
    ("|",),
    ("^",),
    ("&",),
    ("==", "!=", "<", ">", "<=", ">=", "<u", ">u", "<=u", ">=u"),
    (":",),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class RegistryView:
    """The slice of register-registry knowledge the parser needs."""

    def __init__(self, reg_names, reg_files, reg_fields):
        self.reg_names = frozenset(reg_names)
        self.reg_files = frozenset(reg_files)
        self.reg_fields = dict(reg_fields)  # (reg, field) -> (lo, hi)


class Parser:
    def __init__(self, tokens: List[Token], registry: RegistryView):
        self._tokens = tokens
        self._pos = 0
        self._registry = registry

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            wanted = text or kind
            raise SailSyntaxError(
                f"expected {wanted!r} but found {actual.text!r} "
                f"at line {actual.line}, column {actual.col}"
            )
        return token

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_function_clause(self) -> FunctionClause:
        self._expect("keyword", "function")
        self._expect("keyword", "clause")
        func_token = self._peek()
        if func_token.kind == "keyword" and func_token.text == "execute":
            self._next()
            func = "execute"
        else:
            func = self._expect("ident").text
        self._expect("op", "(")
        ast_name = self._expect("ident").text
        fields: Tuple[str, ...] = ()
        if self._accept("op", "("):
            names = [self._expect("ident").text]
            while self._accept("op", ","):
                names.append(self._expect("ident").text)
            self._expect("op", ")")
            fields = tuple(names)
        self._expect("op", ")")
        self._expect("op", "=")
        body = self.parse_statement()
        self._expect("eof")
        return FunctionClause(func, ast_name, fields, body)

    def parse_block_source(self) -> Stmt:
        """Parse a bare statement (used for standalone pseudocode bodies)."""
        stmt = self.parse_statement()
        self._accept("op", ";")
        self._expect("eof")
        return stmt

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> Stmt:
        token = self._peek()
        if token.kind == "op" and token.text == "{":
            return self._parse_block()
        if token.kind == "keyword" and token.text == "if":
            return self._parse_if_statement()
        if token.kind == "keyword" and token.text == "foreach":
            return self._parse_foreach()
        if token.kind == "op" and token.text == "(":
            return self._parse_declaration()
        if token.kind == "ident":
            return self._parse_assignment_or_call()
        raise SailSyntaxError(
            f"cannot start a statement with {token.text!r} "
            f"at line {token.line}, column {token.col}"
        )

    def _parse_block(self) -> Stmt:
        self._expect("op", "{")
        body: List[Stmt] = []
        while not self._accept("op", "}"):
            body.append(self.parse_statement())
            if not self._accept("op", ";"):
                self._expect("op", "}")
                break
        return Block(tuple(body))

    def _parse_if_statement(self) -> Stmt:
        self._expect("keyword", "if")
        cond = self.parse_expression()
        self._expect("keyword", "then")
        then = self.parse_statement()
        orelse: Optional[Stmt] = None
        if self._accept("keyword", "else"):
            orelse = self.parse_statement()
        return If(cond, then, orelse)

    def _parse_foreach(self) -> Stmt:
        self._expect("keyword", "foreach")
        self._expect("op", "(")
        var = self._expect("ident").text
        self._expect("keyword", "from")
        start = self.parse_expression()
        downto = False
        if self._accept("keyword", "downto"):
            downto = True
        else:
            self._expect("keyword", "to")
        stop = self.parse_expression()
        self._expect("op", ")")
        body = self.parse_statement()
        return Foreach(var, start, stop, downto, body)

    def _parse_declaration(self) -> Stmt:
        self._expect("op", "(")
        typ = self._parse_type()
        self._expect("op", ")")
        name = self._expect("ident").text
        self._expect("op", ":=")
        init = self.parse_expression()
        return Decl(name, typ, init)

    def _parse_type(self) -> Type:
        if self._accept("keyword", "int"):
            return INT
        if self._accept("keyword", "bool"):
            return BOOL
        self._expect("keyword", "bit")
        if self._accept("op", "["):
            width_token = self._expect("int")
            self._expect("op", "]")
            return bits_type(int(width_token.value))
        return bits_type(1)

    def _parse_assignment_or_call(self) -> Stmt:
        name_token = self._expect("ident")
        name = name_token.text
        if name in BARRIER_STATEMENTS:
            self._expect("op", "(")
            self._expect("op", ")")
            return BarrierStmt(BARRIER_STATEMENTS[name])
        if name == "NOP":
            self._expect("op", "(")
            self._expect("op", ")")
            return Nop()
        if name == "MEMw":
            self._expect("op", "(")
            addr = self.parse_expression()
            self._expect("op", ",")
            size = self.parse_expression()
            self._expect("op", ")")
            self._expect("op", ":=")
            value = self.parse_expression()
            return Assign(MemLHS(addr, size), value)
        lhs = self._parse_lvalue_tail(name_token)
        self._expect("op", ":=")
        value = self.parse_expression()
        return Assign(lhs, value)

    def _parse_lvalue_tail(self, name_token: Token) -> LValue:
        name = name_token.text
        registry = self._registry
        if name in registry.reg_names:
            return RegLHS(self._parse_regspec_tail(name))
        if self._accept("op", "["):
            lo = self.parse_expression()
            if self._accept("op", ".."):
                hi = self.parse_expression()
                self._expect("op", "]")
                return VarSliceLHS(name, lo, hi)
            self._expect("op", "]")
            return VarSliceLHS(name, lo, lo)
        return VarLHS(name)

    def _parse_regspec_tail(self, name: str) -> RegSpec:
        registry = self._registry
        index: Optional[Expr] = None
        lo: Optional[Expr] = None
        hi: Optional[Expr] = None
        if name in registry.reg_files:
            self._expect("op", "[")
            index = self.parse_expression()
            self._expect("op", "]")
        elif self._accept("op", "["):
            lo = self.parse_expression()
            if self._accept("op", ".."):
                hi = self.parse_expression()
            else:
                hi = lo
            self._expect("op", "]")
        elif self._accept("op", "."):
            field = self._expect("ident").text
            try:
                lo_bit, hi_bit = registry.reg_fields[(name, field)]
            except KeyError:
                raise SailSyntaxError(f"unknown register field {name}.{field}")
            lo, hi = IntLit(lo_bit), IntLit(hi_bit)
        return RegSpec(name, index, lo, hi)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> Expr:
        if self._peek().kind == "keyword" and self._peek().text == "if":
            self._next()
            cond = self.parse_expression()
            self._expect("keyword", "then")
            then = self.parse_expression()
            self._expect("keyword", "else")
            orelse = self.parse_expression()
            return IfExpr(cond, then, orelse)
        return self._parse_binop(0)

    def _parse_binop(self, level: int) -> Expr:
        if level >= len(_BINOP_LEVELS):
            return self._parse_unary()
        ops = _BINOP_LEVELS[level]
        left = self._parse_binop(level + 1)
        while True:
            token = self._peek()
            if token.kind == "op" and token.text in ops:
                # A ':' immediately followed by '=' is never concat.
                self._next()
                right = self._parse_binop(level + 1)
                left = Binop(token.text, left, right)
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept("op", "~"):
            return Unop("~", self._parse_unary())
        if self._accept("op", "-"):
            return Unop("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.text == "[":
                self._next()
                lo = self.parse_expression()
                if self._accept("op", ".."):
                    hi = self.parse_expression()
                    self._expect("op", "]")
                    expr = SliceExpr(expr, lo, hi)
                else:
                    self._expect("op", "]")
                    expr = IndexExpr(expr, lo)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.kind == "bits":
            self._next()
            return Lit(Bits.from_string(token.value))
        if token.kind == "int":
            self._next()
            return IntLit(int(token.value))
        if token.kind == "op" and token.text == "(":
            self._next()
            expr = self.parse_expression()
            self._expect("op", ")")
            return expr
        if token.kind == "keyword" and token.text == "if":
            return self.parse_expression()
        if token.kind == "ident":
            return self._parse_ident_expression()
        raise SailSyntaxError(
            f"unexpected token {token.text!r} in expression "
            f"at line {token.line}, column {token.col}"
        )

    def _parse_ident_expression(self) -> Expr:
        name = self._expect("ident").text
        registry = self._registry
        if name == "MEMr" or name == "MEMr_reserve":
            self._expect("op", "(")
            addr = self.parse_expression()
            self._expect("op", ",")
            size = self.parse_expression()
            self._expect("op", ")")
            kind = "reserve" if name == "MEMr_reserve" else "plain"
            return MemRead(kind, addr, size)
        if name == "STORE_CONDITIONAL":
            self._expect("op", "(")
            addr = self.parse_expression()
            self._expect("op", ",")
            size = self.parse_expression()
            self._expect("op", ",")
            value = self.parse_expression()
            self._expect("op", ")")
            return StoreConditional(addr, size, value)
        if name in registry.reg_names:
            spec = self._parse_regspec_tail(name)
            return RegRead(spec)
        if self._peek().kind == "op" and self._peek().text == "(":
            self._next()
            args: List[Expr] = []
            if not (self._peek().kind == "op" and self._peek().text == ")"):
                args.append(self.parse_expression())
                while self._accept("op", ","):
                    args.append(self.parse_expression())
            self._expect("op", ")")
            return Call(name, tuple(args))
        return Var(name)


def parse_execute_clause(source: str, registry: RegistryView) -> FunctionClause:
    """Parse a ``function clause execute (...) = body`` definition."""
    return Parser(tokenize(source), registry).parse_function_clause()


def parse_statement(source: str, registry: RegistryView) -> Stmt:
    """Parse a bare pseudocode statement (for tests and small fragments)."""
    return Parser(tokenize(source), registry).parse_block_source()
