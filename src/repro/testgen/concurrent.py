"""Envelope-oracle harness for generated concurrent tests (section 7).

The diy-generated suite comes with *a priori* architectural expectations:
a critical cycle is forbidden exactly when every thread segment of the
cycle maintains its endpoints in order, and allowed as soon as one
segment is a genuine relaxation.  A segment's guarantee is the
*composition* of the guarantees along it, not an edge-by-edge property:
a ``sync`` orders every access po-before it against every access
po-after it, so ``SyncdWW;PodWW`` is still maintained end to end, and an
unresolved address or branch keeps every po-later store from committing,
which is exactly the paper's section 2.1.6 LB+addrs+WW / LB+datas+WW
split.  ``_run_maintained`` encodes the per-thread ordering rules
(validated empirically against the model and the published tables):

* ``sync`` orders all access pairs across it; ``lwsync`` all but
  store-load; ``eieio`` store-store only.
* Address dependencies order the read before the dependent access; data
  dependencies order the read before the dependent store; control
  dependencies order the read before a dependent *store* but not a
  dependent load (branches are speculated); control+isync orders the
  read before everything po-later (the refetch discards speculation).
* Any address or control dependency additionally blocks every po-later
  store from committing (the store might conflict / must not commit
  speculatively), so plain po *to a store* after such a dependency is
  maintained by composition.

Cycle-level expectations:

* every segment maintained by ``sync`` alone -- Forbidden for any thread
  count (sync is A- and B-cumulative);
* two threads, every segment maintained -- Forbidden (no multi-copy
  visibility to lose);
* some segment not maintained -- Allowed (a critical cycle with one
  relaxed step is observable);
* otherwise -- the closure abstains (``closure_expectation`` returns
  ``None``) and ``expectation`` falls back to the axiomatic
  commit/propagation-order solver (``testgen.axiomatic``), which
  decides the remaining classes: write-started lwsync/eieio segments
  into ``Wse`` (the R+lwsync+sync family) and cumulativity-sensitive
  3+-thread cycles (WRC+addrs vs WRC+lwsync+addr).

``check_suite`` runs a generated suite through the exhaustive explorer
(via the parallel corpus runner) and reports every test whose verdict
contradicts its expectation; each check records which oracle tier
decided it (``OracleCheck.oracle``), and state-budget exhaustion is
reported as a skip, not a violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..concurrency.params import DEFAULT_PARAMS, ModelParams
from ..litmus.diy import Edge, GeneratedTest

#: Dependency edges whose unresolved input blocks every po-later store.
_BLOCKING_DEPS = frozenset(
    {"DpAddrdR", "DpAddrdW", "DpCtrldR", "DpCtrldW", "DpCtrlIsyncdR"}
)


def thread_runs(
    edges: Sequence[Edge],
) -> List[Tuple[List[str], List[Edge], Edge]]:
    """Split a cycle into per-thread segments.

    Each segment is ``(directions, internal_edges, out_edge)``: the
    directions of its events (length k+1), the k internal edges between
    them, and the external edge leaving the segment.  The cycle must be
    rotated so its last edge is external (as ``diy._build_rotation``
    guarantees); segments then start at every external-edge target.
    """
    runs: List[Tuple[List[str], List[Edge], Edge]] = []
    directions: List[str] = []
    internals: List[Edge] = []
    for edge in edges:
        directions.append(edge.src)
        if edge.external:
            runs.append((directions, internals, edge))
            directions, internals = [], []
        else:
            internals.append(edge)
    if directions:
        raise ValueError("cycle must be rotated to end on an external edge")
    return runs


#: Internal bases whose ordering survives feeding a coherence (Wse) edge
#: in a cycle that contains reads: full sync, and dependencies (a
#: dependent store's coherence point waits for the read to bind).
#: lwsync and eieio order only the writes' *coherence points*, which a
#: read elsewhere in the cycle cannot observe (R+lwsync+sync is allowed).
_COHERENCE_SAFE_BASES = frozenset(
    {"Syncd", "DpAddrd", "DpDatad", "DpCtrld", "DpCtrlIsyncd"}
)


def _ordered_pairs(
    directions: Sequence[str],
    internals: Sequence[Edge],
    bases: Optional[frozenset] = None,
) -> Set[Tuple[int, int]]:
    """All event pairs (i, j) the architecture orders within one segment.

    ``bases`` restricts which edge bases may contribute ordering (used
    for the sync-only and coherence-safe closures).
    """
    count = len(directions)
    ordered: Set[Tuple[int, int]] = set()
    for gap, edge in enumerate(internals):
        if bases is not None and edge.base not in bases:
            continue
        before = range(gap + 1)
        after = range(gap + 1, count)
        if edge.base == "Syncd":
            ordered.update((i, j) for i in before for j in after)
        elif edge.base == "LwSyncd":
            ordered.update(
                (i, j)
                for i in before
                for j in after
                if not (directions[i] == "W" and directions[j] == "R")
            )
        elif edge.base == "Eieiod":
            ordered.update(
                (i, j)
                for i in before
                for j in after
                if directions[i] == "W" and directions[j] == "W"
            )
        elif edge.base in ("DpAddrd", "DpDatad"):
            ordered.add((gap, gap + 1))
        elif edge.base == "DpCtrld":
            if edge.tgt == "W":
                ordered.add((gap, gap + 1))
        elif edge.base == "DpCtrlIsyncd":
            # The isync refetch after the dependent branch orders the
            # read before everything po-later.
            ordered.update((gap, j) for j in after)
        if edge.name in _BLOCKING_DEPS:
            if edge.name == "DpAddrdW":
                # A store with an undetermined address blocks po-later
                # stores from committing *and* po-later loads from being
                # satisfied (they might have to forward from it).
                ordered.update((gap, j) for j in after)
            else:
                ordered.update(
                    (gap, j) for j in after if directions[j] == "W"
                )
    return ordered


def _transitively_reachable(
    pairs: Set[Tuple[int, int]], start: int, end: int
) -> bool:
    frontier = [start]
    seen = {start}
    while frontier:
        node = frontier.pop()
        if node == end:
            return True
        for i, j in pairs:
            if i == node and j not in seen:
                seen.add(j)
                frontier.append(j)
    return end in seen


def run_maintained(
    directions: Sequence[str],
    internals: Sequence[Edge],
    bases: Optional[frozenset] = None,
) -> bool:
    """Is the segment's first event ordered before its last?

    ``bases`` restricts which edge bases contribute (``{"Syncd"}`` gives
    the criterion for the cumulativity-proof all-sync rule).
    """
    if len(directions) <= 1:
        return True
    pairs = _ordered_pairs(directions, internals, bases=bases)
    return _transitively_reachable(pairs, 0, len(directions) - 1)


def _run_status(
    directions: Sequence[str],
    internals: Sequence[Edge],
    out_edge: Edge,
    all_wse: bool,
) -> str:
    """One segment's verdict: "maintained", "relaxed" or "weak".

    When every communication edge of the cycle is ``Wse`` (``all_wse``)
    the cycle lives entirely in the storage subsystem's commit order,
    where lwsync/eieio coherence-point ordering is exactly what is
    needed (2+2W+lwsyncs and 2+2W+eieios are forbidden), so the plain
    closure decides.  In a cycle that observes through reads, a segment
    feeding a ``Wse`` edge must deliver more than coherence-point order:

    * sync, dependencies and commit-blocking still do (R+syncs and
      S+sync+addr are forbidden);
    * a segment *starting with a read* is anchored at that read's
      satisfaction -- the thread has seen the incoming write chain, and
      its final store must commit coherence-after everything it saw
      (S+lwsyncs is forbidden);
    * a write-started segment held together only by lwsync/eieio is
      genuinely ambiguous -- R+lwsync+sync and R+eieio+sync are allowed
      (coherence-point order does not make a read elsewhere observe the
      first write) but all-Wse contexts still forbid -- so it is "weak"
      and the cycle gets no expectation.
    """
    full = run_maintained(directions, internals)
    if all_wse or out_edge.base != "Wse":
        return "maintained" if full else "relaxed"
    if run_maintained(directions, internals, bases=_COHERENCE_SAFE_BASES):
        return "maintained"
    if not full:
        return "relaxed"
    if directions[0] == "R":
        return "maintained"
    return "weak"


def closure_expectation(edges: Sequence[Edge]) -> Optional[str]:
    """The composition-closure invariant, or ``None`` if it cannot decide.

    This is the fast per-segment analysis; ``expectation`` falls back to
    the axiomatic solver (``testgen.axiomatic``) for the ``None`` cases.
    """
    runs = thread_runs(edges)
    all_wse = all(out.base == "Wse" for _dirs, _internals, out in runs)
    statuses = [
        _run_status(directions, internals, out, all_wse)
        for directions, internals, out in runs
    ]
    if any(status == "relaxed" for status in statuses):
        return "Allowed"
    if any(status == "weak" for status in statuses):
        return None
    if all(
        run_maintained(directions, internals, bases=frozenset({"Syncd"}))
        for directions, internals, _out in runs
    ):
        return "Forbidden"
    if len(runs) == 2:
        return "Forbidden"
    return None  # cumulativity-sensitive: not asserted here


def expectation(
    edges: Sequence[Edge], axiomatic: bool = True
) -> Optional[str]:
    """The envelope invariant for one cycle.

    The composition closure decides first (it is cheap and validated
    family by family); the cases it leaves open -- write-started
    lwsync/eieio segments into ``Wse`` and cumulativity-sensitive
    3+-thread cycles -- fall back to the axiomatic commit/propagation
    solver, which decides every well-formed cycle.  ``axiomatic=False``
    restores the closure-only behaviour (and its ``None`` verdicts).
    """
    if not axiomatic:
        return closure_expectation(edges)
    return expectation_with_oracle(edges)[0]


def expectation_with_oracle(
    edges: Sequence[Edge],
) -> Tuple[Optional[str], Optional[str]]:
    """Like ``expectation`` but names the deciding oracle.

    Returns ``(verdict, "closure" | "axiomatic")``.
    """
    verdict = closure_expectation(edges)
    if verdict is not None:
        return verdict, "closure"
    from .axiomatic import decide

    return decide(edges).status, "axiomatic"


@dataclass
class OracleCheck:
    """One generated test's verdict against its envelope expectation."""

    name: str
    family: str
    edge_names: Sequence[str]
    expected: Optional[str]  # None: no invariant asserted
    status: str  # model verdict, or "StateLimit"
    ok: Optional[bool]  # None when skipped/unasserted
    error: Optional[str] = None
    oracle: Optional[str] = None  # "closure" | "axiomatic"


@dataclass
class OracleReport:
    """Suite-level outcome of an oracle-invariant run."""

    checks: List[OracleCheck]
    jobs: int
    wall_seconds: float
    stats: "object" = None  # merged ExplorationStats

    @property
    def violations(self) -> List[OracleCheck]:
        return [check for check in self.checks if check.ok is False]

    @property
    def checked(self) -> int:
        return sum(1 for check in self.checks if check.ok is not None)

    @property
    def skipped(self) -> int:
        return sum(
            1
            for check in self.checks
            if check.ok is None and check.status == "StateLimit"
        )

    @property
    def unasserted(self) -> int:
        return sum(
            1
            for check in self.checks
            if check.ok is None and check.status != "StateLimit"
        )

    @property
    def solver_decided(self) -> int:
        """Checks whose expectation came from the axiomatic solver."""
        return sum(1 for check in self.checks if check.oracle == "axiomatic")

    @property
    def sound(self) -> bool:
        return not self.violations


def check_suite(
    tests: Sequence[GeneratedTest],
    jobs: Optional[int] = None,
    params: ModelParams = DEFAULT_PARAMS,
    max_states: Optional[int] = 150_000,
    strategy=None,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
    engine=None,
) -> OracleReport:
    """Run a generated suite and check every envelope invariant.

    The suite runs as one batch through the service engine
    (``repro.service.EnvelopeEngine.run_batch``): tests are sharded
    across a ``jobs`` worker budget, and -- when ``engine`` carries a
    ``VerdictCache`` -- previously-decided tests are answered from the
    cache instead of re-explored.  ``strategy`` picks each test's search
    backend (``BoundedIterative`` turns combinatorial blowups into
    partial-outcome "StateLimit" skips with real work accounting);
    ``max_states`` bounds each test's exploration (blowups become skips,
    not failures).  ``reduction="sleep"`` prunes commuting interleavings
    while preserving every verdict; ``context_bound`` trades
    completeness for speed (truncated tests degrade to "StateLimit"
    skips like budget exhaustion does).  ``reduction="dpor"`` layers
    source sets and canonical state keys on top of sleep sets;
    ``symmetry=True`` additionally folds permutation-equivalent threads.
    """
    from ..service.engine import EngineRequest, EnvelopeEngine

    if engine is None:
        engine = EnvelopeEngine(params=params)
    requests = [
        EngineRequest(
            source=test.source,
            name=test.name,
            strategy=strategy,
            reduction=reduction,
            context_bound=context_bound,
            symmetry=symmetry,
            max_states=max_states,
        )
        for test in tests
    ]
    batch = engine.run_batch(requests, jobs=jobs)
    checks: List[OracleCheck] = []
    for test, verdict in zip(tests, batch.verdicts):
        expected, oracle = expectation_with_oracle(test.edges)
        if verdict.status == "StateLimit" or expected is None:
            ok: Optional[bool] = None
        else:
            ok = verdict.status == expected
        checks.append(
            OracleCheck(
                name=test.name,
                family=test.family,
                edge_names=test.edge_names,
                expected=expected,
                status=verdict.status,
                ok=ok,
                error=verdict.error,
                oracle=oracle,
            )
        )
    return OracleReport(
        checks=checks,
        jobs=batch.jobs,
        wall_seconds=batch.wall_seconds,
        stats=batch.merged_stats(),
    )
