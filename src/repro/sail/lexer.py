"""Tokeniser for Sail source text.

The concrete syntax follows the POWER pseudocode conventions used in the
paper's Fig. 2: ``:=`` assignment, ``..`` bit ranges, ``:`` concatenation,
``0b``/``0x`` sized literals, and C-like operators.  Comments run from ``#``
to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .ast import SailSyntaxError

KEYWORDS = {
    "if",
    "then",
    "else",
    "foreach",
    "from",
    "to",
    "downto",
    "function",
    "clause",
    "execute",
    "int",
    "bool",
    "bit",
}

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    ":=",
    "..",
    "==",
    "!=",
    "<=u",
    ">=u",
    "<u",
    ">u",
    "<=",
    ">=",
    "<<",
    ">>",
    "&",
    "|",
    "^",
    "~",
    "<",
    ">",
    "+",
    "-",
    "*",
    "%",
    "/",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "=",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "keyword" | "int" | "bits" | "op" | "eof"
    text: str
    value: object = None
    line: int = 0
    col: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind},{self.text!r}@{self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Convert Sail source into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col
        if ch.isdigit():
            token, length = _lex_number(source, i, start_line, start_col)
            tokens.append(token)
            i += length
            col += length
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, start_line, start_col))
            col += j - i
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, None, start_line, start_col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if not matched:
            raise SailSyntaxError(
                f"unexpected character {ch!r} at line {line}, column {col}"
            )
    tokens.append(Token("eof", "", None, line, col))
    return tokens


def _lex_number(source: str, i: int, line: int, col: int):
    n = len(source)
    if source.startswith("0b", i) or source.startswith("0B", i):
        j = i + 2
        while j < n and source[j] in "01uUxX_":
            j += 1
        digits = source[i + 2 : j].replace("_", "")
        if not digits:
            raise SailSyntaxError(f"empty binary literal at line {line}")
        return Token("bits", source[i:j], digits, line, col), j - i
    if source.startswith("0x", i) or source.startswith("0X", i):
        j = i + 2
        while j < n and (source[j] in "0123456789abcdefABCDEF_"):
            j += 1
        digits = source[i + 2 : j].replace("_", "")
        if not digits:
            raise SailSyntaxError(f"empty hex literal at line {line}")
        bits = "".join(f"{int(d, 16):04b}" for d in digits)
        return Token("bits", source[i:j], bits, line, col), j - i
    j = i
    while j < n and source[j].isdigit():
        j += 1
    return Token("int", source[i:j], int(source[i:j]), line, col), j - i
