"""The interface between the ISA semantics and the concurrency model.

This mirrors the Lem ``outcome`` type of section 2.2 of the paper:

    type outcome =
      | Read_mem of address*size*(memval -> instruction_state)
      | Write_mem of address*size*memval*instruction_state
      | Barrier of barrier_kind*instruction_state
      | Read_reg of reg_slice*(regval -> instruction_state)
      | Write_reg of reg_slice*regval*instruction_state
      | Internal of instruction_state
      | Done

Continuations are represented as interpreter states with a hole: resuming is
``interp.resume(outcome.state, value)``.  This keeps outcomes picklable,
hashable and snapshot-friendly, which the exhaustive explorer relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .values import Bits


@dataclass(frozen=True, order=True)
class RegSlice:
    """A bit-range of an architected register, in its own POWER numbering.

    ``reg`` is a concrete register instance name (``GPR5``, ``CR``, ``XER``,
    ``LR``, ``CTR``, ``CIA``, ``NIA``).  ``lo``/``hi`` are inclusive bit
    indices; for a 64-bit register these span 0..63, while CR spans 32..63
    (the POWER numbering used by the vendor documentation).
    """

    reg: str
    lo: int
    hi: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def overlaps(self, other: "RegSlice") -> bool:
        return (
            self.reg == other.reg
            and self.lo <= other.hi
            and other.lo <= self.hi
        )

    def contains(self, other: "RegSlice") -> bool:
        return (
            self.reg == other.reg
            and self.lo <= other.lo
            and other.hi <= self.hi
        )

    def intersection(self, other: "RegSlice") -> Optional["RegSlice"]:
        if not self.overlaps(other):
            return None
        return RegSlice(self.reg, max(self.lo, other.lo), min(self.hi, other.hi))

    def __str__(self) -> str:
        if self.lo == self.hi:
            return f"{self.reg}[{self.lo}]"
        return f"{self.reg}[{self.lo}..{self.hi}]"


class Outcome:
    """Base class of the outcome union."""

    __slots__ = ()


@dataclass(frozen=True)
class ReadMem(Outcome):
    """A pending memory read; resume with the ``Bits`` value read.

    ``addr`` is lifted: the concrete model requires it fully known, while the
    exhaustive footprint analysis may see ``unknown`` address bits (meaning
    the footprint is not yet determined).  ``kind`` is ``plain`` or
    ``reserve`` (load-reserve, e.g. ``lwarx``).
    """

    kind: str
    addr: Bits
    size: int
    state: object


@dataclass(frozen=True)
class WriteMem(Outcome):
    """A memory write.  ``kind`` is ``plain`` or ``conditional``.

    Plain writes resume with ``None``; conditional writes (store-conditional,
    e.g. ``stwcx.``) resume with a ``bit[1]`` success flag supplied by the
    concurrency model.
    """

    kind: str
    addr: Bits
    size: int
    value: Bits
    state: object


@dataclass(frozen=True)
class Barrier(Outcome):
    """A memory-barrier event (sync / lwsync / eieio / isync); resume with None."""

    kind: str
    state: object


@dataclass(frozen=True)
class ReadReg(Outcome):
    """A pending register read; resume with the ``Bits`` for the slice."""

    slice: RegSlice
    state: object


@dataclass(frozen=True)
class WriteReg(Outcome):
    """A register write; resume with ``None``."""

    slice: RegSlice
    value: Bits
    state: object


@dataclass(frozen=True)
class Internal(Outcome):
    """One internal computation step; ``state`` is the next state."""

    state: object


@dataclass(frozen=True)
class Done(Outcome):
    """The instruction's pseudocode has completed."""


MEM_READ_PLAIN = "plain"
MEM_READ_RESERVE = "reserve"
MEM_WRITE_PLAIN = "plain"
MEM_WRITE_CONDITIONAL = "conditional"

BARRIER_KINDS: Tuple[str, ...] = ("sync", "lwsync", "eieio", "isync")
