#!/usr/bin/env python
"""E6 benchmark harness: run the exploration suite, record a trajectory.

Runs the representative E6 litmus family through the exhaustive oracle and
appends one entry (per-test and total transitions/s, states/s, wall time)
to a ``BENCH_e6.json`` trajectory file, so future performance PRs have a
baseline to compare against on the same machine.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--output PATH] [--label L]
        [--suite e6|gen|gen-wide|service]
        [--strategy sequential|sharded|bounded]
        [--intra-jobs N] [--shard-depth D]
        [--reduction none|sleep|dpor] [--symmetry] [--context-bound N]
        [--sail-backend compiled|interp]

``--suite gen`` runs the diy-generated two-thread suite instead of the
curated E6 family, appending a generated-suite throughput entry to the
same trajectory (marked ``"suite": "gen"``).

``--strategy`` picks the search backend per test (entries record it
under ``"strategy"``): ``sharded --intra-jobs N`` forks each test's own
frontier across N workers, so multi-core boxes can finally speed up a
*single* large exploration; on the 1-CPU reference container it measures
the sharding overhead instead.  Sharded counters include cross-shard
duplicate work, so compare its ``seconds``/wall numbers, not its
transition counts, against sequential entries.

``SEED_BASELINE`` holds the seed implementation's numbers measured by the
same protocol (one warm process, stats from inside ``explore``) on the
reference container; the E6 pytest benchmark prints a before/after table
against it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

REPRESENTATIVE = ["MP", "MP+syncs", "SB+syncs", "R", "WRC+sync+addr"]

#: Seed (pre-optimisation) E6 numbers on the reference container:
#: per-test (states, finals, transitions, seconds) plus totals.
SEED_BASELINE = {
    "label": "seed",
    "per_test": {
        "MP": {"states": 316, "finals": 26, "transitions": 752, "seconds": 0.086},
        "MP+syncs": {"states": 312, "finals": 26, "transitions": 577, "seconds": 0.074},
        "SB+syncs": {"states": 1125, "finals": 32, "transitions": 2542, "seconds": 0.332},
        "R": {"states": 1390, "finals": 106, "transitions": 3284, "seconds": 0.377},
        "WRC+sync+addr": {"states": 2152, "finals": 218, "transitions": 5696, "seconds": 0.959},
    },
    "total": {
        "states": 5295,
        "transitions": 12851,
        "seconds": 1.829,
        "transitions_per_second": 7025,
    },
}

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "BENCH_e6.json")


#: Generated-suite benchmark: two-thread tests from the diy generator,
#: a standing throughput workload for the cycle-based test pipeline.
GEN_SEED = 0
GEN_SIZE = 12

#: Wide generated-suite benchmark: the lifted generator caps (up to 6
#: threads / 4-edge runs), a standing workload for the larger families
#: the axiomatic-solver-backed oracle now decides.  Exploration is
#: state-bounded: blowups record their partial work, not a crash.
GEN_WIDE_SEED = 0
GEN_WIDE_SIZE = 10
GEN_WIDE_MAX_THREADS = 6
GEN_WIDE_MAX_RUN = 4
GEN_WIDE_MAX_STATES = 150_000


def _suite_tests(suite):
    """The (name, LitmusTest) pairs of the chosen benchmark suite."""
    from repro.litmus.library import by_name

    if suite == "e6":
        return [(name, by_name(name).parse()) for name in REPRESENTATIVE]
    from repro.litmus.diy import generate

    if suite == "gen-wide":
        return [
            (test.name, test.test)
            for test in generate(
                GEN_WIDE_SEED,
                GEN_WIDE_SIZE,
                max_threads=GEN_WIDE_MAX_THREADS,
                max_run=GEN_WIDE_MAX_RUN,
            )
        ]
    return [
        (test.name, test.test)
        for test in generate(GEN_SEED, GEN_SIZE, max_threads=2)
    ]


def run_service_suite(sail_backend=None):
    """Cold-vs-warm latency of the service engine on the E6 family.

    Cold: a fresh exploration through ``EnvelopeEngine.run_request``
    (empty cache).  Warm: the identical request again -- a verdict-cache
    hit.  Records per-test latencies, the speedup, and the hit rate;
    asserts the warm verdict is bit-identical to the cold one before
    recording anything.
    """
    import time as _time

    from repro.litmus.library import by_name
    from repro.service import EngineRequest, EnvelopeEngine, VerdictCache

    cache = VerdictCache()
    engine = EnvelopeEngine(cache=cache, sail_backend=sail_backend)
    per_test = {}
    total_cold = total_warm = 0.0
    for name in REPRESENTATIVE:
        request = EngineRequest(source=by_name(name).source, name=name)
        started = _time.perf_counter()
        cold = engine.run_request(request)
        cold_seconds = _time.perf_counter() - started
        started = _time.perf_counter()
        warm = engine.run_request(request)
        warm_seconds = _time.perf_counter() - started
        if not warm.cached or warm.to_payload() != cold.to_payload():
            raise AssertionError(
                f"{name}: warm verdict not a bit-identical cache hit"
            )
        per_test[name] = {
            "status": cold.status,
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(cold_seconds / warm_seconds, 1)
            if warm_seconds
            else None,
        }
        total_cold += cold_seconds
        total_warm += warm_seconds
    stats = cache.stats()
    total = {
        "cold_seconds": round(total_cold, 6),
        "warm_seconds": round(total_warm, 6),
        "speedup": round(total_cold / total_warm, 1) if total_warm else None,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "cache_hit_rate": round(
            stats["hits"] / (stats["hits"] + stats["misses"]), 3
        )
        if stats["hits"] + stats["misses"]
        else 0.0,
    }
    return per_test, total


def run_suite(model=None, suite="e6", strategy=None, reduction="none"):
    """Run one benchmark suite; returns (per_test, total) dicts.

    ``reduction`` is recorded verbatim in every per-test entry (even
    ``"none"``) so trajectory consumers can compare reduced and
    unreduced entries without consulting the strategy record; the
    per-test ``unique_states`` counter is the coverage that pairs with
    it (canonical-key states under ``dpor``, raw keys otherwise).
    """
    from repro.concurrency.search import ExplorationLimit
    from repro.isa.model import default_model
    from repro.litmus.runner import run_litmus

    model = model if model is not None else default_model()
    max_states = GEN_WIDE_MAX_STATES if suite == "gen-wide" else None
    per_test = {}
    total_states = total_unique = total_transitions = 0
    total_seconds = 0.0
    for name, test in _suite_tests(suite):
        limited = False
        try:
            result = run_litmus(
                test, model, max_states=max_states, strategy=strategy
            )
            stats = result.exploration.stats
        except ExplorationLimit as exc:
            # Budget exhaustion still did (and accounts) real work.
            from repro.concurrency.search import ExplorationStats

            stats = exc.stats if exc.stats is not None else ExplorationStats()
            limited = True
        per_test[name] = {
            "states": stats.states_visited,
            "finals": stats.final_states,
            "transitions": stats.transitions_taken,
            "unique_states": stats.unique_states,
            "reduction": reduction,
            "seconds": round(stats.seconds, 4),
        }
        if limited:
            per_test[name]["limit"] = True
        total_states += stats.states_visited
        total_unique += stats.unique_states
        total_transitions += stats.transitions_taken
        total_seconds += stats.seconds
    total = {
        "states": total_states,
        "unique_states": total_unique,
        "transitions": total_transitions,
        "seconds": round(total_seconds, 4),
        "transitions_per_second": int(total_transitions / total_seconds)
        if total_seconds
        else 0,
        "states_per_second": int(total_states / total_seconds)
        if total_seconds
        else 0,
    }
    return per_test, total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--label", default=None, help="trajectory entry label")
    parser.add_argument(
        "--suite",
        choices=("e6", "gen", "gen-wide", "service"),
        default="e6",
        help="e6: the representative curated family (default); "
        "gen: the diy-generated two-thread suite "
        f"(seed {GEN_SEED}, size {GEN_SIZE}); "
        "gen-wide: the lifted-cap generated suite "
        f"(seed {GEN_WIDE_SEED}, size {GEN_WIDE_SIZE}, up to "
        f"{GEN_WIDE_MAX_THREADS} threads / {GEN_WIDE_MAX_RUN}-edge runs, "
        f"state budget {GEN_WIDE_MAX_STATES}); "
        "service: cold-vs-warm verdict-cache latency of the service "
        "engine on the e6 family",
    )
    parser.add_argument(
        "--strategy",
        choices=("sequential", "sharded", "bounded"),
        default="sequential",
        help="search backend per test (default sequential)",
    )
    parser.add_argument(
        "--intra-jobs",
        type=int,
        default=None,
        help="frontier workers per test for --strategy sharded",
    )
    parser.add_argument(
        "--shard-depth",
        type=int,
        default=None,
        help="frontier split depth for --strategy sharded",
    )
    parser.add_argument(
        "--reduction",
        choices=("none", "sleep", "dpor"),
        default="none",
        help="partial-order reduction (verdict-preserving): sleep sets, "
        "or source-DPOR over canonical state keys",
    )
    parser.add_argument(
        "--context-bound",
        type=int,
        default=None,
        help="context-switch bound (sound under-approximation)",
    )
    parser.add_argument(
        "--symmetry",
        action="store_true",
        help="with --reduction dpor: canonicalise states modulo "
        "detected thread symmetry",
    )
    parser.add_argument(
        "--sail-backend",
        choices=("compiled", "interp"),
        default=None,
        help="Sail execution backend for the ISA model (default: the "
        "model's resolved default, PPCMEM2_SAIL_BACKEND env or 'compiled')",
    )
    args = parser.parse_args(argv)

    from repro.concurrency.search import make_strategy

    if args.strategy != "sharded" and (
        args.intra_jobs is not None or args.shard_depth is not None
    ):
        print(
            "warning: --intra-jobs/--shard-depth only apply to "
            "--strategy sharded; ignored",
            file=sys.stderr,
        )
    strategy = make_strategy(
        args.strategy,
        jobs=args.intra_jobs,
        shard_depth=args.shard_depth,
        reduction=args.reduction,
        context_bound=args.context_bound,
        symmetry=args.symmetry,
    )
    # Record what will actually run, not the raw CLI args: resolve the
    # worker count, and flag sharded entries that degrade to sequential
    # (one usable CPU / no fork) so cross-machine comparisons aren't
    # poisoned by a mislabeled backend.
    strategy_record = {"name": args.strategy}
    if args.reduction != "none":
        strategy_record["reduction"] = args.reduction
    if args.context_bound is not None:
        strategy_record["context_bound"] = args.context_bound
    if args.symmetry:
        strategy_record["symmetry"] = True
    if args.strategy == "sharded":
        from repro.concurrency.search import ShardedParallel

        # Reuse the strategy's own resolution so record and runtime
        # cannot drift apart.
        resolved_jobs = strategy.effective_jobs()
        strategy_record["intra_jobs"] = resolved_jobs
        strategy_record["shard_depth"] = strategy.shard_depth
        if resolved_jobs <= 1 or not ShardedParallel.can_fork():
            strategy_record["effective"] = "sequential"

    from repro.isa.model import IsaModel, resolve_sail_backend

    sail_backend = resolve_sail_backend(args.sail_backend)
    if args.suite == "service":
        per_test, total = run_service_suite(sail_backend=sail_backend)
    else:
        model = IsaModel(sail_backend=sail_backend)
        per_test, total = run_suite(
            model=model,
            suite=args.suite,
            strategy=strategy,
            reduction=args.reduction,
        )

    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cpus = os.cpu_count() or 1

    trajectory = []
    if os.path.exists(args.output):
        with open(args.output) as handle:
            trajectory = json.load(handle)
    if not trajectory and args.suite == "e6":
        # The seed baseline is an E6 measurement; a gen-only trajectory
        # must not start from unrelated e6 numbers.
        trajectory.append(SEED_BASELINE)
    if args.suite == "e6":
        default_label = f"run-{len(trajectory)}"
    elif args.suite == "service":
        default_label = f"service-cold-warm-{len(trajectory)}"
    elif args.suite == "gen-wide":
        default_label = (
            f"gen-wide-seed{GEN_WIDE_SEED}-size{GEN_WIDE_SIZE}"
            f"-t{GEN_WIDE_MAX_THREADS}r{GEN_WIDE_MAX_RUN}-{len(trajectory)}"
        )
    else:
        default_label = f"gen-seed{GEN_SEED}-size{GEN_SIZE}-{len(trajectory)}"
    entry = {
        "label": args.label or default_label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "suite": args.suite,
        "strategy": strategy_record,
        "sail_backend": sail_backend,
        # Usable cores when the entry was recorded: wall-seconds of
        # sharded entries are only comparable at equal core counts.
        "cpus": cpus,
        "per_test": per_test,
        "total": total,
    }
    trajectory.append(entry)
    with open(args.output, "w") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")

    if args.suite == "service":
        print(f"Service suite ({len(per_test)} tests): "
              f"cold {total['cold_seconds']:.3f}s, "
              f"warm {total['warm_seconds']:.4f}s "
              f"= {total['speedup']:,}x speedup "
              f"(hit rate {total['cache_hit_rate']:.0%})")
    elif args.suite == "e6":
        baseline = trajectory[0]["total"]
        speedup = (
            total["transitions_per_second"] / baseline["transitions_per_second"]
            if baseline.get("transitions_per_second")
            else float("nan")
        )
        print(f"E6 suite: {total['transitions']} transitions "
              f"in {total['seconds']:.2f}s "
              f"= {total['transitions_per_second']:,}/s "
              f"({speedup:.2f}x over {trajectory[0]['label']})")
    else:
        print(f"Generated suite ({len(per_test)} tests): "
              f"{total['transitions']} transitions in {total['seconds']:.2f}s "
              f"= {total['transitions_per_second']:,}/s")
    print(f"trajectory written to {args.output} ({len(trajectory)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
