"""The whole-system state and its transitions.

This is the paper's

    type system_state = <|
      program_memory: address -> fetch_decode_outcome;
      initial_writes: list write;
      interp_context: Interp_interface.context;
      thread_states: map thread_id thread_state;
      storage_subsystem: storage_subsystem_state; ... |>

with

    val enumerate_transitions_of_system : system_state -> list trans
    val system_state_after_transition : system_state -> trans -> system_state

Deterministic, thread-local transitions (internal Sail steps, resolvable
register reads, unique-successor fetch, restart-free instruction finish) are
taken *eagerly*; only observably racy choices -- memory-read satisfaction,
store/barrier commitment, store-conditional resolution, propagation, sync
acknowledgement -- are enumerated as explicit transitions.  This is the
standard ppcmem-family optimisation; the ``eager=False`` parameter exposes
the unoptimised transition system for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..isa.model import IsaModel
from ..sail.interp import resume
from ..sail.outcomes import (
    Barrier as BarrierOutcome,
    Done as DoneOutcome,
    Internal,
    ReadMem,
    ReadReg,
    WriteMem,
    WriteReg,
)
from ..sail.values import Bits, FALSE, TRUE
from .events import BarrierEvent, BarrierId, Write, WriteId, initial_write
from .keys import CachedKey, intern_key
from .params import DEFAULT_PARAMS, ModelParams
from .storage import StorageSubsystem
from .thread import (
    InstructionInstance,
    Ioid,
    MemReadRecord,
    MOS_BLOCKED_REG,
    MOS_DONE,
    MOS_PENDING_READ,
    MOS_PENDING_SC,
    MOS_PLAIN,
    ModelError,
    RegReadRecord,
    RegWriteRecord,
    ThreadState,
)


@dataclass(frozen=True)
class Transition:
    """One enabled transition of the whole system."""

    kind: str
    tid: Optional[int] = None
    ioid: Optional[Ioid] = None
    detail: tuple = ()
    #: Human-readable description for traces.  Excluded from equality and
    #: hashing: it is a pure function of the comparing fields, and keys over
    #: transitions (sleep sets, trace serialisation) should not hash the
    #: string.
    label: str = field(default="", compare=False)

    def __str__(self) -> str:
        return self.label or self.kind


class SystemState:
    """Mutable system state; cloned by the explorer before each transition.

    ``clone()`` is copy-on-write: the new state shares every thread and the
    storage subsystem with its parent and copies a slice only when a
    transition actually mutates it (``_own_thread`` / ``_own_storage``).
    Transitions touch one thread plus at most the storage subsystem, so a
    successor state typically copies one thread's instances instead of every
    instance of every thread.  All mutation paths must acquire their targets
    through the ``_own_*`` helpers; reading shared state is always safe.
    """

    def __init__(
        self,
        model: IsaModel,
        program_memory: Dict[int, int],
        thread_entries: Dict[int, int],
        initial_registers: Dict[int, Dict[str, Bits]],
        initial_memory: Iterable[Tuple[int, int, Bits]],
        params: ModelParams = DEFAULT_PARAMS,
        symbols: Optional[Dict[int, str]] = None,
    ):
        """Build the initial state.

        ``program_memory`` maps word-aligned addresses to 32-bit opcodes;
        ``thread_entries`` maps thread ids to entry points;
        ``initial_registers`` gives each thread's initial register values;
        ``initial_memory`` lists (addr, size, value) initial-state writes.
        """
        self.model = model
        self.params = params
        self.program_memory = dict(program_memory)
        self.symbols = dict(symbols or {})
        self.threads: Dict[int, ThreadState] = {}
        self.storage = StorageSubsystem(sorted(thread_entries))
        writes = [
            initial_write(index, addr, size, value)
            for index, (addr, size, value) in enumerate(initial_memory)
        ]
        self.storage.accept_initial_writes(writes)
        for tid, entry in sorted(thread_entries.items()):
            thread = ThreadState(tid, initial_registers.get(tid, {}))
            thread.initial_fetch_address = entry
            self.threads[tid] = thread
        # A freshly built state owns everything it references.
        self._owned_tids = set(self.threads)
        self._owns_storage = True
        self._key_cache: Optional[CachedKey] = None
        self._threads_key: Optional[Tuple] = None
        self._sorted_tids = sorted(self.threads)
        if params.eager:
            self.eager_closure()

    # ------------------------------------------------------------------
    # Cloning / keys
    # ------------------------------------------------------------------

    def clone(self) -> "SystemState":
        """Copy-on-write clone: shares threads and storage with ``self``.

        Both sides lose write ownership of the shared structures; either
        will copy a thread (or the storage subsystem) the first time it
        mutates it.  Use ``clone_eager`` for a fully independent deep copy.
        """
        other = SystemState.__new__(SystemState)
        other.model = self.model
        other.params = self.params
        other.program_memory = self.program_memory  # immutable use
        other.symbols = self.symbols
        other.threads = dict(self.threads)
        other.storage = self.storage
        other._owned_tids = set()
        other._owns_storage = False
        other._key_cache = None
        # The clone's threads are the same objects, so the composite
        # thread-key tuple carries over until one of them is mutated.
        other._threads_key = self._threads_key
        other._sorted_tids = self._sorted_tids
        self._owned_tids = set()
        self._owns_storage = False
        return other

    def clone_eager(self) -> "SystemState":
        """Deep clone copying every thread, instance and the storage state.

        This is the pre-COW cloning path, kept as the reference
        implementation: the determinism regression tests check that states
        produced through COW cloning are ``key()``-identical to states
        produced through this eager path.
        """
        other = SystemState.__new__(SystemState)
        other.model = self.model
        other.params = self.params
        other.program_memory = self.program_memory  # immutable use
        other.symbols = self.symbols
        other.threads = {tid: t.clone() for tid, t in self.threads.items()}
        other.storage = self.storage.clone()
        other._owned_tids = set(other.threads)
        other._owns_storage = True
        other._key_cache = None
        other._threads_key = None
        other._sorted_tids = self._sorted_tids
        return other

    def _own_thread(self, tid: int) -> ThreadState:
        """Return a privately owned (writable) copy of thread ``tid``.

        Also drops the thread's memoised key: the caller is about to mutate
        the thread or its instances, which the thread object cannot observe.
        """
        self._key_cache = None
        self._threads_key = None
        thread = self.threads[tid]
        if tid not in self._owned_tids:
            thread = thread.clone()
            self.threads[tid] = thread
            self._owned_tids.add(tid)
        thread.invalidate_caches()
        return thread

    def _own_storage(self) -> StorageSubsystem:
        """Return a privately owned (writable) storage subsystem."""
        self._key_cache = None
        if not self._owns_storage:
            self.storage = self.storage.clone()
            self._owns_storage = True
        return self.storage

    def key(self) -> CachedKey:
        cached = self._key_cache
        if cached is None:
            threads_key = self._threads_key
            if threads_key is None:
                threads = self.threads
                threads_key = tuple(
                    [threads[tid].key() for tid in self._sorted_tids]
                )
                self._threads_key = threads_key
            # Not interned: system keys are unique per state, so interning
            # them would only churn the bounded intern table and evict the
            # genuinely shared thread/instance keys on large searches.
            cached = CachedKey((threads_key, self.storage.key()))
            self._key_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def _fetch_candidates(self, thread: ThreadState, instance) -> List[int]:
        """Possible next fetch addresses of an instance."""
        nia = instance.nia
        if nia is not None:
            return [nia] if nia in self.program_memory else []
        fp = instance.static_fp
        if not fp.nias:
            # Straight-line instruction: fall-through is the only candidate.
            # (Indirect targets wait until the instance resolves its NIA.)
            if fp.nia_fallthrough:
                addr = instance.address + 4
                return [addr] if addr in self.program_memory else []
            return []
        candidates: Set[int] = set(fp.nias)
        if fp.nia_fallthrough:
            candidates.add(instance.address + 4)
        return sorted(
            addr for addr in candidates if addr in self.program_memory
        )

    def _fetch_one(self, thread: ThreadState, instance, address: int) -> bool:
        if address in instance.children:
            return False
        if len(thread.instances) >= self.params.max_instances_per_thread:
            raise ModelError(
                f"thread {thread.tid} exceeded the instance cap "
                f"({self.params.max_instances_per_thread}); "
                "an unresolved loop or runaway speculation"
            )
        word = self.program_memory[address]
        instruction = self.model.decode(word)
        if instruction is None:
            raise ModelError(f"cannot decode 0x{word:08x} at 0x{address:x}")
        thread.new_instance(self.model, address, instruction, instance.ioid)
        return True

    def _fetch_root(self, thread: ThreadState) -> bool:
        if thread.root is not None:
            return False
        address = thread.initial_fetch_address
        if address is None or address not in self.program_memory:
            return False
        word = self.program_memory[address]
        instruction = self.model.decode(word)
        if instruction is None:
            raise ModelError(f"cannot decode 0x{word:08x} at 0x{address:x}")
        thread.new_instance(self.model, address, instruction, None)
        return True

    # ------------------------------------------------------------------
    # Eager closure
    # ------------------------------------------------------------------

    def eager_closure(self, dirty: Optional[Dict[int, int]] = None) -> None:
        """Take all deterministic thread-local steps to a fixpoint.

        Eager steps are thread-local: whether an instance can progress
        depends only on its own thread's state and on the storage
        subsystem's set of acknowledged syncs.  A state produced by
        ``apply`` therefore only needs to re-close the threads the
        transition touched (``dirty``, a tid -> start-index map), plus any
        thread whose sync is acknowledged during the closure -- every other
        thread was already at its fixpoint in the parent state and nothing
        it depends on changed.  ``dirty=None`` (the initial closure)
        processes every thread from index 0.
        """
        #: tid -> smallest instance index still to process (0 = the whole
        #: thread).  Instances are processed in creation (= program-order-
        #: compatible) order and an instance's eager enablement depends only
        #: on itself, its po-ancestors (lower indexes, processed earlier in
        #: the same pass) and the acknowledged-sync set -- so after one full
        #: pass only instances *fetched during the pass* can still step, and
        #: after an acknowledgement only the sync's own thread can.
        work: Dict[int, int] = (
            {tid: 0 for tid in self.threads} if dirty is None
            else dict(dirty)
        )
        iterations = 0
        while True:
            iterations += 1
            if iterations > 10000:
                raise ModelError("eager closure did not converge")
            next_work: Dict[int, int] = {}
            for tid in sorted(work):
                thread = self._own_thread(tid)
                start = work[tid]
                boundary = thread.next_index
                progress = False
                if start == 0 and self._fetch_root(thread):
                    progress = True
                for ioid in thread.sorted_ioids():
                    if ioid[1] < start:
                        continue
                    instance = thread.instances.get(ioid)
                    if instance is None:
                        continue
                    if self._eager_step_instance(thread, instance):
                        progress = True
                if progress and thread.next_index > boundary:
                    next_work[tid] = boundary
            # Sync acknowledgements are purely enabling (no transition is
            # negatively sensitive to acked-ness), so take them eagerly.
            # An acknowledgement can unblock finishes in the sync's thread.
            for bid in sorted(self.storage.unacknowledged_syncs):
                if self.storage.can_acknowledge_sync(bid):
                    self._own_storage().acknowledge_sync(bid, checked=True)
                    # The acknowledgement can unblock the sync instruction's
                    # own finish and, transitively, only its po-successors
                    # (all at higher creation indexes).
                    start = bid.ioid[1]
                    next_work[bid.tid] = min(
                        next_work.get(bid.tid, start), start
                    )
            if not next_work:
                return
            work = next_work

    def _eager_step_instance(self, thread: ThreadState, instance) -> bool:
        # Fast path: a finished instance with its (unique, resolved)
        # successor already fetched -- or falling outside the program --
        # can neither step nor fetch; re-closure passes skip it outright.
        if instance.finished:
            nia = instance.nia
            if nia is not None and (
                nia in instance.children or nia not in self.program_memory
            ):
                return False
        progress = False
        # Fetch successors speculatively (any time, at any tree leaf).
        if not self._pruned(thread, instance):
            for address in self._fetch_candidates(thread, instance):
                if self._fetch_one(thread, instance, address):
                    progress = True
        # Drive the Sail interpreter through deterministic outcomes.
        while True:
            tag = instance.mos[0]
            if tag == MOS_PLAIN:
                if self._advance_plain(thread, instance):
                    progress = True
                    continue
                break
            if tag == MOS_BLOCKED_REG:
                if self._try_resolve_blocked_reg(thread, instance):
                    progress = True
                    continue
                break
            break
        # Eager finish (safe: preconditions guarantee restart-freedom).
        if (
            not instance.finished
            and instance.mos[0] == MOS_DONE
            and self._can_finish(thread, instance)
        ):
            self._do_finish(thread, instance)
            progress = True
        if progress and not self._pruned(thread, instance):
            for address in self._fetch_candidates(thread, instance):
                if self._fetch_one(thread, instance, address):
                    pass
        return progress

    def _pruned(self, thread: ThreadState, instance) -> bool:
        return instance.ioid not in thread.instances

    def _advance_plain(self, thread: ThreadState, instance) -> bool:
        """Take one deterministic Sail step; returns True on progress."""
        state = instance.mos[1]
        outcome = self.model.run_to_outcome(state)
        if isinstance(outcome, DoneOutcome):
            instance.mos = (MOS_DONE,)
            if instance.nia is None:
                instance.nia = instance.address + 4
            self._prune_untaken(thread, instance)
            return True
        if isinstance(outcome, ReadReg):
            reg_slice = outcome.slice
            if reg_slice.reg == "CIA":
                value = Bits.from_int(instance.address, 64)
                instance.mos = (MOS_PLAIN, self.model.resume(outcome.state, value))
                return True
            if reg_slice.reg == "NIA":
                raise ModelError("pseudocode reads NIA")
            result = thread.resolve_register_read(
                self.model, self.params, instance, reg_slice
            )
            if result[0] == "blocked":
                instance.mos = (MOS_BLOCKED_REG, reg_slice, outcome.state)
                return False
            _, value, sources = result
            self._note_address_taint(
                instance, outcome.state, reg_slice.width, sources
            )
            instance.reg_reads = instance.reg_reads + (
                RegReadRecord(reg_slice, value, sources),
            )
            instance.mos = (MOS_PLAIN, self.model.resume(outcome.state, value))
            return True
        if isinstance(outcome, WriteReg):
            if outcome.slice.reg == "NIA":
                if not outcome.value.is_known:
                    raise ModelError("branch target contains undef bits")
                instance.nia = outcome.value.to_int()
                self._prune_untaken(thread, instance)
            else:
                instance.reg_writes = instance.reg_writes + (
                    RegWriteRecord(outcome.slice, outcome.value),
                )
            instance.mos = (MOS_PLAIN, self.model.resume(outcome.state, None))
            return True
        if isinstance(outcome, ReadMem):
            if not outcome.addr.is_known:
                raise ModelError("memory read address contains undef bits")
            instance.mos = (
                MOS_PENDING_READ,
                outcome.kind,
                outcome.addr.to_int(),
                outcome.size,
                outcome.state,
            )
            return True
        if isinstance(outcome, WriteMem):
            if not outcome.addr.is_known:
                raise ModelError("memory write address contains undef bits")
            addr = outcome.addr.to_int()
            if outcome.kind == "conditional":
                instance.mos = (
                    MOS_PENDING_SC,
                    addr,
                    outcome.size,
                    outcome.value,
                    outcome.state,
                )
                return True
            units = self._split_write(instance, addr, outcome.size, outcome.value)
            instance.mem_writes = instance.mem_writes + units
            instance.mos = (MOS_PLAIN, self.model.resume(outcome.state, None))
            return True
        if isinstance(outcome, BarrierOutcome):
            instance.barrier_kind = outcome.kind
            instance.mos = (MOS_PLAIN, self.model.resume(outcome.state, None))
            return True
        raise ModelError(f"unexpected outcome {outcome!r}")

    def _split_write(
        self, instance, addr: int, size: int, value: Bits
    ) -> Tuple[Write, ...]:
        """Decompose a write into architecturally atomic units (section 5)."""
        index_base = len(instance.mem_writes)
        if addr % size == 0:
            return (
                Write(
                    WriteId(instance.tid, instance.ioid, index_base),
                    addr,
                    size,
                    value,
                ),
            )
        # Misaligned: single bytes are the atomic units.
        units = []
        for i in range(size):
            units.append(
                Write(
                    WriteId(instance.tid, instance.ioid, index_base + i),
                    addr + i,
                    1,
                    value.slice(8 * i, 8 * i + 7),
                )
            )
        return tuple(units)

    def _note_address_taint(
        self, instance, pending_state, width: int, sources
    ) -> None:
        """Record sources of reads that may feed a memory address.

        A register read resolved while the instruction's remaining memory
        footprint is still undetermined may flow into an address; reads
        resolved after the footprint is determined cannot (the pseudocode is
        interpreted sequentially, section 2.1.6).  This realises the paper's
        dynamic taint tracking (section 2.2): downstream commit conditions
        treat a footprint as stable only once every address source is
        finished.
        """
        if not sources:
            return
        fp = self.model.footprint(
            self.model.resume(pending_state, Bits.unknown(width)),
            cia=instance.address,
        )
        if fp.is_memory_access and not fp.memory_determined:
            merged = set(instance.addr_sources)
            merged.update(sources)
            instance.addr_sources = tuple(sorted(merged))

    def _try_resolve_blocked_reg(self, thread: ThreadState, instance) -> bool:
        _, reg_slice, pending = instance.mos
        result = thread.resolve_register_read(
            self.model, self.params, instance, reg_slice
        )
        if result[0] == "blocked":
            return False
        _, value, sources = result
        self._note_address_taint(instance, pending, reg_slice.width, sources)
        instance.reg_reads = instance.reg_reads + (
            RegReadRecord(reg_slice, value, sources),
        )
        instance.mos = (MOS_PLAIN, self.model.resume(pending, value))
        return True

    def _prune_untaken(self, thread: ThreadState, instance) -> None:
        """Discard speculative children not matching a resolved NIA."""
        if instance.nia is None:
            return
        kept: Dict[int, Ioid] = {}
        pruned = False
        for address, child in instance.children.items():
            if address == instance.nia:
                kept[address] = child
            else:
                thread.prune_subtree(child)
                pruned = True
        if pruned:
            # Replace rather than mutate: the dict may be shared with COW
            # clones and the assignment invalidates the memoised key.
            instance.children = kept

    # ------------------------------------------------------------------
    # Commit / finish conditions
    # ------------------------------------------------------------------

    def _register_sources_finished(self, thread, instance) -> bool:
        for record in instance.reg_reads:
            for source in record.sources:
                pred = thread.instances.get(source)
                if pred is None or not pred.finished:
                    return False
        return True

    def _sync_acked(self, instance) -> bool:
        bid = BarrierId(instance.tid, instance.ioid)
        return bid in self.storage.acknowledged_syncs

    def _can_finish(self, thread, instance) -> bool:
        """Generic instruction finish (the paper's commit) conditions.

        One fused walk over the program-order predecessors checks, per
        predecessor: speculation (branches must have resolved), footprint
        stability of earlier memory accesses (determined addresses fed only
        by finished sources), overlapping earlier accesses finished before a
        load finishes, and the barrier conditions (sync committed+acked,
        lwsync committed, isync finished).  The conjunction equals the
        previous per-condition walks, but the predecessor chain (and its
        dict lookups) is traversed once instead of up to four times.
        """
        if instance.mos[0] != MOS_DONE:
            return False
        if instance.mem_writes and not instance.writes_committed:
            return False  # stores finish through the commit-store transition
        if instance.is_storage_barrier and not instance.barrier_committed:
            return False
        if not self._register_sources_finished(thread, instance):
            return False
        model = self.model
        is_mem = instance.is_memory_access
        has_reads = bool(instance.mem_reads)
        footprints = instance.read_footprints() if has_reads else ()
        instances = thread.instances
        for pred in thread.po_previous(instance):
            if pred.is_branch and not pred.finished:
                return False
            if is_mem and pred.is_memory_access:
                if not pred.memory_footprint_determined(model):
                    return False
                for source in pred.addr_sources:
                    source_instance = instances.get(source)
                    if source_instance is None or not source_instance.finished:
                        return False
            if has_reads:
                if not pred.finished:
                    for addr, size in footprints:
                        if pred.may_access_memory(model, addr, size):
                            return False
                kinds = pred.static_barrier_kinds()
                if kinds:
                    if "sync" in kinds and not (
                        pred.barrier_committed and self._sync_acked(pred)
                    ):
                        return False
                    if "lwsync" in kinds and not pred.barrier_committed:
                        return False
                    if "isync" in kinds and not pred.finished:
                        return False
        return True

    def _do_finish(self, thread, instance) -> None:
        instance.finished = True
        self._prune_untaken(thread, instance)

    def _can_commit_store(self, thread, instance) -> bool:
        # Fused predecessor walk; see ``_can_finish`` for the rationale.
        if instance.mos[0] != MOS_DONE or not instance.mem_writes:
            return False
        if instance.writes_committed:
            return False
        if not self._register_sources_finished(thread, instance):
            return False
        model = self.model
        footprints = instance.performed_write_footprints()
        instances = thread.instances
        for pred in thread.po_previous(instance):
            if pred.is_branch and not pred.finished:
                return False
            if pred.is_memory_access:
                if not pred.memory_footprint_determined(model):
                    return False
                for source in pred.addr_sources:
                    source_instance = instances.get(source)
                    if source_instance is None or not source_instance.finished:
                        return False
            if not pred.finished:
                for addr, size in footprints:
                    if pred.may_access_memory(model, addr, size):
                        return False
            kinds = pred.static_barrier_kinds()
            if kinds:
                if "sync" in kinds and not (
                    pred.barrier_committed and self._sync_acked(pred)
                ):
                    return False
                if (
                    "lwsync" in kinds or "eieio" in kinds
                ) and not pred.barrier_committed:
                    return False
                if "isync" in kinds and not pred.finished:
                    return False
        return True

    def _can_commit_barrier(self, thread, instance) -> bool:
        if instance.barrier_kind not in ("sync", "lwsync", "eieio"):
            return False
        if instance.barrier_committed or instance.mos[0] != MOS_DONE:
            return False
        for pred in thread.po_previous(instance):
            if pred.is_branch and not pred.finished:
                return False
            if pred.is_store:
                # Stores ahead of the barrier must be fully performed and
                # committed so they land in the barrier's Group A.
                if not pred.is_done_executing:
                    return False
                if pred.mem_writes and not pred.writes_committed:
                    return False
            if instance.barrier_kind in ("sync", "lwsync"):
                if pred.is_load and not pred.finished:
                    return False
            kinds = pred.static_barrier_kinds()
            if "isync" in kinds:
                if not pred.finished:
                    return False
            elif kinds and not pred.barrier_committed:
                return False
        return True

    # ------------------------------------------------------------------
    # Read satisfaction
    # ------------------------------------------------------------------

    def _read_blocked_by_barrier(self, thread, instance) -> bool:
        for pred in thread.po_previous(instance):
            kinds = pred.static_barrier_kinds()
            if "sync" in kinds and not (
                pred.barrier_committed and self._sync_acked(pred)
            ):
                return True
            if "lwsync" in kinds and not pred.barrier_committed:
                return True
            if "isync" in kinds and not pred.finished:
                return True
        return False

    def _read_satisfaction_options(self, thread, instance) -> List[Transition]:
        _, kind, addr, size, _ = instance.mos
        if self._read_blocked_by_barrier(thread, instance):
            return []
        needed: Set[int] = set(range(addr, addr + size))
        for pred in thread.po_previous(instance):
            if not needed:
                break
            for write in pred.mem_writes:
                overlap = needed & set(
                    range(write.addr, write.addr + write.size)
                )
                if not overlap:
                    continue
                if pred.writes_committed:
                    needed -= overlap  # storage supplies these bytes
                elif write.covers(addr, size) and needed == set(
                    range(addr, addr + size)
                ):
                    return [
                        Transition(
                            kind="satisfy_read_forward",
                            tid=thread.tid,
                            ioid=instance.ioid,
                            detail=(pred.ioid, write.wid),
                            label=(
                                f"{instance.ioid} satisfy read "
                                f"{self._loc(addr)} by forwarding from "
                                f"{pred.ioid}"
                            ),
                        )
                    ]
                else:
                    return []  # partially covering uncommitted store: wait
            if needed and not pred.finished:
                if pred.may_write_memory_overlapping(
                    self.model, addr, size
                ) and not pred.writes_committed:
                    return []  # might still store here: wait
        return [
            Transition(
                kind="satisfy_read_storage",
                tid=thread.tid,
                ioid=instance.ioid,
                label=(
                    f"{instance.ioid} satisfy read {self._loc(addr)} "
                    f"from storage"
                ),
            )
        ]

    def _loc(self, addr: int) -> str:
        symbol = self.symbols.get(addr)
        return symbol if symbol else f"0x{addr:x}"

    # ------------------------------------------------------------------
    # Restarts
    # ------------------------------------------------------------------

    def _restart(self, thread, instance) -> None:
        """Reset an instance to its initial state and cascade to dependents."""
        worklist = [instance.ioid]
        restarted: Set[Ioid] = set()
        while worklist:
            ioid = worklist.pop()
            if ioid in restarted:
                continue
            target = thread.instances.get(ioid)
            if target is None:
                continue
            restarted.add(ioid)
            if target.finished or target.writes_committed:
                raise ModelError(f"restarting committed instance {ioid}")
            had_writes = bool(target.mem_writes) or target.static_fp.is_store
            target.mos = (MOS_PLAIN, self.model.initial_state(target.instruction))
            target.reg_reads = ()
            target.reg_writes = ()
            target.mem_reads = ()
            target.mem_writes = ()
            target.barrier_kind = None
            target.nia = None
            target.sc_resolved = None
            target.restarts += 1
            if thread.reservation is not None and thread.reservation[3] == ioid:
                thread.reservation = None
            # Dependents: anything that read a register from this instance,
            # anything that forwarded from its writes, and -- if it may write
            # memory -- any program-order-later satisfied read (its footprint
            # may change).
            for other in thread.instances.values():
                if other.ioid in restarted:
                    continue
                depends = any(
                    ioid in record.sources for record in other.reg_reads
                ) or any(
                    record.forwarded_from == ioid for record in other.mem_reads
                )
                if depends:
                    worklist.append(other.ioid)
            if had_writes:
                # The store's footprint may change on re-execution, so
                # po-later satisfied reads are conservatively restarted.
                # Finished ones are provably unaffected: their commit
                # required every po-previous footprint to be determined with
                # *finished* address sources, so this store's address cannot
                # move onto them.
                for descendant in thread.descendants(target):
                    if (
                        descendant.mem_reads
                        and not descendant.finished
                        and descendant.ioid not in restarted
                    ):
                        worklist.append(descendant.ioid)

    def _coherence_restart_check(self, thread, instance, record: MemReadRecord):
        """Restart po-later reads that saw coherence-older writes (CoRR)."""
        new_sources = {
            record.addr + offset + i: wid
            for wid, offset, length in record.storage_sources
            for i in range(length)
        }
        for descendant in list(thread.descendants(instance)):
            for other in descendant.mem_reads:
                if other.forwarded_from is not None:
                    continue
                conflict = False
                for wid, offset, length in other.storage_sources:
                    for i in range(length):
                        byte_addr = other.addr + offset + i
                        new_wid = new_sources.get(byte_addr)
                        if new_wid is None or new_wid == wid:
                            continue
                        if self.storage.coherence_before(wid, new_wid):
                            conflict = True
                if conflict:
                    self._restart(thread, descendant)
                    break

    # ------------------------------------------------------------------
    # Transition enumeration
    # ------------------------------------------------------------------

    def enumerate_transitions(self) -> List[Transition]:
        """All enabled transitions, in a deterministic order.

        Assembled from two memoised halves: each thread's options (cached on
        the thread object against the storage-side context it depends on)
        and the storage-side options (cached on the storage object, whose
        state they are a pure function of).  COW sharing makes both caches
        effective: a transition that only touches one thread reuses every
        other thread's options and -- if it left storage alone -- the whole
        storage half.
        """
        transitions: List[Transition] = []
        threads = self.threads
        for tid in self._sorted_tids:
            transitions.extend(self._thread_transitions(threads[tid]))
        storage = self.storage
        cached = storage._transitions_cache
        if cached is None:
            cached = self._storage_transitions()
            storage._transitions_cache = cached
        transitions.extend(cached)
        return transitions

    def _thread_transitions(self, thread: ThreadState) -> List[Transition]:
        """One thread's enabled transitions (memoised on the thread).

        The options depend on the thread's own state plus two storage-side
        inputs: the sync-acknowledgement state (barrier conditions) and the
        writes propagated to this thread (store-conditional resolution).
        Both are captured as the cache context and validated on reuse.
        """
        storage = self.storage
        cached = thread._trans_cache
        if cached is not None and cached[0] is storage:
            # Same storage object => storage untouched since the cache was
            # written (mutation always clones first), so reuse outright.
            return cached[3]
        syncs_ctx = storage.syncs_key()
        writes_ctx = storage.writes_propagated_to(thread.tid)
        if cached is not None:
            _, syncs, writes, options = cached
            if writes is writes_ctx and (
                syncs is syncs_ctx or syncs == syncs_ctx
            ):
                return options
        options: List[Transition] = []
        for ioid in thread.sorted_ioids():
            instance = thread.instances[ioid]
            tag = instance.mos[0]
            if tag == MOS_PENDING_READ:
                options.extend(
                    self._read_satisfaction_options(thread, instance)
                )
            elif tag == MOS_PENDING_SC:
                options.extend(self._sc_options(thread, instance))
            elif (
                tag == MOS_DONE
                and instance.mem_writes
                and not instance.writes_committed
                and self._can_commit_store(thread, instance)
            ):
                options.append(
                    Transition(
                        kind="commit_store",
                        tid=thread.tid,
                        ioid=ioid,
                        label=f"{ioid} commit store to storage",
                    )
                )
            if (
                instance.is_storage_barrier
                and not instance.barrier_committed
                and self._can_commit_barrier(thread, instance)
            ):
                options.append(
                    Transition(
                        kind="commit_barrier",
                        tid=thread.tid,
                        ioid=ioid,
                        label=f"{ioid} commit {instance.barrier_kind} barrier",
                    )
                )
        thread._trans_cache = (storage, syncs_ctx, writes_ctx, options)
        return options

    def _storage_transitions(self) -> List[Transition]:
        """The storage subsystem's enabled transitions (pure in storage)."""
        storage = self.storage
        transitions: List[Transition] = []
        events_pos = storage._events_pos
        writes_seen = storage.writes_seen
        threads = storage.threads
        for wid in storage.sorted_wids():
            origin = wid.tid
            event = ("w", wid)
            origin_pos = events_pos.get(origin)
            if origin_pos is None or event not in origin_pos:
                continue  # initial write, or not committed by its thread
            for tid in threads:
                # Inlined cheap rejections (already propagated / own thread)
                # before the full precondition check.
                if tid == origin or event in events_pos[tid]:
                    continue
                if storage.can_propagate_write(wid, tid):
                    transitions.append(
                        Transition(
                            kind="propagate_write",
                            tid=tid,
                            detail=(wid,),
                            label=(
                                f"propagate {writes_seen[wid]}"
                                f" to thread {tid}"
                            ),
                        )
                    )
        if storage.barriers_seen:
            for bid in storage.sorted_bids():
                for tid in threads:
                    if storage.can_propagate_barrier(bid, tid):
                        barrier = storage.barriers_seen[bid]
                        transitions.append(
                            Transition(
                                kind="propagate_barrier",
                                tid=tid,
                                detail=(bid,),
                                label=f"propagate {barrier} to thread {tid}",
                            )
                        )
        if storage.unacknowledged_syncs:
            for bid in sorted(storage.unacknowledged_syncs):
                if storage.can_acknowledge_sync(bid):
                    transitions.append(
                        Transition(
                            kind="ack_sync",
                            detail=(bid,),
                            label=f"acknowledge sync {bid}",
                        )
                    )
        coherence_points = storage.coherence_points
        for wid in storage.sorted_wids():
            if wid in coherence_points:
                continue
            if storage.can_reach_coherence_point(wid):
                write = writes_seen[wid]
                transitions.append(
                    Transition(
                        kind="reach_coherence_point",
                        detail=(wid,),
                        label=f"{write} reaches its coherence point",
                    )
                )
        return transitions

    def _sc_options(self, thread, instance) -> List[Transition]:
        """Store-conditional resolution: success and/or failure."""
        _, addr, size, value, _ = instance.mos
        if not self._can_commit_store_conditional(thread, instance):
            return []
        options = [
            Transition(
                kind="resolve_sc",
                tid=thread.tid,
                ioid=instance.ioid,
                detail=(False,),
                label=f"{instance.ioid} store-conditional fails",
            )
        ]
        reservation = thread.reservation
        if reservation is not None:
            res_addr, res_size, res_wid, _res_ioid = reservation
            if res_addr == addr and res_size == size:
                latest = None
                for write in self.storage.writes_propagated_to(thread.tid):
                    if write.overlaps(addr, size):
                        latest = write
                if latest is not None and latest.wid == res_wid:
                    options.append(
                        Transition(
                            kind="resolve_sc",
                            tid=thread.tid,
                            ioid=instance.ioid,
                            detail=(True,),
                            label=f"{instance.ioid} store-conditional succeeds",
                        )
                    )
        return options

    def _can_commit_store_conditional(self, thread, instance) -> bool:
        # Fused predecessor walk; see ``_can_finish`` for the rationale.
        if not self._register_sources_finished(thread, instance):
            return False
        model = self.model
        _, addr, size, _, _ = instance.mos
        instances = thread.instances
        for pred in thread.po_previous(instance):
            if pred.is_branch and not pred.finished:
                return False
            if pred.is_memory_access:
                if not pred.memory_footprint_determined(model):
                    return False
                for source in pred.addr_sources:
                    source_instance = instances.get(source)
                    if source_instance is None or not source_instance.finished:
                        return False
            if not pred.finished and pred.may_access_memory(
                model, addr, size
            ):
                return False
            kinds = pred.static_barrier_kinds()
            if kinds:
                if "sync" in kinds and not (
                    pred.barrier_committed and self._sync_acked(pred)
                ):
                    return False
                if (
                    "lwsync" in kinds or "eieio" in kinds
                ) and not pred.barrier_committed:
                    return False
                if "isync" in kinds and not pred.finished:
                    return False
        return True

    # ------------------------------------------------------------------
    # Transition application
    # ------------------------------------------------------------------

    def apply(self, transition: Transition) -> "SystemState":
        """Apply a transition, returning the successor state."""
        state = self.clone()
        state._apply_in_place(transition)
        if state.params.eager:
            dirty = state._dirty_threads(transition)
            # With no dirtied thread and no pending sync acknowledgements
            # the closure is a provable no-op; skip its scaffolding.
            if dirty or state.storage.unacknowledged_syncs:
                state.eager_closure(dirty)
        return state

    def _dirty_threads(self, transition: Transition) -> Dict[int, int]:
        """tid -> closure start index for threads the transition disturbed.

        Propagation and coherence-point transitions change only storage-side
        state that no eager (thread-local) step reads; the sync
        acknowledgements they may enable are re-checked by the closure
        itself, which then dirties the acknowledged sync's thread.

        A thread transition mutates only its own instance (plus storage and
        the thread's reservation, neither of which eager steps read), and an
        instance's eager enablement depends on itself and its po-ancestor
        chain only.  Creation indexes are po-compatible -- every child is
        created after its parent -- so a lower-index instance is never
        po-after the mutated one and its enablement is undisturbed: the
        closure can start scanning at the transition's own instance.
        """
        kind = transition.kind
        if kind in (
            "satisfy_read_storage",
            "satisfy_read_forward",
            "commit_store",
            "resolve_sc",
            "commit_barrier",
        ):
            return {transition.tid: transition.ioid[1]}
        if kind == "ack_sync":
            bid = transition.detail[0]
            return {bid.tid: bid.ioid[1]}
        return {}

    def _apply_in_place(self, transition: Transition) -> None:
        kind = transition.kind
        if kind == "satisfy_read_storage":
            self._do_satisfy_from_storage(transition)
        elif kind == "satisfy_read_forward":
            self._do_satisfy_by_forwarding(transition)
        elif kind == "commit_store":
            self._do_commit_store(transition)
        elif kind == "resolve_sc":
            self._do_resolve_sc(transition)
        elif kind == "commit_barrier":
            self._do_commit_barrier(transition)
        elif kind == "propagate_write":
            self._do_propagate_write(transition)
        elif kind == "propagate_barrier":
            # checked=True: the transition was enumerated from a state with
            # identical storage, so its precondition has already been tested.
            self._own_storage().propagate_barrier(
                transition.detail[0], transition.tid, checked=True
            )
        elif kind == "ack_sync":
            self._own_storage().acknowledge_sync(
                transition.detail[0], checked=True
            )
        elif kind == "reach_coherence_point":
            self._own_storage().reach_coherence_point(
                transition.detail[0], checked=True
            )
        else:
            raise ModelError(f"unknown transition {kind}")

    def _do_satisfy_from_storage(self, transition: Transition) -> None:
        thread = self._own_thread(transition.tid)
        instance = thread.instances[transition.ioid]
        _, kind, addr, size, pending = instance.mos
        value, provenance = self.storage.read_response(thread.tid, addr, size)
        record = MemReadRecord(addr, size, value, kind, provenance, None)
        instance.mem_reads = instance.mem_reads + (record,)
        instance.mos = (MOS_PLAIN, self.model.resume(pending, value))
        if kind == "reserve":
            # Reserve on the coherence-latest covering write.
            last_wid = provenance[-1][0] if provenance else None
            thread.reservation = (addr, size, last_wid, instance.ioid)
        self._coherence_restart_check(thread, instance, record)

    def _do_satisfy_by_forwarding(self, transition: Transition) -> None:
        thread = self._own_thread(transition.tid)
        instance = thread.instances[transition.ioid]
        source_ioid, wid = transition.detail
        source = thread.instances[source_ioid]
        write = next(w for w in source.mem_writes if w.wid == wid)
        _, kind, addr, size, pending = instance.mos
        value = write.extract(addr, size)
        record = MemReadRecord(addr, size, value, kind, (), source_ioid)
        instance.mem_reads = instance.mem_reads + (record,)
        instance.mos = (MOS_PLAIN, self.model.resume(pending, value))
        if kind == "reserve":
            thread.reservation = (addr, size, wid, instance.ioid)

    def _do_commit_store(self, transition: Transition) -> None:
        thread = self._own_thread(transition.tid)
        instance = thread.instances[transition.ioid]
        storage = self._own_storage()
        for write in instance.mem_writes:
            storage.accept_write(write)
            self._invalidate_reservation(thread, write)
        instance.writes_committed = True
        if self._can_finish(thread, instance):
            self._do_finish(thread, instance)

    def _do_resolve_sc(self, transition: Transition) -> None:
        thread = self._own_thread(transition.tid)
        instance = thread.instances[transition.ioid]
        success = transition.detail[0]
        _, addr, size, value, pending = instance.mos
        reservation = thread.reservation
        thread.reservation = None
        instance.sc_resolved = success
        if success:
            write = Write(
                WriteId(instance.tid, instance.ioid, 0),
                addr,
                size,
                value,
                is_conditional=True,
            )
            instance.mem_writes = (write,)
            storage = self._own_storage()
            storage.accept_write(write)
            self._invalidate_reservation(thread, write)
            instance.writes_committed = True
            if reservation is not None and reservation[2] is not None:
                storage.record_atomic_pair(reservation[2], write.wid)
        instance.mos = (MOS_PLAIN, self.model.resume(pending, TRUE if success else FALSE))

    def _invalidate_reservation(self, thread: ThreadState, write: Write) -> None:
        """A store clears its own thread's reservation on acceptance (other
        threads' reservations clear when the write *propagates* to them,
        in ``_do_propagate_write``), unless the write is the reservation's
        own conditional store (handled by the caller)."""
        if thread.reservation is None:
            return
        res_addr, res_size, _, _ = thread.reservation
        if write.overlaps(res_addr, res_size):
            thread.reservation = None

    def _do_commit_barrier(self, transition: Transition) -> None:
        thread = self._own_thread(transition.tid)
        instance = thread.instances[transition.ioid]
        event = BarrierEvent(
            BarrierId(instance.tid, instance.ioid), instance.barrier_kind
        )
        self._own_storage().accept_barrier(event)
        instance.barrier_committed = True
        if self._can_finish(thread, instance):
            self._do_finish(thread, instance)

    def _do_propagate_write(self, transition: Transition) -> None:
        wid = transition.detail[0]
        self._own_storage().propagate_write(wid, transition.tid, checked=True)
        write = self.storage.writes_seen[wid]
        # A write becoming visible to a reserving thread clears its
        # reservation (another processor stored to the granule).  Check on
        # the shared thread first so COW only copies it when it changes.
        target_thread = self.threads[transition.tid]
        if target_thread.reservation is not None:
            res_addr, res_size, _, _ = target_thread.reservation
            if write.overlaps(res_addr, res_size):
                self._own_thread(transition.tid).reservation = None

    # ------------------------------------------------------------------
    # Finality
    # ------------------------------------------------------------------

    def threads_finished(self) -> bool:
        """All instructions of all threads fetched and finished."""
        for thread in self.threads.values():
            finished = thread._finished_cache
            if finished is None:
                finished = self._thread_finished(thread)
                thread._finished_cache = finished
            if not finished:
                return False
        return True

    def _thread_finished(self, thread: ThreadState) -> bool:
        """All of one thread's instructions fetched and finished.

        A pure function of the thread's state (program memory is fixed),
        memoised on the thread object in ``threads_finished``.
        """
        if thread.root is None:
            entry = thread.initial_fetch_address
            return entry is None or entry not in self.program_memory
        for instance in thread.instances.values():
            if not instance.finished:
                return False
            for address in self._fetch_candidates(thread, instance):
                if address not in instance.children:
                    return False
        return True

    def is_final(self) -> bool:
        """Threads complete *and* every write past its coherence point.

        Reached-but-CP-stuck states (a barrier-induced coherence-point cycle)
        are dead paths: those coherence choices cannot all be realised by any
        hardware execution, so they yield no outcome.
        """
        return (
            self.threads_finished()
            and self.storage.all_writes_past_coherence_point()
        )

    def final_registers(self) -> Dict[int, Dict[str, Bits]]:
        result: Dict[int, Dict[str, Bits]] = {}
        for tid, thread in self.threads.items():
            regs: Dict[str, Bits] = {}
            names = set(thread.initial_registers)
            for instance in thread.instances.values():
                for record in instance.reg_writes:
                    names.add(record.slice.reg)
            for name in names:
                regs[name] = thread.final_register_value(self.model, name)
            result[tid] = regs
        return result

    def final_memory(self, cells: Iterable[Tuple[int, int]]):
        return self.storage.final_memory_values(cells)

    # ------------------------------------------------------------------
    # Rendering (Fig. 3-style)
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines = [self.storage.render(self.symbols.get)]
        for tid in sorted(self.threads):
            thread = self.threads[tid]
            lines.append(f"Thread {tid} state:")
            for ioid in sorted(thread.instances):
                instance = thread.instances[ioid]
                fp = instance.static_fp
                regs_in = ", ".join(sorted(str(s) for s in fp.regs_in))
                regs_out = ", ".join(sorted(str(s) for s in fp.regs_out))
                status = "finished" if instance.finished else instance.mos[0]
                lines.append(
                    f"  instruction {ioid[1]} ioid: {ioid} "
                    f"address: 0x{instance.address:016x} "
                    f"{instance.instruction}"
                )
                lines.append(
                    f"    regs_in: {{{regs_in}}} regs_out: {{{regs_out}}} "
                    f"status: {status}"
                )
                if instance.mem_writes:
                    writes = ", ".join(str(w) for w in instance.mem_writes)
                    committed = (
                        "committed" if instance.writes_committed else "pending"
                    )
                    lines.append(f"    memory writes ({committed}): {writes}")
                if instance.mem_reads:
                    reads = ", ".join(
                        f"R 0x{r.addr:x}/{r.size}={r.value!r}"
                        for r in instance.mem_reads
                    )
                    lines.append(f"    memory reads satisfied: {reads}")
        return "\n".join(lines)
