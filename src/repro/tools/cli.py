"""ppcmem2-style command-line tool (section 6).

Modes:

  * ``ppcmem2 run TEST.litmus``          -- exhaustive oracle run
  * ``ppcmem2 interactive TEST.litmus``  -- step through transitions
  * ``ppcmem2 corpus [--jobs N]``        -- run the built-in corpus
  * ``ppcmem2 litmus [...] --jobs N``    -- run a litmus corpus in parallel
  * ``ppcmem2 gen --seed N --size K``    -- generate a diy-style suite
    (``--check --jobs J`` oracle-checks it against envelope invariants)
  * ``ppcmem2 serve [--port P]``         -- long-running envelope service
    (persistent verdict cache + async batch job queue, see SERVICE.md)
  * ``ppcmem2 client ...``               -- run the CLI verbs against a
    warm ``serve`` daemon instead of exploring cold
  * ``ppcmem2 elf BINARY``               -- sequential execution of an ELF

The oracle verbs are thin clients of the shared service engine
(``repro.service.EnvelopeEngine``): ``run``, ``corpus``, ``litmus`` and
``gen`` take ``--strategy {sequential,sharded,bounded}`` (plus
``--shard-depth``) to pick the search backend; ``sharded`` forks a
single test's frontier across worker processes (``run --jobs N``, or
``litmus FILE --jobs N`` with one file).  All four also take
``--reduction {sleep,dpor}`` (verdict-preserving partial-order
reduction; ``dpor`` layers source sets and canonical state keys on top
of sleep sets, with ``--symmetry`` also folding permutation-equivalent
threads), ``--context-bound N`` (sound under-approximation) and
``--cache PATH`` (persistent verdict cache: repeated queries are
answered in microseconds).

The interactive mode shows Fig. 3-style system states: storage subsystem
contents (writes seen, coherence, propagation lists, unacknowledged syncs)
plus each thread's instruction instances with their static footprints, and
the enabled transitions to choose from.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..concurrency.search import STRATEGIES
from ..litmus.library import corpus
from ..litmus.parser import parse_litmus
from ..litmus.runner import build_system


def _add_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache",
        default=None,
        metavar="PATH",
        help="persistent verdict cache (sqlite file): repeated queries "
        "with identical parameters are answered from it in microseconds",
    )


def _add_strategy_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=sorted(STRATEGIES),
        default="sequential",
        help="search backend: sequential DFS, sharded intra-test "
        "multiprocessing, or bounded iterative deepening "
        "(default sequential)",
    )
    parser.add_argument(
        "--shard-depth",
        type=int,
        default=None,
        help="frontier split depth for --strategy sharded "
        "(levels expanded before forking workers)",
    )
    parser.add_argument(
        "--reduction",
        choices=("none", "sleep", "dpor"),
        default="none",
        help="partial-order reduction: 'sleep' prunes commuting "
        "interleavings with sleep sets; 'dpor' adds source-DPOR race "
        "scheduling and canonical state keys on top -- both preserve "
        "every verdict (default none)",
    )
    parser.add_argument(
        "--context-bound",
        type=int,
        default=None,
        help="cut paths with more than N context switches; the result "
        "becomes a sound under-approximation (StateLimit on "
        "universal claims)",
    )
    parser.add_argument(
        "--symmetry",
        action="store_true",
        help="with --reduction dpor: also canonicalise states modulo "
        "detected thread symmetry (orbit representatives); ignored "
        "by the other reductions",
    )


def _strategy_from(args):
    from ..concurrency.search import build_strategy

    if args.shard_depth is not None and args.strategy != "sharded":
        print(
            f"warning: --shard-depth only applies to --strategy sharded; "
            f"ignored for {args.strategy}",
            file=sys.stderr,
        )
    return build_strategy(
        args.strategy,
        shard_depth=args.shard_depth,
        reduction=args.reduction,
        context_bound=args.context_bound,
        symmetry=args.symmetry,
    )


def _engine_from(args):
    """The service engine behind every oracle verb (cache optional)."""
    from ..service.engine import EnvelopeEngine

    cache = None
    if getattr(args, "cache", None):
        from ..service.cache import VerdictCache

        cache = VerdictCache(args.cache)
    return EnvelopeEngine(cache=cache)


def _request_for(source, name, args, jobs=None, max_states=None):
    from ..service.engine import EngineRequest

    return EngineRequest(
        source=source,
        name=name,
        strategy=_strategy_from(args),
        jobs=jobs,
        max_states=max_states,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ppcmem2",
        description="Architectural envelope test oracle for IBM POWER",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="exhaustively run a litmus test")
    run_parser.add_argument("test", help="path to a .litmus file")
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="intra-test frontier workers for --strategy sharded "
        "(default: CPU count)",
    )
    _add_strategy_args(run_parser)
    _add_cache_arg(run_parser)

    inter_parser = sub.add_parser(
        "interactive", help="step through a litmus test's transitions"
    )
    inter_parser.add_argument("test", help="path to a .litmus file")

    corpus_parser = sub.add_parser(
        "corpus", help="run the built-in litmus corpus"
    )
    corpus_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of worker processes (default 1: run in-process)",
    )
    _add_strategy_args(corpus_parser)
    _add_cache_arg(corpus_parser)

    litmus_parser = sub.add_parser(
        "litmus",
        help="run a corpus of litmus tests across worker processes",
    )
    litmus_parser.add_argument(
        "tests", nargs="*", help="paths to .litmus files (default: built-in corpus)"
    )
    litmus_parser.add_argument(
        "--corpus",
        action="store_true",
        help="include the built-in corpus in addition to any files",
    )
    litmus_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="number of worker processes (default: CPU count)",
    )
    litmus_parser.add_argument(
        "--max-states", type=int, default=None, help="state budget per test"
    )
    _add_strategy_args(litmus_parser)
    _add_cache_arg(litmus_parser)

    gen_parser = sub.add_parser(
        "gen",
        help="generate a diy-style litmus suite (and optionally oracle-check it)",
    )
    gen_parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default 0)"
    )
    gen_parser.add_argument(
        "--size", type=int, default=20, help="number of distinct tests"
    )
    gen_parser.add_argument(
        "--max-threads",
        type=int,
        default=4,
        help="largest thread count to generate (default 4; up to 6 is "
        "validated against the solver-backed oracle)",
    )
    gen_parser.add_argument(
        "--max-run",
        type=int,
        default=2,
        help="longest internal-edge run per thread (default 2; up to 4 "
        "is validated against the solver-backed oracle)",
    )
    gen_parser.add_argument(
        "--out", default=None, help="write one .litmus file per test here"
    )
    gen_parser.add_argument(
        "--check",
        action="store_true",
        help="run the suite through the explorer and check envelope invariants",
    )
    gen_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --check (default: CPU count)",
    )
    gen_parser.add_argument(
        "--max-states",
        type=int,
        default=150000,
        help="state budget per test for --check (default 150000)",
    )
    _add_strategy_args(gen_parser)
    _add_cache_arg(gen_parser)

    serve_parser = sub.add_parser(
        "serve",
        help="run the long-running envelope service "
        "(persistent verdict cache + batch job queue)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765, help="bind port (0: ephemeral)"
    )
    serve_parser.add_argument(
        "--cache",
        default=":memory:",
        metavar="PATH",
        help="verdict cache sqlite file (default: in-memory, lost on exit)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker budget per batch (default: usable CPU count)",
    )

    client_parser = sub.add_parser(
        "client", help="talk to a running ppcmem2 serve daemon"
    )
    client_parser.add_argument(
        "--url",
        default=None,
        help="daemon base URL (default http://127.0.0.1:8765)",
    )
    client_sub = client_parser.add_subparsers(dest="action", required=True)
    client_sub.add_parser("health", help="daemon liveness + cache size")
    client_sub.add_parser("stats", help="cache hit/miss and queue counters")
    client_run = client_sub.add_parser(
        "run", help="run one litmus test through the daemon (synchronous)"
    )
    client_run.add_argument("test", help="path to a .litmus file")
    client_run.add_argument("--max-states", type=int, default=None)
    _add_strategy_args(client_run)
    client_submit = client_sub.add_parser(
        "submit", help="submit a batch job (async; --wait polls for results)"
    )
    client_submit.add_argument(
        "tests", nargs="*", help="paths to .litmus files"
    )
    client_submit.add_argument(
        "--gen-seed", type=int, default=None,
        help="also submit a generated suite with this seed",
    )
    client_submit.add_argument("--gen-size", type=int, default=20)
    client_submit.add_argument("--gen-max-threads", type=int, default=4)
    client_submit.add_argument("--gen-max-run", type=int, default=2)
    client_submit.add_argument("--max-states", type=int, default=None)
    client_submit.add_argument(
        "--wait", action="store_true", help="poll until done, print verdicts"
    )
    client_submit.add_argument("--timeout", type=float, default=600.0)
    _add_strategy_args(client_submit)
    client_status = client_sub.add_parser("status", help="poll a job")
    client_status.add_argument("job", help="job id from submit")
    client_results = client_sub.add_parser(
        "results", help="fetch a finished job's verdicts"
    )
    client_results.add_argument("job", help="job id from submit")

    elf_parser = sub.add_parser("elf", help="run an ELF binary sequentially")
    elf_parser.add_argument("binary", help="path to a Power64 ELF executable")
    elf_parser.add_argument(
        "--max-instructions", type=int, default=100000
    )

    args = parser.parse_args(argv)
    if args.command == "run":
        jobs = args.jobs
        if args.strategy != "sharded" and jobs is not None:
            print(
                "warning: run --jobs only applies to --strategy sharded; "
                "running single-process",
                file=sys.stderr,
            )
            jobs = None
        return _cmd_run(args.test, args, jobs)
    if args.command == "interactive":
        return _cmd_interactive(args.test)
    if args.command == "corpus":
        return _cmd_corpus(args.jobs, args)
    if args.command == "litmus":
        return _cmd_litmus(
            args.tests,
            args.corpus,
            args.jobs,
            args.max_states,
            args,
        )
    if args.command == "gen":
        return _cmd_gen(args)
    if args.command == "serve":
        from ..service.daemon import serve

        return serve(
            host=args.host,
            port=args.port,
            cache_path=args.cache,
            jobs=args.jobs,
        )
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "elf":
        return _cmd_elf(args.binary, args.max_instructions)
    return 2


def _cmd_run(path: str, args, jobs=None) -> int:
    from ..service.client import format_verdict

    with open(path) as handle:
        source = handle.read()
    engine = _engine_from(args)
    verdict = engine.run_request(_request_for(source, None, args, jobs=jobs))
    for line in format_verdict(dict(verdict.to_payload(), cached=verdict.cached)):
        print(line)
    return 0


def _cmd_interactive(path: str) -> int:
    with open(path) as handle:
        test = parse_litmus(handle.read())
    system, _addresses = build_system(test)
    step = 0
    while True:
        print("=" * 72)
        print(system.render())
        if system.is_final():
            print("-- final state reached --")
            return 0
        transitions = system.enumerate_transitions()
        if not transitions:
            print("-- no enabled transitions --")
            return 1
        print(f"\nEnabled transitions (step {step}):")
        for i, transition in enumerate(transitions):
            print(f"  [{i}] {transition}")
        try:
            choice = input("transition> ").strip()
        except EOFError:
            return 0
        if choice in ("q", "quit", "exit"):
            return 0
        try:
            index = int(choice) if choice else 0
            transition = transitions[index]
        except (ValueError, IndexError):
            print(f"bad choice {choice!r}")
            continue
        system = system.apply(transition)
        step += 1


def _cmd_corpus(jobs: int = 1, args=None) -> int:
    entries = corpus()
    engine = _engine_from(args)
    batch = engine.run_batch(
        [_request_for(entry.source, entry.name, args) for entry in entries],
        jobs=jobs,
    )
    statuses = {v.name: v.status for v in batch.verdicts}
    sound = True
    for entry in entries:
        status = statuses[entry.name]
        ok = status == entry.architected
        sound = sound and ok
        print(
            f"{entry.name:28s} model={status:9s} "
            f"architected={entry.architected:9s} "
            f"hw-observed={'yes' if entry.observed else 'no ':3s} "
            f"{'ok' if ok else 'MISMATCH'}"
        )
    if engine.cache is not None:
        print(f"cache: {batch.hits} hit(s), {batch.misses} miss(es)")
    return 0 if sound else 1


def _cmd_litmus(paths, include_corpus: bool, jobs, max_states,
                args=None) -> int:
    entries = []
    for path in paths:
        with open(path) as handle:
            source = handle.read()
        test = parse_litmus(source)
        entries.append((test.name, source))
    if include_corpus or not entries:
        entries.extend((e.name, e.source) for e in corpus())
    engine = _engine_from(args)
    batch = engine.run_batch(
        [
            _request_for(source, name, args, max_states=max_states)
            for name, source in entries
        ],
        jobs=jobs,
    )
    exhausted = 0
    for verdict in batch.verdicts:
        stats = verdict.stats
        cached = " [cached]" if verdict.cached else ""
        print(
            f"{verdict.name:28s} {verdict.status:10s} "
            f"states={stats['states_visited']:6d} "
            f"outcomes={len(verdict.outcomes):4d} "
            f"time={stats['seconds']:.2f}s{cached}"
        )
        if verdict.error:
            exhausted += 1
            print(f"  !! {verdict.error}")
    merged = batch.merged_stats()
    print(
        f"Corpus: {len(batch.verdicts)} tests across {batch.jobs} "
        f"worker(s) in {batch.wall_seconds:.2f}s wall "
        f"({merged.seconds:.2f}s exploration)"
    )
    rate = merged.transitions_taken / merged.seconds if merged.seconds else 0
    print(
        f"Merged stats: states={merged.states_visited} "
        f"transitions={merged.transitions_taken} "
        f"finals={merged.final_states} deadlocks={merged.deadlocks} "
        f"rate={rate:,.0f}/s"
    )
    if engine.cache is not None:
        print(f"cache: {batch.hits} hit(s), {batch.misses} miss(es)")
    if exhausted:
        print(f"{exhausted} test(s) exhausted the state budget")
        return 1
    return 0


def _cmd_gen(args) -> int:
    """Generate a diy suite; print (or save) it, optionally oracle-check it."""
    import os

    from ..litmus.diy import generate

    tests = generate(
        args.seed,
        args.size,
        max_threads=args.max_threads,
        max_run=args.max_run,
    )
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for test in tests:
            path = os.path.join(args.out, f"{test.name}.litmus")
            with open(path, "w") as handle:
                handle.write(test.source)
        print(f"wrote {len(tests)} tests to {args.out}")
    else:
        for test in tests:
            sys.stdout.write(test.source)
            sys.stdout.write("\n")
    families = sorted({test.family for test in tests})
    print(
        f"generated {len(tests)} distinct tests "
        f"({len(families)} families, seed {args.seed})",
        file=sys.stderr,
    )
    if not args.check:
        return 0

    from ..testgen.concurrent import check_suite

    extra = {}
    if args.cache:
        # A persistent cache turns repeated gen sweeps into lookups.
        extra["engine"] = _engine_from(args)
    report = check_suite(
        tests,
        jobs=args.jobs,
        max_states=args.max_states,
        strategy=_strategy_from(args),
        **extra,
    )
    # Diagnostics go to stderr: stdout stays a clean litmus stream.
    for check in report.checks:
        verdict = (
            "ok"
            if check.ok
            else ("--" if check.ok is None else "VIOLATION")
        )
        print(
            f"{check.name:36s} expected={str(check.expected):9s} "
            f"model={check.status:10s} {verdict}",
            file=sys.stderr,
        )
    print(
        f"Oracle: {report.checked} invariants checked "
        f"({report.solver_decided} decided by the axiomatic solver), "
        f"{len(report.violations)} violation(s), {report.skipped} over "
        f"state budget, {report.unasserted} unasserted, "
        f"{report.jobs} worker(s), {report.wall_seconds:.2f}s wall",
        file=sys.stderr,
    )
    # Violations are oracle soundness failures: exit non-zero so CI gen
    # smoke jobs fail loudly instead of scrolling past.
    return 1 if report.violations else 0


def _client_options(args) -> dict:
    """JSON-safe engine options from the shared strategy flags."""
    options = {}
    if args.strategy != "sequential":
        options["strategy"] = args.strategy
    if args.shard_depth is not None:
        options["shard_depth"] = args.shard_depth
    if args.reduction != "none":
        options["reduction"] = args.reduction
    if args.context_bound is not None:
        options["context_bound"] = args.context_bound
    if args.symmetry:
        options["symmetry"] = True
    if getattr(args, "max_states", None) is not None:
        options["max_states"] = args.max_states
    return options


def _cmd_client(args) -> int:
    import json

    from ..service.client import ServiceClient, ServiceError, format_verdict

    client = ServiceClient(url=args.url)
    try:
        if args.action == "health":
            print(json.dumps(client.health(), indent=2))
            return 0
        if args.action == "stats":
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.action == "status":
            print(json.dumps(client.job(args.job), indent=2))
            return 0
        if args.action == "results":
            results = client.results(args.job)
            for verdict in results["verdicts"]:
                for line in format_verdict(verdict):
                    print(line)
            return 0
        if args.action == "run":
            with open(args.test) as handle:
                source = handle.read()
            verdict = client.query(source, options=_client_options(args))
            for line in format_verdict(verdict):
                print(line)
            return 0
        if args.action == "submit":
            tests = []
            for path in args.tests:
                with open(path) as handle:
                    source = handle.read()
                tests.append((parse_litmus(source).name, source))
            gen = None
            if args.gen_seed is not None:
                gen = {
                    "seed": args.gen_seed,
                    "size": args.gen_size,
                    "max_threads": args.gen_max_threads,
                    "max_run": args.gen_max_run,
                }
            submitted = client.submit(
                tests, options=_client_options(args), gen=gen
            )
            if not args.wait:
                print(json.dumps(submitted, indent=2))
                return 0
            results = client.wait(submitted["job"], timeout=args.timeout)
            for verdict in results["verdicts"]:
                for line in format_verdict(verdict):
                    print(line)
            print(
                f"Job {results['job']}: {results['tests']} tests, "
                f"{results['cache_hits']} cache hit(s), "
                f"{results['cache_misses']} miss(es), "
                f"{results['seconds']:.2f}s"
            )
            return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(
            f"error: cannot reach daemon at {client.base_url}: {exc} "
            f"(start one with `ppcmem2 serve`)",
            file=sys.stderr,
        )
        return 1
    return 2


def _cmd_elf(path: str, max_instructions: int) -> int:
    from ..elf.loader import load_image, load_into_machine
    from ..elf.reader import read_elf
    from ..isa.sequential import SequentialMachine

    with open(path, "rb") as handle:
        image = read_elf(handle.read())
    loaded = load_image(image)
    machine = SequentialMachine()
    load_into_machine(machine, loaded)
    final = machine.run(loaded.entry, max_instructions)
    print(f"Halted at 0x{final:x} after {machine.instructions_retired} instructions")
    for i in range(32):
        value = machine.gpr(i)
        if value.is_known and value.to_int():
            print(f"  r{i} = 0x{value.to_int():x}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
