"""Unit tests for the thread subsystem: register resolution and mixed size."""

import pytest

from repro.concurrency.events import Write, WriteId
from repro.concurrency.exhaustive import explore
from repro.concurrency.params import ModelParams
from repro.concurrency.system import SystemState
from repro.concurrency.thread import ModelError, ThreadState
from repro.isa.assembler import Assembler
from repro.isa.model import default_model
from repro.sail.outcomes import RegSlice
from repro.sail.values import Bits

MODEL = default_model()
ASM = Assembler(MODEL)
X, Y = 0x1000, 0x1010


def _b64(value):
    return Bits.from_int(value, 64)


def _system(programs, registers, params=None, cells=((X, 4), (Y, 4)),
            cell_values=None):
    program_memory = {}
    entries = {}
    for tid, program in enumerate(programs):
        base = 0x50000 + tid * 0x10000
        words, _ = ASM.assemble_program(program, base)
        entries[tid] = base
        for i, word in enumerate(words):
            program_memory[base + 4 * i] = word
    memory = []
    for i, (addr, size) in enumerate(cells):
        value = (cell_values or {}).get(addr, 0)
        memory.append((addr, size, Bits.from_int(value, 8 * size)))
    return SystemState(
        MODEL, program_memory, entries, registers, memory,
        params=params or ModelParams(),
    )


class TestRegisterResolution:
    def test_value_from_most_recent_writer(self):
        system = _system([["li r1,1", "li r1,2", "mr r2,r1"]], {0: {}})
        assert system.threads[0].final_register_value(MODEL, "GPR2").to_int() == 2

    def test_fragments_assemble_across_writers(self):
        # mtocrf writes one CR field; mfcr reads all of CR: the value must
        # merge the 4-bit field write with the initial CR around it.
        system = _system(
            [["lis r5,0x0A00", "mtocrf cr1,r5", "mfcr r6"]],
            {0: {"CR": Bits.from_int(0x12345678, 32)}},
        )
        # r5[32..63] = 0x0A000000 -> CR field 1 (bits 36..39) := 0xA;
        # the other seven fields come from the initial CR value.
        value = system.threads[0].final_register_value(MODEL, "GPR6")
        assert value.to_int() == 0x1A345678

    def test_initial_register_fallback(self):
        system = _system([["mr r2,r9"]], {0: {"GPR9": _b64(123)}})
        assert system.threads[0].final_register_value(MODEL, "GPR2").to_int() == 123

    def test_blocked_read_resolves_after_writer(self):
        # The add is blocked on the load's register write until the read
        # satisfies; exploration must deliver exactly 0+5.
        system = _system(
            [["lwz r1,0(r9)", "addi r2,r1,5"]],
            {0: {"GPR9": _b64(X)}},
            cell_values={X: 0},
        )
        result = explore(system)
        values = {
            dict(((t, r), v) for t, r, v in regs).get((0, "GPR2"))
            for regs, _m in result.outcomes
        }
        assert values == {5}


class TestMixedSize:
    def test_byte_store_word_load_across_threads(self):
        system = _system(
            [["li r7,0xAB", "stb r7,1(r1)"],
             ["lwz r5,0(r1)"]],
            {0: {"GPR1": _b64(X)}, 1: {"GPR1": _b64(X)}},
        )
        result = explore(system)
        values = {
            dict(((t, r), v) for t, r, v in regs).get((1, "GPR5"))
            for regs, _m in result.outcomes
        }
        # Either the old word or the word with the byte spliced in.
        assert values == {0x00000000, 0x00AB0000}

    def test_overlapping_writes_coherence_ordered(self):
        # Two threads write overlapping footprints (word vs halfword); the
        # final memory must be one of the two consistent layerings.
        system = _system(
            [["lis r7,0x1111", "addi r7,r7,0x1111", "stw r7,0(r1)"],
             ["li r8,0x2222", "sth r8,0(r1)"]],
            {0: {"GPR1": _b64(X)}, 1: {"GPR1": _b64(X)}},
        )
        result = explore(system, memory_cells=[(X, 4)])
        finals = {
            memory[0][2] for _regs, memory in result.outcomes if memory
        }
        assert finals <= {0x11111111, 0x22221111}
        assert 0x11111111 in finals  # halfword then word
        assert 0x22221111 in finals  # word then halfword

    def test_misaligned_store_splits_into_bytes(self):
        system = _system(
            [["li r7,0x0102", "sth r7,1(r1)"]],
            {0: {"GPR1": _b64(X)}},
        )
        thread = system.threads[0]
        store = next(
            i for i in thread.instances.values()
            if i.instruction.mnemonic == "sth"
        )
        assert len(store.mem_writes) == 2  # two single-byte atomic units
        assert all(w.size == 1 for w in store.mem_writes)


class TestTreePruning:
    def test_prune_committed_instance_is_an_error(self):
        thread = ThreadState(0, {})
        word = ASM.assemble_instruction("li r1,1")
        instance = thread.new_instance(
            MODEL, 0x100, MODEL.decode_or_raise(word), None
        )
        instance.finished = True
        with pytest.raises(ModelError):
            thread.prune_subtree(instance.ioid)

    def test_descendants_walk(self):
        thread = ThreadState(0, {})
        word = ASM.assemble_instruction("li r1,1")
        decoded = MODEL.decode_or_raise(word)
        root = thread.new_instance(MODEL, 0x100, decoded, None)
        child = thread.new_instance(MODEL, 0x104, decoded, root.ioid)
        grandchild = thread.new_instance(MODEL, 0x108, decoded, child.ioid)
        ioids = {i.ioid for i in thread.descendants(root)}
        assert ioids == {child.ioid, grandchild.ioid}
        assert [p.ioid for p in thread.po_previous(grandchild)] == [
            child.ioid, root.ioid
        ]


class TestInstanceCap:
    def test_unresolved_loop_hits_cap_with_clear_error(self):
        # A self-loop that never resolves must raise, not hang.
        params = ModelParams(max_instances_per_thread=8)
        with pytest.raises(ModelError):
            system = _system(
                [["loop:", "lwz r1,0(r9)", "b loop"]],
                {0: {"GPR9": _b64(X)}},
                params=params,
            )
            explore(system)
