"""Parser for the herdtools ``.litmus`` format (POWER flavour).

Follows the front-end of Maranget et al.'s herdtools (section 6 of the
paper): a header line ``POWER <name>``, an initial-state block in braces,
a table of per-thread instruction columns separated by ``|`` with rows
terminated by ``;``, and a final condition (``exists``/``forall``/
``~exists``).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from .test import (
    And,
    Condition,
    LitmusTest,
    MemoryEquals,
    Not,
    Or,
    RegisterEquals,
    TrueCondition,
)


class LitmusSyntaxError(Exception):
    """Malformed litmus source.

    ``line`` is the 1-based source line the error was detected on (``None``
    when no single line can be blamed, e.g. an empty file).
    """

    def __init__(self, message: str, line: "int | None" = None):
        super().__init__(message)
        self.message = message
        self.line = line

    def __str__(self) -> str:
        if self.line is not None:
            return f"line {self.line}: {self.message}"
        return self.message


_DOUBLEWORD_MNEMONICS = re.compile(
    r"\b(ld|ldu|ldx|ldux|std|stdu|stdx|stdux|ldarx|stdcx\.|ldbrx|stdbrx|lwa|lwax|lwaux)\b"
)


def parse_litmus(source: str) -> LitmusTest:
    lines = source.splitlines()
    index = 0

    # -- header ---------------------------------------------------------
    while index < len(lines) and not lines[index].strip():
        index += 1
    if index >= len(lines):
        raise LitmusSyntaxError("empty litmus file")
    header = lines[index].split()
    if len(header) < 2:
        raise LitmusSyntaxError(f"bad header {lines[index]!r}", index + 1)
    arch, name = header[0], header[1]
    index += 1

    # -- skip description/metadata until '{' -----------------------------
    while index < len(lines) and "{" not in lines[index]:
        index += 1
    if index >= len(lines):
        raise LitmusSyntaxError("missing initial-state block")

    # -- initial state ----------------------------------------------------
    init_block_line = index + 1
    init_lines: List[Tuple[int, str]] = []
    line = lines[index][lines[index].index("{") + 1 :]
    while "}" not in line:
        init_lines.append((index + 1, line))
        index += 1
        if index >= len(lines):
            raise LitmusSyntaxError(
                "unterminated initial-state block", init_block_line
            )
        line = lines[index]
    init_lines.append((index + 1, line[: line.index("}")]))
    index += 1
    init_registers, init_memory = _parse_init(init_lines)

    # -- code table --------------------------------------------------------
    code_lines: List[Tuple[int, str]] = []
    while index < len(lines):
        stripped = lines[index].strip()
        if stripped.startswith(("exists", "forall", "~exists", "locations")):
            break
        if stripped:
            code_lines.append((index + 1, stripped))
        index += 1
    programs = _parse_code(code_lines)

    # -- condition -----------------------------------------------------------
    condition_line = index + 1 if index < len(lines) else len(lines)
    condition_text = " ".join(lines[index:]).strip()
    # 'locations [...]' preambles are informative; drop them.
    condition_text = re.sub(r"locations\s*\[[^\]]*\]", "", condition_text).strip()
    quantifier, condition = _parse_condition(condition_text, condition_line)

    return LitmusTest(
        name=name,
        arch=arch,
        programs=programs,
        init_registers=init_registers,
        init_memory=init_memory,
        quantifier=quantifier,
        condition=condition,
        source=source,
        doubleword=any(
            _DOUBLEWORD_MNEMONICS.search(line)
            for program in programs
            for line in program
        ),
    )


# ----------------------------------------------------------------------
# Initial state
# ----------------------------------------------------------------------


def _parse_init(
    init_lines: List[Tuple[int, str]],
) -> Tuple[Dict[int, Dict[str, Union[int, str]]], Dict[str, int]]:
    registers: Dict[int, Dict[str, Union[int, str]]] = {}
    memory: Dict[str, int] = {}
    for lineno, text in init_lines:
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise LitmusSyntaxError(f"bad init entry {entry!r}", lineno)
            lhs, rhs = (part.strip() for part in entry.split("=", 1))
            if ":" in lhs:
                tid_text, reg = (part.strip() for part in lhs.split(":", 1))
                try:
                    tid = int(tid_text)
                except ValueError:
                    raise LitmusSyntaxError(
                        f"bad thread id in init entry {entry!r}", lineno
                    )
                value: Union[int, str]
                try:
                    value = int(rhs, 0)
                except ValueError:
                    value = rhs  # symbolic address
                register = _canonical_register(reg, lineno)
                registers.setdefault(tid, {})[register] = value
            else:
                try:
                    memory[lhs] = int(rhs, 0)
                except ValueError:
                    raise LitmusSyntaxError(
                        f"memory init {entry!r} must be a constant", lineno
                    )
    return registers, memory


def _canonical_register(reg: str, line: "int | None" = None) -> str:
    reg = reg.strip().lower()
    if re.fullmatch(r"r\d+", reg):
        return f"GPR{int(reg[1:])}"
    if reg in ("lr", "ctr", "cr", "xer"):
        return reg.upper()
    raise LitmusSyntaxError(f"unsupported register {reg!r} in init", line)


# ----------------------------------------------------------------------
# Code table
# ----------------------------------------------------------------------


def _parse_code(code_lines: List[Tuple[int, str]]) -> List[List[str]]:
    if not code_lines:
        raise LitmusSyntaxError("no code section")
    rows: List[List[str]] = []
    for lineno, line in code_lines:
        if not line.endswith(";"):
            raise LitmusSyntaxError(f"code row {line!r} missing ';'", lineno)
        cells = [cell.strip() for cell in line[:-1].split("|")]
        rows.append(cells)
    width = len(rows[0])
    for (lineno, line), row in zip(code_lines, rows):
        if len(row) != width:
            raise LitmusSyntaxError(
                f"ragged code table: row has {len(row)} columns, "
                f"expected {width}",
                lineno,
            )
    header = rows[0]
    if all(re.fullmatch(r"P\d+", cell) for cell in header):
        rows = rows[1:]
    programs: List[List[str]] = [[] for _ in range(width)]
    for row in rows:
        for column, cell in enumerate(row):
            if cell:
                programs[column].append(cell)
    return programs


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------


class _ConditionParser:
    def __init__(self, text: str, line: "int | None" = None):
        self._tokens = re.findall(
            r"/\\|\\/|~|\(|\)|\[|\]|=|[A-Za-z_][A-Za-z0-9_.]*|\d+:\w+|-?\d[xX0-9a-fA-F]*",
            text,
        )
        self._pos = 0
        self._line = line

    def _peek(self) -> str:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else ""

    def _next(self) -> str:
        token = self._peek()
        self._pos += 1
        return token

    def _value(self) -> int:
        token = self._next()
        try:
            return int(token, 0)
        except ValueError:
            raise LitmusSyntaxError(
                f"expected a value in condition, got {token!r}", self._line
            )

    def parse(self) -> Condition:
        condition = self._parse_or()
        if self._peek():
            raise LitmusSyntaxError(
                f"trailing condition tokens: {self._peek()!r}", self._line
            )
        return condition

    def _parse_or(self) -> Condition:
        left = self._parse_and()
        while self._peek() == "\\/":
            self._next()
            left = Or(left, self._parse_and())
        return left

    def _parse_and(self) -> Condition:
        left = self._parse_atom()
        while self._peek() == "/\\":
            self._next()
            left = And(left, self._parse_atom())
        return left

    def _parse_atom(self) -> Condition:
        token = self._peek()
        if token == "(":
            self._next()
            inner = self._parse_or()
            if self._next() != ")":
                raise LitmusSyntaxError("missing ')' in condition", self._line)
            return inner
        if token == "~":
            self._next()
            return Not(self._parse_atom())
        if token == "true":
            self._next()
            return TrueCondition()
        if token == "[":
            self._next()
            location = self._next()
            if self._next() != "]":
                raise LitmusSyntaxError("missing ']' in condition", self._line)
            if self._next() != "=":
                raise LitmusSyntaxError("expected '=' in condition", self._line)
            return MemoryEquals(location, self._value())
        if re.fullmatch(r"\d+:\w+", token):
            self._next()
            tid_text, reg = token.split(":")
            if self._next() != "=":
                raise LitmusSyntaxError("expected '=' in condition", self._line)
            return RegisterEquals(
                int(tid_text),
                _canonical_register(reg, self._line),
                self._value(),
            )
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_.]*", token):
            self._next()
            if self._next() != "=":
                raise LitmusSyntaxError("expected '=' in condition", self._line)
            return MemoryEquals(token, self._value())
        raise LitmusSyntaxError(f"bad condition token {token!r}", self._line)


def _parse_condition(
    text: str, line: "int | None" = None
) -> Tuple[str, Condition]:
    text = text.strip()
    if not text:
        return "exists", TrueCondition()
    if text.startswith("~exists"):
        quantifier, rest = "not exists", text[len("~exists") :]
    elif text.startswith("exists"):
        quantifier, rest = "exists", text[len("exists") :]
    elif text.startswith("forall"):
        quantifier, rest = "forall", text[len("forall") :]
    else:
        raise LitmusSyntaxError(f"bad condition {text!r}", line)
    return quantifier, _ConditionParser(rest, line).parse()
