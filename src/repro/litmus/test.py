"""Litmus test representation and final-condition evaluation.

A litmus test names an initial state (registers and memory), per-thread
assembly programs, and a final-state condition (``exists (...)`` etc.).
The condition language follows herdtools: conjunction ``/\\``, disjunction
``\\/``, negation ``~``, atoms ``T:rN=v`` (register) and ``[x]=v`` or
``x=v`` (memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


# ----------------------------------------------------------------------
# Condition AST
# ----------------------------------------------------------------------


class Condition:
    __slots__ = ()


@dataclass(frozen=True)
class RegisterEquals(Condition):
    tid: int
    register: str  # architected instance name, e.g. "GPR5"
    value: int


@dataclass(frozen=True)
class MemoryEquals(Condition):
    location: str  # symbolic variable name
    value: int


@dataclass(frozen=True)
class Not(Condition):
    operand: Condition


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class TrueCondition(Condition):
    pass


def evaluate_condition(
    condition: Condition,
    registers: Dict[Tuple[int, str], Optional[int]],
    memory: Dict[str, Optional[int]],
) -> bool:
    """Evaluate a condition over one outcome.

    ``None`` values (undef bits in a final register) never satisfy an
    equality -- the envelope still contains the execution, but the litmus
    condition asks for a specific concrete value.
    """
    if isinstance(condition, RegisterEquals):
        return registers.get((condition.tid, condition.register)) == condition.value
    if isinstance(condition, MemoryEquals):
        return memory.get(condition.location) == condition.value
    if isinstance(condition, Not):
        return not evaluate_condition(condition.operand, registers, memory)
    if isinstance(condition, And):
        return evaluate_condition(
            condition.left, registers, memory
        ) and evaluate_condition(condition.right, registers, memory)
    if isinstance(condition, Or):
        return evaluate_condition(
            condition.left, registers, memory
        ) or evaluate_condition(condition.right, registers, memory)
    if isinstance(condition, TrueCondition):
        return True
    raise TypeError(f"unknown condition {condition!r}")


def condition_registers(condition: Condition) -> List[Tuple[int, str]]:
    """All (tid, register) pairs a condition mentions."""
    if isinstance(condition, RegisterEquals):
        return [(condition.tid, condition.register)]
    if isinstance(condition, (And, Or)):
        return condition_registers(condition.left) + condition_registers(
            condition.right
        )
    if isinstance(condition, Not):
        return condition_registers(condition.operand)
    return []


def condition_locations(condition: Condition) -> List[str]:
    """All memory locations a condition mentions."""
    if isinstance(condition, MemoryEquals):
        return [condition.location]
    if isinstance(condition, (And, Or)):
        return condition_locations(condition.left) + condition_locations(
            condition.right
        )
    if isinstance(condition, Not):
        return condition_locations(condition.operand)
    return []


# ----------------------------------------------------------------------
# The test itself
# ----------------------------------------------------------------------


@dataclass
class LitmusTest:
    """A parsed litmus test, ready for the runner."""

    name: str
    arch: str
    programs: List[List[str]]  # instruction text per thread
    init_registers: Dict[int, Dict[str, Union[int, str]]]  # rN -> value/var
    init_memory: Dict[str, int]  # variable -> initial value
    quantifier: str  # "exists" | "forall" | "not exists"
    condition: Condition
    source: str = ""
    #: variables that should be doubleword cells (ld/std tests)
    doubleword: bool = False

    @property
    def thread_count(self) -> int:
        return len(self.programs)

    def locations(self) -> List[str]:
        names = set(self.init_memory)
        for assignments in self.init_registers.values():
            for value in assignments.values():
                if isinstance(value, str):
                    names.add(value)
        names.update(condition_locations(self.condition))
        return sorted(names)
