#!/usr/bin/env python3
"""A tour of POWER barrier and dependency strength, via the oracle.

For one communication shape (message passing), this sweeps the reader-side
ordering mechanism from nothing up to the full sync barrier and reports
which choices close the stale-read outcome -- reproducing the section-2
discussion of what each mechanism does and does not guarantee.

Run:  python examples/barrier_tour.py
"""

from repro import parse_litmus, run_litmus

TEMPLATE = """
POWER MP-variant
{{
0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;
1:r1=x; 1:r2=y; 1:r7=1;
x=0; y=0;
}}
 P0           | P1           ;
 stw r7,0(r1) | lwz r5,0(r2) ;
 sync         | {reader}     ;
 stw r8,0(r2) | {load}       ;
exists (1:r5=1 /\\ 1:r4=0)
"""

#: (label, reader-side middle rows, final load, what the paper says)
VARIANTS = [
    ("nothing",
     [], "lwz r4,0(r1)",
     "reads may satisfy out of order: stale data allowed"),
    ("control dependency (bne)",
     ["cmpw r5,r7", "beq LL", "LL:"], "lwz r4,0(r1)",
     "branches are speculated: reads pass them (section 2.1.1)"),
    ("control + isync",
     ["cmpw r5,r7", "beq LL", "LL:", "isync"], "lwz r4,0(r1)",
     "isync stops reads until the branch commits"),
    ("address dependency (xor)",
     ["xor r6,r5,r5"], "lwzx r4,r6,r1",
     "the address needs the first value: ordering for free"),
    ("lwsync",
     ["lwsync"], "lwz r4,0(r1)",
     "orders read-read: enough on the reader side"),
    ("sync",
     ["sync"], "lwz r4,0(r1)",
     "the heavyweight barrier: always enough"),
]


def build(reader_rows, load):
    from itertools import zip_longest

    left = ["stw r7,0(r1)", "sync", "stw r8,0(r2)"]
    right = ["lwz r5,0(r2)"] + list(reader_rows) + [load]
    lines = [
        "POWER MP-variant",
        "{",
        "0:r1=x; 0:r2=y; 0:r7=1; 0:r8=1;",
        "1:r1=x; 1:r2=y; 1:r7=1;",
        "x=0; y=0;",
        "}",
        " P0 | P1 ;",
    ]
    for l, r in zip_longest(left, right, fillvalue=""):
        lines.append(f" {l} | {r} ;")
    lines.append("exists (1:r5=1 /\\ 1:r4=0)")
    return "\n".join(lines)


def main() -> None:
    print(__doc__)
    print(f"{'reader-side mechanism':28s} {'stale read':10s} states  note")
    print("-" * 100)
    for label, rows, load, note in VARIANTS:
        test = parse_litmus(build(rows, load))
        result = run_litmus(test)
        print(
            f"{label:28s} {result.status:10s} "
            f"{result.exploration.stats.states_visited:6d}  {note}"
        )


if __name__ == "__main__":
    main()
