"""The operational concurrency model (sections 2 and 5 of the paper)."""

from .events import BarrierEvent, BarrierId, Write, WriteId
from .exhaustive import (
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    Witness,
    explore,
    find_witness,
    run_one,
)
from .keys import CachedKey
from .parallel import CorpusReport, CorpusTestResult, explore_corpus
from .params import DEFAULT_PARAMS, ModelParams
from .storage import CoherenceViolation, StorageSubsystem
from .system import SystemState, Transition
from .thread import InstructionInstance, ModelError, ThreadState

__all__ = [
    "BarrierEvent",
    "BarrierId",
    "CachedKey",
    "CoherenceViolation",
    "CorpusReport",
    "CorpusTestResult",
    "DEFAULT_PARAMS",
    "ExplorationLimit",
    "ExplorationResult",
    "ExplorationStats",
    "InstructionInstance",
    "ModelError",
    "ModelParams",
    "StorageSubsystem",
    "SystemState",
    "ThreadState",
    "Transition",
    "Witness",
    "Write",
    "WriteId",
    "explore",
    "explore_corpus",
    "find_witness",
    "run_one",
]
