"""Small-step interpreter for Sail instruction descriptions.

The interpreter realises the paper's section 2.2 interface:

    val interp : instruction_state -> outcome
    val initial_state : context -> instruction -> instruction_state

``InterpState`` is a CEK-style machine state: a control item, an environment
of local variables and instruction fields, and a continuation stack.  States
are immutable (every step builds a new state), hashable, and cheap to keep
around, which is what lets the concurrency model

  * save the continuation of a pending register/memory read while other
    instructions make progress,
  * snapshot and *restart* instructions (section 5), and
  * re-run partially executed instructions exhaustively to recompute their
    potential memory footprints (section 2.1.6).

Pseudocode is interpreted sequentially, as written -- the paper's choice 3 in
section 2.1.6 -- so address register reads that textually precede data reads
resolve first, which is what allows ``LB+datas+WW``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from . import ast
from .outcomes import (
    Barrier,
    Done,
    Internal,
    Outcome,
    ReadMem,
    ReadReg,
    RegSlice,
    WriteMem,
    WriteReg,
)
from .values import (
    Bits,
    SailValueError,
    UndefUsedError,
    UnknownUsedError,
    bool_to_bit,
    truth,
)

Value = Union[Bits, int]


class SailRuntimeError(Exception):
    """A dynamic error in pseudocode execution (a model bug, not a program one)."""


class _UnknownInt:
    """An integer whose value is not yet resolved (analysis mode only).

    Produced by ``to_num`` over ``unknown`` bits during exhaustive footprint
    analysis (e.g. the rotate amount of ``rlwnm`` before its register read
    resolves); absorbs integer arithmetic so downstream builtins can report
    lifted results instead of crashing.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "unknown-int"

    def _absorb(self, _other):
        return self

    __add__ = __radd__ = __sub__ = __rsub__ = _absorb
    __mul__ = __rmul__ = __floordiv__ = __rfloordiv__ = _absorb
    __mod__ = __rmod__ = __neg__ = _absorb

    def __hash__(self):
        return 0x5EED

    def __eq__(self, other):
        return isinstance(other, _UnknownInt)


UNKNOWN_INT = _UnknownInt()


class LiftedBranch(Exception):
    """A branch condition evaluated to undef/unknown during exhaustive analysis.

    Carries the two successor states; the analysis driver explores both.
    """

    def __init__(self, states):
        super().__init__("branch on lifted condition")
        self.states = states


class InterpState:
    """An immutable interpreter state (control, environment, continuation)."""

    __slots__ = ("control", "env", "kont", "_hash", "_key_tuple")

    def __init__(self, control, env: Dict[str, Value], kont):
        object.__setattr__(self, "control", control)
        object.__setattr__(self, "env", env)
        object.__setattr__(self, "kont", kont)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_key_tuple", None)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("InterpState is immutable")

    def _key(self):
        cached = self._key_tuple
        if cached is None:
            cached = (self.control, tuple(sorted(self.env.items())), self.kont)
            object.__setattr__(self, "_key_tuple", cached)
        return cached

    def __hash__(self):
        cached = self._hash
        if cached is None:
            cached = hash(self._key())
            object.__setattr__(self, "_hash", cached)
        return cached

    def __eq__(self, other):
        if not isinstance(other, InterpState):
            return NotImplemented
        return self._key() == other._key()

    def with_control(self, control) -> "InterpState":
        return InterpState(control, self.env, self.kont)


# Control item tags.
_STMT = 0  # (_STMT, stmt)
_EVAL = 1  # (_EVAL, expr)
_RET = 2  # (_RET, value)
_PENDING = 3  # (_PENDING,) -- waiting for the model to resume with a value


def initial_state(body: ast.Stmt, fields: Dict[str, Value]) -> InterpState:
    """The instruction state at the start of execution.

    ``fields`` binds the instruction's opcode fields (as concrete ``Bits``)
    into the environment, playing the role of the paper's
    ``initial_state : context -> instruction -> instruction_state``.
    """
    return InterpState((_STMT, body), dict(fields), None)


def resume(state: InterpState, value: Optional[Value]) -> InterpState:
    """Supply the value a pending outcome was waiting for."""
    if state.control[0] != _PENDING:
        raise SailRuntimeError("resume on a state that is not pending")
    return InterpState((_RET, value), state.env, state.kont)


def _pending(env, kont) -> InterpState:
    return InterpState((_PENDING,), env, kont)


# ----------------------------------------------------------------------
# Value helpers
# ----------------------------------------------------------------------


def as_int(value: Value) -> int:
    """Coerce to a Python integer (unsigned reading of bitvectors)."""
    if isinstance(value, int):
        return value
    if isinstance(value, Bits):
        return value.to_int()
    raise SailRuntimeError(f"cannot use {value!r} as an integer")


def as_bits(value: Value, width: Optional[int] = None) -> Bits:
    """Coerce to ``Bits``; integers need an explicit target width."""
    if isinstance(value, Bits):
        if width is not None and value.width != width:
            raise SailRuntimeError(
                f"width mismatch: got bit[{value.width}], expected bit[{width}]"
            )
        return value
    if isinstance(value, int):
        if width is None:
            raise SailRuntimeError(
                f"integer {value} used where a sized bitvector is required"
            )
        return Bits.from_int(value, width)
    raise SailRuntimeError(f"cannot use {value!r} as a bitvector")


def _condition(value: Value, fork: bool, env, kont, then_state, else_state):
    """Evaluate a branch condition; fork on lifted bits during analysis."""
    if isinstance(value, int):
        return then_state if value else else_state
    if isinstance(value, Bits):
        if value.width != 1:
            raise SailRuntimeError(f"condition has width {value.width}")
        if not value.is_known and fork:
            raise LiftedBranch([then_state, else_state])
        return then_state if truth(value) else else_state
    raise SailRuntimeError(f"bad condition value {value!r}")


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------

_ARITH_OPS = {"+", "-", "*"}
_COMPARE_OPS = {"==", "!=", "<", ">", "<=", ">=", "<u", ">u", "<=u", ">=u"}
_BITWISE_OPS = {"&", "|", "^"}

_SIGNED_COMPARE = {
    "<": Bits.lt_s,
    ">": Bits.gt_s,
    "<=": Bits.le_s,
    ">=": Bits.ge_s,
}
_UNSIGNED_COMPARE = {
    "<u": Bits.lt_u,
    ">u": Bits.gt_u,
    "<=u": Bits.le_u,
    ">=u": Bits.ge_u,
}
_INT_COMPARE = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "<u": lambda a, b: a < b,
    ">u": lambda a, b: a > b,
    "<=u": lambda a, b: a <= b,
    ">=u": lambda a, b: a >= b,
}


def _binop(op: str, left: Value, right: Value) -> Value:
    if isinstance(left, _UnknownInt) or isinstance(right, _UnknownInt):
        # Analysis-mode unresolved integers absorb arithmetic and make
        # comparisons unknown (so conditions fork).
        if op in _COMPARE_OPS:
            return Bits.unknown(1)
        return UNKNOWN_INT
    both_bits = isinstance(left, Bits) and isinstance(right, Bits)
    if op == ":":
        if not both_bits:
            raise SailRuntimeError("concatenation needs two bitvectors")
        return left.concat(right)
    if op in _ARITH_OPS:
        if both_bits:
            if op == "+":
                return left.add(right)
            if op == "-":
                return left.sub(right)
            return left.mul(right)
        # Mixed or integer arithmetic happens in the integer domain
        # (loop indices, register numbers, bit positions).
        a, b = as_int(left), as_int(right)
        return a + b if op == "+" else a - b if op == "-" else a * b
    if op in ("/", "%"):
        a, b = as_int(left), as_int(right)
        if b == 0:
            raise SailRuntimeError("integer division by zero in pseudocode")
        return a // b if op == "/" else a % b
    if op in _COMPARE_OPS:
        if isinstance(left, int) and isinstance(right, int):
            return bool_to_bit(_INT_COMPARE[op](left, right))
        if isinstance(left, int):
            left = Bits.from_int(left, right.width)
        elif isinstance(right, int):
            right = Bits.from_int(right, left.width)
        if op == "==":
            return left.eq(right)
        if op == "!=":
            return left.ne(right)
        if op in _SIGNED_COMPARE:
            return _SIGNED_COMPARE[op](left, right)
        return _UNSIGNED_COMPARE[op](left, right)
    if op in _BITWISE_OPS:
        if isinstance(left, int) or isinstance(right, int):
            raise SailRuntimeError(f"bitwise {op} needs two sized bitvectors")
        if op == "&":
            return left.land(right)
        if op == "|":
            return left.lor(right)
        return left.lxor(right)
    if op in ("<<", ">>"):
        amount = as_int(right)
        if isinstance(left, int):
            return left << amount if op == "<<" else left >> amount
        return left.shiftl(amount) if op == "<<" else left.shiftr(amount)
    raise SailRuntimeError(f"unknown operator {op}")


def _unop(op: str, value: Value) -> Value:
    if op == "~":
        if isinstance(value, Bits):
            return value.lnot()
        raise SailRuntimeError("~ needs a bitvector")
    if op == "-":
        if isinstance(value, Bits):
            return value.neg()
        return -value
    raise SailRuntimeError(f"unknown unary operator {op}")


# ----------------------------------------------------------------------
# Builtins
# ----------------------------------------------------------------------


def _builtin_exts(args):
    if len(args) == 1:
        return as_bits(args[0]).exts(64)
    return as_bits(args[1]).exts(as_int(args[0]))


def _builtin_extz(args):
    if len(args) == 1:
        return as_bits(args[0]).extz(64)
    return as_bits(args[1]).extz(as_int(args[0]))


def _builtin_mask(args):
    """POWER rotate-mask generator MASK(mstart, mstop) over 64 bits.

    When mstart <= mstop the mask has ones in mstart..mstop; otherwise it
    wraps (ones in mstart..63 and 0..mstop), as in the rldic* instructions.
    """
    mstart, mstop = as_int(args[0]), as_int(args[1])
    if not (0 <= mstart < 64 and 0 <= mstop < 64):
        raise SailRuntimeError(f"MASK bounds out of range: {mstart}, {mstop}")
    result = Bits.zeros(64)
    if mstart <= mstop:
        return result.update_slice(mstart, mstop, Bits.all_ones(mstop - mstart + 1))
    result = result.update_slice(mstart, 63, Bits.all_ones(64 - mstart))
    return result.update_slice(0, mstop, Bits.all_ones(mstop + 1))


def _builtin_multiply(args, signed: bool):
    width = as_int(args[0])
    a, b = as_bits(args[1]), as_bits(args[2])
    if not (a.is_known and b.is_known):
        if a.has_unknown or b.has_unknown:
            return Bits.unknown(width)
        return Bits.undef(width)
    x = a.to_signed() if signed else a.to_int()
    y = b.to_signed() if signed else b.to_int()
    return Bits.from_int(x * y, width)


_BUILTINS = {
    "EXTS": _builtin_exts,
    "EXTZ": _builtin_extz,
    "MASK": lambda args: (
        Bits.unknown(64)
        if any(isinstance(a, _UnknownInt) for a in args)
        else _builtin_mask(args)
    ),
    "ROTL": lambda args: (
        Bits.unknown(as_bits(args[0]).width)
        if isinstance(args[1], _UnknownInt)
        else as_bits(args[0]).rotl(as_int(args[1]))
    ),
    "to_num": lambda args: as_int(args[0]),
    "UNDEFINED": lambda args: Bits.undef(as_int(args[0])),
    "UNKNOWN": lambda args: Bits.unknown(as_int(args[0])),
    "length": lambda args: as_bits(args[0]).width,
    "REPLICATE": lambda args: as_bits(args[0]).replicate(as_int(args[1])),
    "MULTIPLY_S": lambda args: _builtin_multiply(args, True),
    "MULTIPLY_U": lambda args: _builtin_multiply(args, False),
    "DIVS": lambda args: as_bits(args[0]).divs(as_bits(args[1])),
    "DIVU": lambda args: as_bits(args[0]).divu(as_bits(args[1])),
    "MODU": lambda args: as_bits(args[0]).modu(as_bits(args[1])),
    "COUNT_LEADING_ZEROS": lambda args: as_bits(args[0]).count_leading_zeros(),
}


# ----------------------------------------------------------------------
# The step function
# ----------------------------------------------------------------------

# Frame tags.
_F_SEQ = "seq"  # (tag, block, next_index)
_F_IFS = "ifs"  # (tag, node)
_F_IFE = "ife"  # (tag, node)
_F_LOOP = "loop"  # (tag, node, stop)
_F_COLLECT = "collect"  # (tag, apply_tag, node, exprs, index, values)
_F_ASSIGNVAR = "assignvar"  # (tag, name)
_F_DECL = "decl"  # (tag, node)


class Interp:
    """The interpreter, parameterised by the register registry (context)."""

    def __init__(self, registry):
        self._registry = registry

    # -- public API ----------------------------------------------------

    def step(self, state: InterpState, fork_on_lifted: bool = False) -> Outcome:
        """Execute one step; returns an ``Outcome`` (``Internal`` for pure steps)."""
        tag = state.control[0]
        if tag == _STMT:
            return self._step_stmt(state, state.control[1])
        if tag == _EVAL:
            return self._step_eval(state, state.control[1])
        if tag == _RET:
            return self._apply(state, state.control[1], fork_on_lifted)
        raise SailRuntimeError("cannot step a pending state; resume it first")

    def run_to_outcome(
        self, state: InterpState, fork_on_lifted: bool = False, fuel: int = 100000
    ) -> Outcome:
        """Take internal steps until the next externally visible outcome."""
        for _ in range(fuel):
            outcome = self.step(state, fork_on_lifted)
            if isinstance(outcome, Internal):
                state = outcome.state
                continue
            return outcome
        raise SailRuntimeError("instruction did not reach an outcome (fuel spent)")

    # -- statements ------------------------------------------------------

    def _step_stmt(self, state: InterpState, stmt: ast.Stmt) -> Outcome:
        env, kont = state.env, state.kont
        if isinstance(stmt, ast.Block):
            if not stmt.body:
                return Internal(InterpState((_RET, None), env, kont))
            frame = (_F_SEQ, stmt, 1)
            return Internal(
                InterpState((_STMT, stmt.body[0]), env, (frame, kont))
            )
        if isinstance(stmt, ast.Decl):
            frame = (_F_DECL, stmt)
            return Internal(InterpState((_EVAL, stmt.init), env, (frame, kont)))
        if isinstance(stmt, ast.Assign):
            return self._step_assign(state, stmt)
        if isinstance(stmt, ast.If):
            frame = (_F_IFS, stmt)
            return Internal(InterpState((_EVAL, stmt.cond), env, (frame, kont)))
        if isinstance(stmt, ast.Foreach):
            return self._collect(
                env, kont, "foreach_init", stmt, (stmt.start, stmt.stop)
            )
        if isinstance(stmt, ast.BarrierStmt):
            return Barrier(stmt.kind, _pending(env, kont))
        if isinstance(stmt, ast.Nop):
            return Internal(InterpState((_RET, None), env, kont))
        raise SailRuntimeError(f"unknown statement {stmt!r}")

    def _step_assign(self, state: InterpState, stmt: ast.Assign) -> Outcome:
        env, kont = state.env, state.kont
        lhs = stmt.lhs
        if isinstance(lhs, ast.VarLHS):
            frame = (_F_ASSIGNVAR, lhs.name)
            return Internal(InterpState((_EVAL, stmt.value), env, (frame, kont)))
        if isinstance(lhs, ast.VarSliceLHS):
            return self._collect(
                env, kont, "writevarslice", stmt, (lhs.lo, lhs.hi, stmt.value)
            )
        if isinstance(lhs, ast.RegLHS):
            spec = lhs.reg
            exprs = tuple(
                e for e in (spec.index, spec.lo, spec.hi) if e is not None
            ) + (stmt.value,)
            return self._collect(env, kont, "writereg", stmt, exprs)
        if isinstance(lhs, ast.MemLHS):
            return self._collect(
                env, kont, "writemem", stmt, (lhs.addr, lhs.size, stmt.value)
            )
        raise SailRuntimeError(f"unknown l-value {lhs!r}")

    # -- expressions -----------------------------------------------------

    def _step_eval(self, state: InterpState, expr: ast.Expr) -> Outcome:
        env, kont = state.env, state.kont
        if isinstance(expr, ast.Lit):
            return Internal(InterpState((_RET, expr.value), env, kont))
        if isinstance(expr, ast.IntLit):
            return Internal(InterpState((_RET, expr.value), env, kont))
        if isinstance(expr, ast.Var):
            try:
                value = env[expr.name]
            except KeyError:
                raise SailRuntimeError(f"unbound variable {expr.name}")
            return Internal(InterpState((_RET, value), env, kont))
        if isinstance(expr, ast.RegRead):
            spec = expr.reg
            exprs = tuple(
                e for e in (spec.index, spec.lo, spec.hi) if e is not None
            )
            return self._collect(env, kont, "regread", expr, exprs)
        if isinstance(expr, ast.MemRead):
            return self._collect(env, kont, "memread", expr, (expr.addr, expr.size))
        if isinstance(expr, ast.StoreConditional):
            return self._collect(
                env, kont, "storecond", expr, (expr.addr, expr.size, expr.value)
            )
        if isinstance(expr, ast.Unop):
            return self._collect(env, kont, "unop", expr, (expr.operand,))
        if isinstance(expr, ast.Binop):
            return self._collect(env, kont, "binop", expr, (expr.left, expr.right))
        if isinstance(expr, ast.SliceExpr):
            return self._collect(
                env, kont, "slice", expr, (expr.operand, expr.lo, expr.hi)
            )
        if isinstance(expr, ast.IndexExpr):
            return self._collect(env, kont, "index", expr, (expr.operand, expr.index))
        if isinstance(expr, ast.Call):
            return self._collect(env, kont, "call", expr, expr.args)
        if isinstance(expr, ast.IfExpr):
            frame = (_F_IFE, expr)
            return Internal(InterpState((_EVAL, expr.cond), env, (frame, kont)))
        raise SailRuntimeError(f"unknown expression {expr!r}")

    def _collect(self, env, kont, apply_tag, node, exprs) -> Outcome:
        """Evaluate ``exprs`` left to right, then apply ``apply_tag``."""
        exprs = tuple(exprs)
        if not exprs:
            return self._apply_collected(
                apply_tag, node, (), env, kont
            )
        frame = (_F_COLLECT, apply_tag, node, exprs, 0, ())
        return Internal(InterpState((_EVAL, exprs[0]), env, (frame, kont)))

    # -- continuation application ---------------------------------------

    def _apply(self, state: InterpState, value, fork: bool) -> Outcome:
        env, kont = state.env, state.kont
        if kont is None:
            return Done()
        frame, parent = kont
        tag = frame[0]
        if tag == _F_SEQ:
            block, index = frame[1], frame[2]
            if index >= len(block.body):
                return Internal(InterpState((_RET, None), env, parent))
            new_frame = (_F_SEQ, block, index + 1)
            return Internal(
                InterpState((_STMT, block.body[index]), env, (new_frame, parent))
            )
        if tag == _F_IFS:
            node = frame[1]
            then_state = InterpState((_STMT, node.then), env, parent)
            if node.orelse is None:
                else_state = InterpState((_RET, None), env, parent)
            else:
                else_state = InterpState((_STMT, node.orelse), env, parent)
            return Internal(
                _condition(value, fork, env, parent, then_state, else_state)
            )
        if tag == _F_IFE:
            node = frame[1]
            then_state = InterpState((_EVAL, node.then), env, parent)
            else_state = InterpState((_EVAL, node.orelse), env, parent)
            return Internal(
                _condition(value, fork, env, parent, then_state, else_state)
            )
        if tag == _F_LOOP:
            node, stop = frame[1], frame[2]
            current = as_int(env[node.var])
            nxt = current - 1 if node.downto else current + 1
            finished = nxt < stop if node.downto else nxt > stop
            if finished:
                return Internal(InterpState((_RET, None), env, parent))
            new_env = dict(env)
            new_env[node.var] = nxt
            return Internal(
                InterpState((_STMT, node.body), new_env, (frame, parent))
            )
        if tag == _F_ASSIGNVAR:
            name = frame[1]
            new_env = dict(env)
            old = env.get(name)
            if isinstance(old, Bits) and isinstance(value, int):
                value = Bits.from_int(value, old.width)
            new_env[name] = value
            return Internal(InterpState((_RET, None), new_env, parent))
        if tag == _F_DECL:
            node = frame[1]
            new_env = dict(env)
            new_env[node.name] = self._coerce_decl(node.typ, value)
            return Internal(InterpState((_RET, None), new_env, parent))
        if tag == _F_COLLECT:
            _, apply_tag, node, exprs, index, values = frame
            values = values + (value,)
            if index + 1 < len(exprs):
                new_frame = (_F_COLLECT, apply_tag, node, exprs, index + 1, values)
                return Internal(
                    InterpState((_EVAL, exprs[index + 1]), env, (new_frame, parent))
                )
            return self._apply_collected(
                apply_tag, node, values, env, parent, fork
            )
        raise SailRuntimeError(f"unknown frame {tag!r}")

    def _coerce_decl(self, typ: ast.Type, value: Value) -> Value:
        if typ.kind == "bits":
            if isinstance(value, int):
                return Bits.from_int(value, typ.width)
            return as_bits(value, typ.width)
        if typ.kind == "int":
            if isinstance(value, _UnknownInt):
                return value
            return as_int(value)
        if typ.kind == "bool":
            if isinstance(value, Bits):
                return value
            return bool_to_bit(bool(value))
        raise SailRuntimeError(f"unknown type {typ}")

    # -- collected applications ------------------------------------------

    def _apply_collected(
        self, apply_tag, node, values, env, kont, fork: bool = False
    ) -> Outcome:
        if apply_tag == "binop":
            result = _binop(node.op, values[0], values[1])
            return Internal(InterpState((_RET, result), env, kont))
        if apply_tag == "unop":
            return Internal(
                InterpState((_RET, _unop(node.op, values[0])), env, kont)
            )
        if apply_tag == "slice":
            operand = as_bits(values[0])
            lo, hi = as_int(values[1]), as_int(values[2])
            return Internal(
                InterpState((_RET, operand.slice(lo, hi)), env, kont)
            )
        if apply_tag == "index":
            operand = as_bits(values[0])
            return Internal(
                InterpState((_RET, operand.bit(as_int(values[1]))), env, kont)
            )
        if apply_tag == "call":
            if (
                fork
                and node.func == "to_num"
                and isinstance(values[0], Bits)
                and not values[0].is_known
            ):
                return Internal(InterpState((_RET, UNKNOWN_INT), env, kont))
            try:
                func = _BUILTINS[node.func]
            except KeyError:
                raise SailRuntimeError(f"unknown builtin {node.func}")
            return Internal(InterpState((_RET, func(values)), env, kont))
        if apply_tag == "regread":
            reg_slice = self._resolve_regspec(node.reg, values)
            return ReadReg(reg_slice, _pending(env, kont))
        if apply_tag == "writereg":
            reg_slice = self._resolve_regspec(node.lhs.reg, values[:-1])
            value = as_bits(values[-1], reg_slice.width) if isinstance(
                values[-1], Bits
            ) else Bits.from_int(values[-1], reg_slice.width)
            return WriteReg(reg_slice, value, _pending(env, kont))
        if apply_tag == "memread":
            addr = as_bits(values[0], 64) if isinstance(values[0], Bits) else (
                Bits.from_int(values[0], 64)
            )
            size = as_int(values[1])
            return ReadMem(node.kind, addr, size, _pending(env, kont))
        if apply_tag == "writemem":
            addr = as_bits(values[0], 64) if isinstance(values[0], Bits) else (
                Bits.from_int(values[0], 64)
            )
            size = as_int(values[1])
            value = as_bits(values[2], 8 * size) if isinstance(
                values[2], Bits
            ) else Bits.from_int(values[2], 8 * size)
            return WriteMem("plain", addr, size, value, _pending(env, kont))
        if apply_tag == "storecond":
            addr = as_bits(values[0], 64) if isinstance(values[0], Bits) else (
                Bits.from_int(values[0], 64)
            )
            size = as_int(values[1])
            value = as_bits(values[2], 8 * size) if isinstance(
                values[2], Bits
            ) else Bits.from_int(values[2], 8 * size)
            return WriteMem("conditional", addr, size, value, _pending(env, kont))
        if apply_tag == "writevarslice":
            stmt = node
            lo, hi = as_int(values[0]), as_int(values[1])
            name = stmt.lhs.name
            old = env.get(name)
            if not isinstance(old, Bits):
                raise SailRuntimeError(f"slice assignment to non-vector {name}")
            update = values[2]
            if isinstance(update, int):
                update = Bits.from_int(update, hi - lo + 1)
            new_env = dict(env)
            new_env[name] = old.update_slice(lo, hi, update)
            return Internal(InterpState((_RET, None), new_env, kont))
        if apply_tag == "foreach_init":
            stmt = node
            start, stop = as_int(values[0]), as_int(values[1])
            empty = start < stop if stmt.downto else start > stop
            if empty:
                return Internal(InterpState((_RET, None), env, kont))
            new_env = dict(env)
            new_env[stmt.var] = start
            frame = (_F_LOOP, stmt, stop)
            return Internal(
                InterpState((_STMT, stmt.body), new_env, (frame, kont))
            )
        raise SailRuntimeError(f"unknown application {apply_tag!r}")

    def _resolve_regspec(self, spec: ast.RegSpec, values) -> RegSlice:
        """Build a concrete ``RegSlice`` from evaluated index/range values."""
        values = list(values)
        index = None
        if spec.index is not None:
            index = as_int(values.pop(0))
        lo = hi = None
        if spec.lo is not None:
            lo = as_int(values.pop(0))
            hi = as_int(values.pop(0)) if spec.hi is not None else lo
        try:
            return self._registry.slice_of(spec.name, index, lo, hi)
        except KeyError as exc:
            raise SailRuntimeError(str(exc))
