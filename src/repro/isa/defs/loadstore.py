"""Fixed-point load and store instructions (Power ISA 2.06B chapter 3.3.2-3).

Families are generated programmatically from the size/extension/form grid --
this mirrors the regular structure of the vendor documentation, where the
pseudocode differs only in effective-address computation, access size, and
result extension.
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec, spec
from .common import (
    EA_D,
    EA_DS,
    EA_DS_UPDATE,
    EA_D_UPDATE,
    EA_X,
    EA_X_UPDATE,
    execute_clause,
    gpr_slice,
    load_extend,
)

SPECS: List[InstructionSpec] = []


def _add(s: InstructionSpec) -> None:
    SPECS.append(s)


# ----------------------------------------------------------------------
# D-form loads: lbz 34, lhz 40, lha 42, lwz 32 (+ update forms)
# ----------------------------------------------------------------------

_D_LOADS = [
    ("Lbz", "lbz", 34, 1, False),
    ("Lbzu", "lbzu", 35, 1, False),
    ("Lhz", "lhz", 40, 2, False),
    ("Lhzu", "lhzu", 41, 2, False),
    ("Lha", "lha", 42, 2, True),
    ("Lhau", "lhau", 43, 2, True),
    ("Lwz", "lwz", 32, 4, False),
    ("Lwzu", "lwzu", 33, 4, False),
]

for name, mnemonic, opcd, size, signed in _D_LOADS:
    update = mnemonic.endswith("u")
    ea = EA_D_UPDATE if update else EA_D
    body = f"{ea};\n  GPR[RT] := {load_extend(size, signed)}"
    if update:
        body += ";\n  GPR[RA] := EA"
    _add(
        spec(
            name,
            mnemonic,
            "D",
            "fixed-point",
            f"{opcd} RT:5 RA:5 D:16",
            "RT, D(RA)",
            execute_clause(name, "RT, RA, D", body),
            invalid_when="RA == 0 or RA == RT" if update else None,
            category="load",
        )
    )

# ----------------------------------------------------------------------
# DS-form loads: ld 58/0, ldu 58/1, lwa 58/2
# ----------------------------------------------------------------------

_DS_LOADS = [
    ("Ld", "ld", 0, 8, False, False),
    ("Ldu", "ldu", 1, 8, False, True),
    ("Lwa", "lwa", 2, 4, True, False),
]

for name, mnemonic, xo, size, signed, update in _DS_LOADS:
    ea = EA_DS_UPDATE if update else EA_DS
    body = f"{ea};\n  GPR[RT] := {load_extend(size, signed)}"
    if update:
        body += ";\n  GPR[RA] := EA"
    _add(
        spec(
            name,
            mnemonic,
            "DS",
            "fixed-point",
            f"58 RT:5 RA:5 DS:14 {xo}:2",
            "RT, DS(RA)",
            execute_clause(name, "RT, RA, DS", body),
            invalid_when="RA == 0 or RA == RT" if update else (
                "RA == 0" if mnemonic == "lwa" and False else None
            ),
            category="load",
        )
    )

# ----------------------------------------------------------------------
# X-form loads (opcd 31)
# ----------------------------------------------------------------------

_X_LOADS = [
    ("Lbzx", "lbzx", 87, 1, False, False),
    ("Lbzux", "lbzux", 119, 1, False, True),
    ("Lhzx", "lhzx", 279, 2, False, False),
    ("Lhzux", "lhzux", 311, 2, False, True),
    ("Lhax", "lhax", 343, 2, True, False),
    ("Lhaux", "lhaux", 375, 2, True, True),
    ("Lwzx", "lwzx", 23, 4, False, False),
    ("Lwzux", "lwzux", 55, 4, False, True),
    ("Lwax", "lwax", 341, 4, True, False),
    ("Lwaux", "lwaux", 373, 4, True, True),
    ("Ldx", "ldx", 21, 8, False, False),
    ("Ldux", "ldux", 53, 8, False, True),
]

for name, mnemonic, xo, size, signed, update in _X_LOADS:
    ea = EA_X_UPDATE if update else EA_X
    body = f"{ea};\n  GPR[RT] := {load_extend(size, signed)}"
    if update:
        body += ";\n  GPR[RA] := EA"
    _add(
        spec(
            name,
            mnemonic,
            "X",
            "fixed-point",
            f"31 RT:5 RA:5 RB:5 {xo}:10 0:1",
            "RT, RA, RB",
            execute_clause(name, "RT, RA, RB", body),
            invalid_when="RA == 0 or RA == RT" if update else None,
            category="load",
        )
    )

# ----------------------------------------------------------------------
# D-form stores: stb 38, sth 44, stw 36 (+ update forms)
# ----------------------------------------------------------------------

_D_STORES = [
    ("Stb", "stb", 38, 1, False),
    ("Stbu", "stbu", 39, 1, True),
    ("Sth", "sth", 44, 2, False),
    ("Sthu", "sthu", 45, 2, True),
    ("Stw", "stw", 36, 4, False),
    ("Stwu", "stwu", 37, 4, True),
]

for name, mnemonic, opcd, size, update in _D_STORES:
    ea = EA_D_UPDATE if update else EA_D
    body = f"{ea};\n  MEMw(EA, {size}) := {gpr_slice(size)}"
    if update:
        body += ";\n  GPR[RA] := EA"
    _add(
        spec(
            name,
            mnemonic,
            "D",
            "fixed-point",
            f"{opcd} RS:5 RA:5 D:16",
            "RS, D(RA)",
            execute_clause(name, "RS, RA, D", body),
            invalid_when="RA == 0" if update else None,
            category="store",
        )
    )

# ----------------------------------------------------------------------
# DS-form stores: std 62/0, stdu 62/1 (stdu is the paper's Fig. 2 example)
# ----------------------------------------------------------------------

_DS_STORES = [
    ("Std", "std", 0, False),
    ("Stdu", "stdu", 1, True),
]

for name, mnemonic, xo, update in _DS_STORES:
    ea = EA_DS_UPDATE if update else EA_DS
    body = f"{ea};\n  MEMw(EA, 8) := GPR[RS]"
    if update:
        body += ";\n  GPR[RA] := EA"
    _add(
        spec(
            name,
            mnemonic,
            "DS",
            "fixed-point",
            f"62 RS:5 RA:5 DS:14 {xo}:2",
            "RS, DS(RA)",
            execute_clause(name, "RS, RA, DS", body),
            invalid_when="RA == 0" if update else None,
            category="store",
        )
    )

# ----------------------------------------------------------------------
# X-form stores
# ----------------------------------------------------------------------

_X_STORES = [
    ("Stbx", "stbx", 215, 1, False),
    ("Stbux", "stbux", 247, 1, True),
    ("Sthx", "sthx", 407, 2, False),
    ("Sthux", "sthux", 439, 2, True),
    ("Stwx", "stwx", 151, 4, False),
    ("Stwux", "stwux", 183, 4, True),
    ("Stdx", "stdx", 149, 8, False),
    ("Stdux", "stdux", 181, 8, True),
]

for name, mnemonic, xo, size, update in _X_STORES:
    ea = EA_X_UPDATE if update else EA_X
    body = f"{ea};\n  MEMw(EA, {size}) := {gpr_slice(size)}"
    if update:
        body += ";\n  GPR[RA] := EA"
    _add(
        spec(
            name,
            mnemonic,
            "X",
            "fixed-point",
            f"31 RS:5 RA:5 RB:5 {xo}:10 0:1",
            "RS, RA, RB",
            execute_clause(name, "RS, RA, RB", body),
            invalid_when="RA == 0" if update else None,
            category="store",
        )
    )

# ----------------------------------------------------------------------
# Byte-reversed loads and stores (X-form)
# ----------------------------------------------------------------------


def _byte_reverse_load(size: int) -> str:
    chunks = " : ".join(
        f"m[{8 * i}..{8 * i + 7}]" for i in reversed(range(size))
    )
    return (
        f"(bit[{8 * size}]) m := MEMr(EA, {size});\n"
        f"  GPR[RT] := EXTZ(64, {chunks})"
    )


def _byte_reverse_store(size: int) -> str:
    lo = 64 - 8 * size
    chunks = " : ".join(
        f"s[{lo + 8 * i}..{lo + 8 * i + 7}]" for i in reversed(range(size))
    )
    return (
        f"(bit[64]) s := GPR[RS];\n"
        f"  MEMw(EA, {size}) := {chunks}"
    )


_BRX = [
    ("Lhbrx", "lhbrx", 790, 2, True),
    ("Lwbrx", "lwbrx", 534, 4, True),
    ("Ldbrx", "ldbrx", 532, 8, True),
    ("Sthbrx", "sthbrx", 918, 2, False),
    ("Stwbrx", "stwbrx", 662, 4, False),
    ("Stdbrx", "stdbrx", 660, 8, False),
]

for name, mnemonic, xo, size, is_load in _BRX:
    if is_load:
        body = f"{EA_X};\n  {_byte_reverse_load(size)}"
        syntax, fields, reg = "RT, RA, RB", "RT, RA, RB", "RT"
    else:
        body = f"{EA_X};\n  {_byte_reverse_store(size)}"
        syntax, fields, reg = "RS, RA, RB", "RS, RA, RB", "RS"
    _add(
        spec(
            name,
            mnemonic,
            "X",
            "fixed-point",
            f"31 {reg}:5 RA:5 RB:5 {xo}:10 0:1",
            syntax,
            execute_clause(name, fields, body),
            category="load" if is_load else "store",
        )
    )
