"""Pluggable search strategies for the exhaustive oracle.

The oracle's two questions -- all reachable outcomes, or one witnessing
execution -- are answered by interchangeable ``SearchStrategy``
backends over a single unified DFS driver (``core.run_search``):

* ``SequentialDFS`` -- the reference single-process engine,
  bit-identical to the historical ``explore``/``find_witness``;
* ``ShardedParallel`` -- intra-test multiprocessing: the frontier is
  split at a configurable depth into subtree shards owned by forked
  workers (stable key-digest partitioning), outcome sets and stats
  merged on join;
* ``BoundedIterative`` -- growing-state-budget iterative deepening that
  returns partial outcome sets flagged ``complete=False`` instead of
  raising ``ExplorationLimit`` mid-search.

Every backend accepts ``reduction``/``context_bound`` (see
``reduction``): sleep-set partial-order reduction preserves the outcome
envelope while pruning commuting interleavings; a context bound trades
completeness (reported via ``ExplorationResult.complete``) for a
drastically smaller search.  ``reduction="dpor"`` (see ``dpor``) layers
source sets and a canonical state-key quotient on top of sleep sets,
and ``symmetry=True`` additionally folds permutation-equivalent threads
into orbit representatives (sharded backends run the sleep-set
projection; see ``sharded``).

``resolve_strategy`` turns ``None`` / a name / an instance into a
strategy; ``make_strategy`` builds one by name with tuning options (the
CLI's ``--strategy`` / ``--shard-depth`` / ``--reduction`` /
``--context-bound``); ``apply_reduction`` rebuilds an existing strategy
with reduction options applied; ``build_strategy`` composes all of the
above into the one construction path shared by the CLI, the litmus
runner, the testgen harness, and the service engine.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Type

from .base import SearchStrategy
from .bounded import BoundedIterative
from .core import (
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    Frontier,
    Outcome,
    Witness,
    outcome_of,
    registers_of_interest,
    replay_index_path,
    run_search,
)
from .reduction import Reducer, make_reducer
from .sequential import SequentialDFS
from .sharded import ShardedParallel

#: Name -> class registry for the CLI and corpus-worker protocol.
STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    SequentialDFS.name: SequentialDFS,
    ShardedParallel.name: ShardedParallel,
    BoundedIterative.name: BoundedIterative,
}


def make_strategy(
    name: str,
    jobs: Optional[int] = None,
    shard_depth: Optional[int] = None,
    initial_budget: Optional[int] = None,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
) -> SearchStrategy:
    """Build a strategy by registry name, applying only relevant options."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r} "
            f"(choose from {sorted(STRATEGIES)})"
        ) from None
    options = {
        "reduction": reduction,
        "context_bound": context_bound,
        "symmetry": symmetry,
    }
    if cls is ShardedParallel:
        if jobs is not None:
            options["jobs"] = jobs
        if shard_depth is not None:
            options["shard_depth"] = shard_depth
        return ShardedParallel(**options)
    if cls is BoundedIterative and initial_budget is not None:
        options["initial_budget"] = initial_budget
    return cls(**options)


def apply_reduction(
    strategy: SearchStrategy,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
) -> SearchStrategy:
    """A copy of ``strategy`` with the pruning options applied.

    Every registered backend carries the three fields, so this is a
    plain ``dataclasses.replace``; no-op when all options are defaults
    (so callers can thread them unconditionally without disturbing
    explicitly pre-configured strategy instances).
    """
    if reduction == "none" and context_bound is None and not symmetry:
        return strategy
    return dataclasses.replace(
        strategy,
        reduction=reduction,
        context_bound=context_bound,
        symmetry=symmetry,
    )


def resolve_strategy(spec=None, **options) -> SearchStrategy:
    """Coerce ``None`` / a name / a ``SearchStrategy`` into a strategy."""
    if spec is None:
        return SequentialDFS()
    if isinstance(spec, SearchStrategy):
        return spec
    if isinstance(spec, str):
        return make_strategy(spec, **options)
    raise TypeError(f"not a search strategy: {spec!r}")


def build_strategy(
    spec=None,
    jobs: Optional[int] = None,
    shard_depth: Optional[int] = None,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
) -> SearchStrategy:
    """One-stop strategy construction shared by every query entry point.

    Accepts whatever the caller has -- ``None``, a registry name, or a
    pre-built ``SearchStrategy`` -- and applies the common tuning
    options uniformly: ``jobs``/``shard_depth`` retune a sharded
    backend, ``reduction``/``context_bound`` rebuild any backend with
    the pruning options.  This replaces the
    ``apply_reduction(resolve_strategy(...))`` combinations that used to
    be spelled out separately in the CLI, the litmus runner, and the
    testgen harness; the service engine keys its verdict cache off the
    instance this returns.
    """
    if isinstance(spec, str):
        return make_strategy(
            spec,
            jobs=jobs,
            shard_depth=shard_depth,
            reduction=reduction,
            context_bound=context_bound,
            symmetry=symmetry,
        )
    strategy = resolve_strategy(spec)
    if isinstance(strategy, ShardedParallel):
        updates = {}
        if jobs is not None:
            updates["jobs"] = jobs
        if shard_depth is not None:
            updates["shard_depth"] = shard_depth
        if updates:
            strategy = dataclasses.replace(strategy, **updates)
    return apply_reduction(strategy, reduction, context_bound, symmetry)


__all__ = [
    "BoundedIterative",
    "ExplorationLimit",
    "ExplorationResult",
    "ExplorationStats",
    "Frontier",
    "Outcome",
    "Reducer",
    "STRATEGIES",
    "SearchStrategy",
    "SequentialDFS",
    "ShardedParallel",
    "Witness",
    "apply_reduction",
    "build_strategy",
    "make_reducer",
    "make_strategy",
    "outcome_of",
    "registers_of_interest",
    "replay_index_path",
    "resolve_strategy",
    "run_search",
]
