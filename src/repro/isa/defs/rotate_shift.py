"""Fixed-point rotate and shift instructions (Power ISA 2.06B chapter 3.3.12).

The MD/MDS/XS forms split their 6-bit shift/mask immediates across the
instruction word (sh = instr[30] || instr[16:20]; mb/me = instr[26] ||
instr[21:25]); the encoded fields are ``SHL``/``SHH``/``MBE`` here, and the
pseudocode reassembles them exactly as the vendor documentation describes.
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec, spec
from .common import CR0_RECORD, execute_clause

SPECS: List[InstructionSpec] = []


def _add(s: InstructionSpec) -> None:
    SPECS.append(s)


def _record(r: str) -> str:
    return CR0_RECORD.format(r=r)


# ----------------------------------------------------------------------
# M-form word rotates
# ----------------------------------------------------------------------

_add(
    spec(
        "Rlwinm",
        "rlwinm",
        "M",
        "fixed-point",
        "21 RS:5 RA:5 SH:5 MB:5 ME:5 Rc:1",
        "RA, RS, SH, MB, ME",
        execute_clause(
            "Rlwinm",
            "RS, RA, SH, MB, ME",
            "(bit[32]) s := (GPR[RS])[32..63];\n"
            "  (bit[64]) r := ROTL(s : s, to_num(SH));\n"
            "  (bit[64]) m := MASK(to_num(MB) + 32, to_num(ME) + 32);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

_add(
    spec(
        "Rlwnm",
        "rlwnm",
        "M",
        "fixed-point",
        "23 RS:5 RA:5 RB:5 MB:5 ME:5 Rc:1",
        "RA, RS, RB, MB, ME",
        execute_clause(
            "Rlwnm",
            "RS, RA, RB, MB, ME",
            "(bit[32]) s := (GPR[RS])[32..63];\n"
            "  (int) n := to_num((GPR[RB])[59..63]);\n"
            "  (bit[64]) r := ROTL(s : s, n);\n"
            "  (bit[64]) m := MASK(to_num(MB) + 32, to_num(ME) + 32);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

_add(
    spec(
        "Rlwimi",
        "rlwimi",
        "M",
        "fixed-point",
        "20 RS:5 RA:5 SH:5 MB:5 ME:5 Rc:1",
        "RA, RS, SH, MB, ME",
        execute_clause(
            "Rlwimi",
            "RS, RA, SH, MB, ME",
            "(bit[32]) s := (GPR[RS])[32..63];\n"
            "  (bit[64]) r := ROTL(s : s, to_num(SH));\n"
            "  (bit[64]) m := MASK(to_num(MB) + 32, to_num(ME) + 32);\n"
            "  (bit[64]) res := (r & m) | (GPR[RA] & ~m);\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

# ----------------------------------------------------------------------
# MD-form doubleword rotates (split sh and mb/me fields)
# ----------------------------------------------------------------------

_SH6 = "(int) n := to_num(SHH : SHL)"
_MB6 = "(int) b := to_num(MBE[5] : MBE[0..4])"

_add(
    spec(
        "Rldicl",
        "rldicl",
        "MD",
        "fixed-point",
        "30 RS:5 RA:5 SHL:5 MBE:6 0:3 SHH:1 Rc:1",
        "RA, RS, sh6, mb6",
        execute_clause(
            "Rldicl",
            "RS, RA, SHL, SHH, MBE",
            f"{_SH6};\n"
            f"  {_MB6};\n"
            "  (bit[64]) r := ROTL(GPR[RS], n);\n"
            "  (bit[64]) m := MASK(b, 63);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

_add(
    spec(
        "Rldicr",
        "rldicr",
        "MD",
        "fixed-point",
        "30 RS:5 RA:5 SHL:5 MBE:6 1:3 SHH:1 Rc:1",
        "RA, RS, sh6, me6",
        execute_clause(
            "Rldicr",
            "RS, RA, SHL, SHH, MBE",
            f"{_SH6};\n"
            "  (int) e := to_num(MBE[5] : MBE[0..4]);\n"
            "  (bit[64]) r := ROTL(GPR[RS], n);\n"
            "  (bit[64]) m := MASK(0, e);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

_add(
    spec(
        "Rldic",
        "rldic",
        "MD",
        "fixed-point",
        "30 RS:5 RA:5 SHL:5 MBE:6 2:3 SHH:1 Rc:1",
        "RA, RS, sh6, mb6",
        execute_clause(
            "Rldic",
            "RS, RA, SHL, SHH, MBE",
            f"{_SH6};\n"
            f"  {_MB6};\n"
            "  (bit[64]) r := ROTL(GPR[RS], n);\n"
            "  (bit[64]) m := MASK(b, 63 - n);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

_add(
    spec(
        "Rldimi",
        "rldimi",
        "MD",
        "fixed-point",
        "30 RS:5 RA:5 SHL:5 MBE:6 3:3 SHH:1 Rc:1",
        "RA, RS, sh6, mb6",
        execute_clause(
            "Rldimi",
            "RS, RA, SHL, SHH, MBE",
            f"{_SH6};\n"
            f"  {_MB6};\n"
            "  (bit[64]) r := ROTL(GPR[RS], n);\n"
            "  (bit[64]) m := MASK(b, 63 - n);\n"
            "  (bit[64]) res := (r & m) | (GPR[RA] & ~m);\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

# MDS-form: rotate amount from a register.
_add(
    spec(
        "Rldcl",
        "rldcl",
        "MDS",
        "fixed-point",
        "30 RS:5 RA:5 RB:5 MBE:6 8:4 Rc:1",
        "RA, RS, RB, mb6",
        execute_clause(
            "Rldcl",
            "RS, RA, RB, MBE",
            "(int) n := to_num((GPR[RB])[58..63]);\n"
            f"  {_MB6};\n"
            "  (bit[64]) r := ROTL(GPR[RS], n);\n"
            "  (bit[64]) m := MASK(b, 63);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

_add(
    spec(
        "Rldcr",
        "rldcr",
        "MDS",
        "fixed-point",
        "30 RS:5 RA:5 RB:5 MBE:6 9:4 Rc:1",
        "RA, RS, RB, me6",
        execute_clause(
            "Rldcr",
            "RS, RA, RB, MBE",
            "(int) n := to_num((GPR[RB])[58..63]);\n"
            "  (int) e := to_num(MBE[5] : MBE[0..4]);\n"
            "  (bit[64]) r := ROTL(GPR[RS], n);\n"
            "  (bit[64]) m := MASK(0, e);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="rotate",
    )
)

# ----------------------------------------------------------------------
# X-form shifts
# ----------------------------------------------------------------------

_add(
    spec(
        "Slw",
        "slw",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 RB:5 24:10 Rc:1",
        "RA, RS, RB",
        execute_clause(
            "Slw",
            "RS, RA, RB",
            "(bit[32]) s := (GPR[RS])[32..63];\n"
            "  (int) n := to_num((GPR[RB])[59..63]);\n"
            "  (bit[64]) r := ROTL(s : s, n);\n"
            "  (bit[64]) m := 0;\n"
            "  if (GPR[RB])[58] == 0b0 then m := MASK(32, 63 - n);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="shift",
    )
)

_add(
    spec(
        "Srw",
        "srw",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 RB:5 536:10 Rc:1",
        "RA, RS, RB",
        execute_clause(
            "Srw",
            "RS, RA, RB",
            "(bit[32]) s := (GPR[RS])[32..63];\n"
            "  (int) n := to_num((GPR[RB])[59..63]);\n"
            "  (bit[64]) r := ROTL(s : s, 64 - n);\n"
            "  (bit[64]) m := 0;\n"
            "  if (GPR[RB])[58] == 0b0 then m := MASK(32 + n, 63);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="shift",
    )
)

_SRAW_BODY = (
    "(bit[32]) s := (GPR[RS])[32..63];\n"
    "  {amount};\n"
    "  (bit[64]) r := ROTL(s : s, 64 - n);\n"
    "  (bit[64]) m := 0;\n"
    "  if {deep} then m := MASK(32 + n, 63);\n"
    "  (bit[64]) sgn := REPLICATE(s[0], 64);\n"
    "  (bit[64]) res := (r & m) | (sgn & ~m);\n"
    "  GPR[RA] := res;\n"
    "  (bit[1]) lost := if (r & ~m & 0x00000000FFFFFFFF) == EXTZ(64, 0b0) "
    "then 0b0 else 0b1;\n"
    "  XER.CA := s[0] & lost;\n"
    "  {record}"
)

_add(
    spec(
        "Sraw",
        "sraw",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 RB:5 792:10 Rc:1",
        "RA, RS, RB",
        execute_clause(
            "Sraw",
            "RS, RA, RB",
            _SRAW_BODY.format(
                amount="(int) n := to_num((GPR[RB])[59..63])",
                deep="(GPR[RB])[58] == 0b0",
                record=_record("res"),
            ),
        ),
        category="shift",
    )
)

_add(
    spec(
        "Srawi",
        "srawi",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 SH:5 824:10 Rc:1",
        "RA, RS, SH",
        execute_clause(
            "Srawi",
            "RS, RA, SH",
            _SRAW_BODY.format(
                amount="(int) n := to_num(SH)",
                deep="0b1 == 0b1",
                record=_record("res"),
            ),
        ),
        category="shift",
    )
)

_add(
    spec(
        "Sld",
        "sld",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 RB:5 27:10 Rc:1",
        "RA, RS, RB",
        execute_clause(
            "Sld",
            "RS, RA, RB",
            "(int) n := to_num((GPR[RB])[58..63]);\n"
            "  (bit[64]) r := ROTL(GPR[RS], n);\n"
            "  (bit[64]) m := 0;\n"
            "  if (GPR[RB])[57] == 0b0 then m := MASK(0, 63 - n);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="shift",
    )
)

_add(
    spec(
        "Srd",
        "srd",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 RB:5 539:10 Rc:1",
        "RA, RS, RB",
        execute_clause(
            "Srd",
            "RS, RA, RB",
            "(int) n := to_num((GPR[RB])[58..63]);\n"
            "  (bit[64]) r := ROTL(GPR[RS], 64 - n);\n"
            "  (bit[64]) m := 0;\n"
            "  if (GPR[RB])[57] == 0b0 then m := MASK(n, 63);\n"
            "  (bit[64]) res := r & m;\n"
            "  GPR[RA] := res;\n"
            f"  {_record('res')}",
        ),
        category="shift",
    )
)

_SRAD_BODY = (
    "(bit[64]) s := GPR[RS];\n"
    "  {amount};\n"
    "  (bit[64]) r := ROTL(s, 64 - n);\n"
    "  (bit[64]) m := 0;\n"
    "  if {deep} then m := MASK(n, 63);\n"
    "  (bit[64]) sgn := REPLICATE(s[0], 64);\n"
    "  (bit[64]) res := (r & m) | (sgn & ~m);\n"
    "  GPR[RA] := res;\n"
    "  (bit[1]) lost := if (r & ~m) == EXTZ(64, 0b0) then 0b0 else 0b1;\n"
    "  XER.CA := s[0] & lost;\n"
    "  {record}"
)

_add(
    spec(
        "Srad",
        "srad",
        "X",
        "fixed-point",
        "31 RS:5 RA:5 RB:5 794:10 Rc:1",
        "RA, RS, RB",
        execute_clause(
            "Srad",
            "RS, RA, RB",
            _SRAD_BODY.format(
                amount="(int) n := to_num((GPR[RB])[58..63])",
                deep="(GPR[RB])[57] == 0b0",
                record=_record("res"),
            ),
        ),
        category="shift",
    )
)

_add(
    spec(
        "Sradi",
        "sradi",
        "XS",
        "fixed-point",
        "31 RS:5 RA:5 SHL:5 413:9 SHH:1 Rc:1",
        "RA, RS, sh6",
        execute_clause(
            "Sradi",
            "RS, RA, SHL, SHH",
            _SRAD_BODY.format(
                amount="(int) n := to_num(SHH : SHL)",
                deep="0b1 == 0b1",
                record=_record("res"),
            ),
        ),
        category="shift",
    )
)
