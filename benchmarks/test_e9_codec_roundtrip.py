"""E9 -- extraction-robustness proxy: codec round trips across the ISA.

The paper's extraction tool generates decode clauses and ~17k lines of
assembly parse/pretty-print boilerplate from the vendor XML; its section
4.1 notes that adapting to a new XML export took under two days, i.e. the
pipeline is regenerable.  Our decode/assemble/disassemble are generated
from one declarative encoding table; this bench sweeps the whole ISA with
random operands and checks the three codecs agree.
"""

import random

from conftest import print_table

from repro.isa.assembler import Assembler
from repro.isa.disasm import render

ROUNDS_PER_SPEC = 40


def _random_fields(spec, rng):
    fields = {}
    for field in spec.operand_fields():
        fields[field.name] = rng.getrandbits(field.width)
    if "SPR" in fields:
        n = rng.choice((1, 8, 9))
        fields["SPR"] = (n & 0x1F) << 5 | (n >> 5)
    return fields


def _hint_mask(spec):
    """Fields assembly syntax cannot express (branch hints etc.)."""
    syntax_text = " ".join(spec.syntax)
    mask = 0
    for field in spec.operand_fields():
        mentioned = field.name in syntax_text or field.name in (
            "Rc", "OE", "LK", "AA", "SPR", "FXM",
            "SHL", "SHH", "MBE", "LI", "BD", "DS", "D",
        )
        if not mentioned:
            mask |= field.mask
    return mask


def test_e9_codec_roundtrip(model, benchmark):
    assembler = Assembler(model)
    rng = random.Random(2830775)  # the paper's DOI suffix
    cases = []
    for spec in model.table.all_specs():
        for _ in range(ROUNDS_PER_SPEC):
            cases.append((spec, spec.encode(_random_fields(spec, rng))))

    def roundtrip_all():
        mismatches = 0
        for spec, word in cases:
            decoded = model.decode(word)
            assert decoded is not None and decoded.spec.name == spec.name
            text = render(decoded, address=0x10000)
            word2 = assembler.assemble_instruction(text, address=0x10000)
            mask = ~_hint_mask(spec)
            if word2 & mask != word & mask:
                mismatches += 1
        return mismatches

    mismatches = benchmark(roundtrip_all)

    print_table(
        "E9: decode/disassemble/assemble round trip across the ISA",
        ["metric", "value"],
        [
            ("instruction specs", len(model.table.all_specs())),
            ("random encodings tested", len(cases)),
            ("round-trip mismatches", mismatches),
        ],
    )
    assert mismatches == 0
