"""Unit and property tests for the lifted bitvector domain."""

import pytest
from hypothesis import given, strategies as st

from repro.sail.values import (
    Bits,
    FALSE,
    SailValueError,
    TRUE,
    UndefUsedError,
    UnknownUsedError,
    bool_to_bit,
    truth,
)

words = st.integers(min_value=0, max_value=(1 << 64) - 1)
widths = st.integers(min_value=1, max_value=80)


@st.composite
def concrete_bits(draw, max_width=64):
    width = draw(st.integers(min_value=1, max_value=max_width))
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return Bits.from_int(value, width)


@st.composite
def lifted_bits(draw, max_width=32):
    width = draw(st.integers(min_value=1, max_value=max_width))
    text = draw(
        st.text(alphabet="01ux", min_size=width, max_size=width)
    )
    return Bits.from_string(text)


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert Bits.from_int(0x1FF, 8).to_int() == 0xFF

    def test_from_int_negative_two_complement(self):
        assert Bits.from_int(-1, 8).to_int() == 0xFF

    def test_zero_width_vector(self):
        empty = Bits(0)
        assert empty.width == 0
        assert empty.concat(Bits.from_int(5, 4)).to_int() == 5

    def test_overlapping_masks_rejected(self):
        with pytest.raises(SailValueError):
            Bits(4, ones=0b0001, undefs=0b0001)

    def test_mask_outside_width_rejected(self):
        with pytest.raises(SailValueError):
            Bits(4, ones=0b10000)

    def test_from_string_roundtrip(self):
        assert Bits.from_string("01u0x").to_bitstring() == "01u0x"

    def test_from_bytes_big_endian(self):
        assert Bits.from_bytes(b"\x12\x34").to_int() == 0x1234


class TestClassification:
    def test_known(self):
        assert Bits.from_int(5, 4).is_known
        assert not Bits.undef(4).is_known
        assert not Bits.unknown(4).is_known

    def test_to_int_raises_on_undef(self):
        with pytest.raises(UndefUsedError):
            Bits.undef(4).to_int()

    def test_to_int_raises_on_unknown(self):
        with pytest.raises(UnknownUsedError):
            Bits.unknown(4).to_int()


class TestIndexing:
    def test_power_msb0_bit(self):
        value = Bits.from_int(0b1000, 4)
        assert value.bit(0) == TRUE
        assert value.bit(3) == FALSE

    def test_slice_is_msb_relative(self):
        value = Bits.from_int(0xABCD, 16)
        assert value.slice(0, 3).to_int() == 0xA
        assert value.slice(12, 15).to_int() == 0xD

    def test_slice_bounds_checked(self):
        with pytest.raises(SailValueError):
            Bits.from_int(0, 8).slice(4, 8)

    def test_update_slice(self):
        value = Bits.from_int(0x00, 8).update_slice(0, 3, Bits.from_int(0xF, 4))
        assert value.to_int() == 0xF0

    @given(concrete_bits(max_width=32), st.data())
    def test_slice_update_roundtrip(self, value, data):
        lo = data.draw(st.integers(0, value.width - 1))
        hi = data.draw(st.integers(lo, value.width - 1))
        fragment = value.slice(lo, hi)
        assert value.update_slice(lo, hi, fragment) == value

    @given(concrete_bits(max_width=24), concrete_bits(max_width=24))
    def test_concat_widths_and_value(self, a, b):
        joined = a.concat(b)
        assert joined.width == a.width + b.width
        assert joined.to_int() == (a.to_int() << b.width) | b.to_int()


class TestExtension:
    @given(concrete_bits(max_width=32))
    def test_extz_preserves_value(self, value):
        assert value.extz(value.width + 8).to_int() == value.to_int()

    @given(concrete_bits(max_width=32))
    def test_exts_preserves_signed_value(self, value):
        assert value.exts(value.width + 8).to_signed() == value.to_signed()

    def test_ext_truncates_from_msb(self):
        assert Bits.from_int(0x1F, 5).extz(4).to_int() == 0xF
        assert Bits.from_int(0x1F, 5).exts(4).to_int() == 0xF


class TestArithmetic:
    @given(words, words)
    def test_add_mod_2_64(self, a, b):
        result = Bits.from_int(a, 64).add(Bits.from_int(b, 64))
        assert result.to_int() == (a + b) % (1 << 64)

    @given(words, words)
    def test_sub_mod_2_64(self, a, b):
        result = Bits.from_int(a, 64).sub(Bits.from_int(b, 64))
        assert result.to_int() == (a - b) % (1 << 64)

    def test_lifted_operand_poisons_result(self):
        result = Bits.undef(8).add(Bits.from_int(1, 8))
        assert result.undefs == 0xFF

    def test_unknown_dominates_undef(self):
        result = Bits.undef(8).add(Bits.unknown(8))
        assert result.unknowns == 0xFF

    def test_signed_division_truncates_toward_zero(self):
        a = Bits.from_int(-7, 32)
        b = Bits.from_int(2, 32)
        assert a.divs(b).to_signed() == -3

    def test_division_by_zero_is_undef(self):
        result = Bits.from_int(5, 32).divu(Bits.zeros(32))
        assert result.undefs == (1 << 32) - 1

    def test_signed_overflow_division_is_undef(self):
        result = Bits.from_int(1 << 31, 32).divs(Bits.from_int(-1, 32))
        assert result.has_undef

    def test_width_mismatch_rejected(self):
        with pytest.raises(SailValueError):
            Bits.from_int(0, 8).add(Bits.from_int(0, 16))


class TestBitwise:
    @given(concrete_bits(max_width=64), st.data())
    def test_demorgan(self, a, data):
        b = Bits.from_int(
            data.draw(st.integers(0, (1 << a.width) - 1)), a.width
        )
        assert a.land(b).lnot() == a.lnot().lor(b.lnot())

    def test_and_with_known_zero_is_zero_even_for_undef(self):
        # The precise lifting that makes "0 & x" exact (xor-same-register).
        result = Bits.zeros(8).land(Bits.undef(8))
        assert result == Bits.zeros(8)

    def test_or_with_known_one_is_one_even_for_undef(self):
        result = Bits.all_ones(8).lor(Bits.undef(8))
        assert result == Bits.all_ones(8)

    def test_undef_and_undef_stays_undef(self):
        result = Bits.undef(4).land(Bits.undef(4))
        assert result.undefs == 0xF

    def test_xor_known_bits_exact_under_partial_undef(self):
        a = Bits.from_string("0u10")
        b = Bits.from_string("0110")
        assert a.lxor(b).to_bitstring() == "0u00"

    @given(lifted_bits())
    def test_double_negation(self, value):
        assert value.lnot().lnot() == value


class TestComparisons:
    @given(words, words)
    def test_unsigned_compare(self, a, b):
        va, vb = Bits.from_int(a, 64), Bits.from_int(b, 64)
        assert truth(va.lt_u(vb)) == (a < b)
        assert truth(va.ge_u(vb)) == (a >= b)

    @given(st.integers(-(1 << 31), (1 << 31) - 1),
           st.integers(-(1 << 31), (1 << 31) - 1))
    def test_signed_compare(self, a, b):
        va, vb = Bits.from_int(a, 32), Bits.from_int(b, 32)
        assert truth(va.lt_s(vb)) == (a < b)
        assert truth(va.gt_s(vb)) == (a > b)

    def test_eq_definitely_unequal_despite_undef(self):
        a = Bits.from_string("1u")
        b = Bits.from_string("0u")
        assert a.eq(b) == FALSE

    def test_eq_on_compatible_lifted_is_lifted(self):
        a = Bits.from_string("1u")
        b = Bits.from_string("10")
        assert a.eq(b).has_undef

    def test_truth_rejects_lifted(self):
        with pytest.raises(UndefUsedError):
            truth(Bits.undef(1))
        with pytest.raises(UnknownUsedError):
            truth(Bits.unknown(1))


class TestShiftsRotates:
    @given(concrete_bits(max_width=64), st.integers(0, 70))
    def test_shift_left_matches_int(self, value, amount):
        mask = (1 << value.width) - 1
        assert value.shiftl(amount).to_int() == (value.to_int() << amount) & mask

    @given(concrete_bits(max_width=64), st.data())
    def test_rotl_full_cycle_is_identity(self, value, data):
        assert value.rotl(value.width) == value

    @given(concrete_bits(max_width=64), st.integers(0, 200))
    def test_rotl_preserves_popcount(self, value, amount):
        assert value.rotl(amount).popcount() == value.popcount()

    def test_count_leading_zeros(self):
        assert Bits.from_int(1, 32).count_leading_zeros().to_int() == 31
        assert Bits.zeros(32).count_leading_zeros().to_int() == 32
        assert Bits.from_int(1 << 31, 32).count_leading_zeros().to_int() == 0


class TestMatchingUpToUndef:
    def test_undef_matches_anything(self):
        assert Bits.undef(8).matches_up_to_undef(Bits.from_int(0xAB, 8))

    def test_concrete_must_agree(self):
        model = Bits.from_string("1u0u")
        assert model.matches_up_to_undef(Bits.from_string("1101"))
        assert not model.matches_up_to_undef(Bits.from_string("0101"))

    @given(concrete_bits())
    def test_reflexive(self, value):
        assert value.matches_up_to_undef(value)

    def test_bool_to_bit(self):
        assert bool_to_bit(True) == TRUE
        assert bool_to_bit(False) == FALSE
