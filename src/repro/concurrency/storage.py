"""The storage subsystem of the concurrency model (section 5).

This is the paper's

    type storage_subsystem_state = <|
      threads: set thread_id;
      writes_seen: set write;
      coherence: rel write write;
      events_propagated_to: thread_id -> list event;
      unacknowledged_sync_requests: set barrier; |>

extended for mixed-size accesses: coherence relates *overlapping* writes with
distinct footprints, and read responses are assembled per byte from the most
recent covering write in the reader's propagation list.

It abstracts from cache protocol and storage hierarchy: a coherence
commitment here corresponds to, e.g., one write winning a race for cache-line
ownership in an implementation.  Coherence edges are established when writes
are accepted and when propagation forces an ordering; the residual freedom
(writes never co-propagated) is enumerated when final memory values are
evaluated (see ``final_memory_values``).

Store-conditional success additionally records an *atomicity constraint*: no
other write may ever be coherence-ordered between the write read by the
load-reserve and the conditional write (section 5's treatment of the
load-reserve/store-conditional primitives).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..sail.values import Bits
from .events import INITIAL_TID, BarrierEvent, BarrierId, Write, WriteId
from .keys import CachedKey, intern_key

#: An entry of a propagation list: ("w", WriteId) or ("b", BarrierId).
Event = Tuple[str, object]


class CoherenceViolation(Exception):
    """A transition would create a coherence cycle or break an atomic pair."""


#: Key of an empty propagation list; the chain grows one cons pair per event.
_EMPTY_EVENTS_KEY = CachedKey(())


class StorageSubsystem:
    """Mutable storage-subsystem state with explicit transition methods.

    The explorer clones the state before applying branching transitions;
    ``clone`` and ``key`` are therefore part of the core interface.  The
    transition methods validate their preconditions by default; the system
    state passes ``checked=True`` when applying a transition that was just
    produced by enumeration (the check already ran on an identical state).
    """

    __slots__ = (
        "threads",
        "writes_seen",
        "coherence_after",
        "events_propagated_to",
        "barriers_seen",
        "unacknowledged_syncs",
        "acknowledged_syncs",
        "atomic_pairs",
        "coherence_points",
        "_events_pos",
        "_barrier_prefix",
        "_overlaps",
        "_writes_prop",
        "_read_cache",
        "_sorted_wids",
        "_sorted_bids",
        "_transitions_cache",
        "_key_cache",
        "_writes_key",
        "_coh_key",
        "_events_keys",
        "_events_tuple",
        "_syncs_key",
        "_atomic_key",
        "_cp_key",
    )

    def __init__(self, threads: Iterable[int]):
        self.threads: Tuple[int, ...] = tuple(threads)
        self.writes_seen: Dict[WriteId, Write] = {}
        #: coherence successors: wid -> set of wids coherence-after it
        #: (kept transitively closed).
        self.coherence_after: Dict[WriteId, Set[WriteId]] = {}
        self.events_propagated_to: Dict[int, List[Event]] = {
            tid: [] for tid in self.threads
        }
        self.barriers_seen: Dict[BarrierId, BarrierEvent] = {}
        self.unacknowledged_syncs: Set[BarrierId] = set()
        self.acknowledged_syncs: Set[BarrierId] = set()
        #: (w_read, w_conditional) pairs that must stay coherence-adjacent.
        self.atomic_pairs: Set[Tuple[WriteId, WriteId]] = set()
        #: Writes past their coherence point (initial writes start there).
        #: Coherence points give barriers their write-write cumulative force
        #: (e.g. forbidding 2+2W+lwsyncs): a write separated from earlier
        #: writes by a barrier in some propagation list cannot reach its
        #: coherence point before they do.
        self.coherence_points: Set[WriteId] = set()
        #: Index of each propagation list: event -> position.  Doubles as an
        #: O(1) membership set for the can_propagate/can_acknowledge checks.
        self._events_pos: Dict[int, Dict[Event, int]] = {
            tid: {} for tid in self.threads
        }
        #: Per-thread propagation-list keys, maintained incrementally as a
        #: hash-consed chain: appending an event hashes one pair instead of
        #: re-walking the whole list.
        self._events_keys: Dict[int, CachedKey] = {
            tid: _EMPTY_EVENTS_KEY for tid in self.threads
        }
        #: The (tid, events-key) tuple assembled into ``key()``; rebuilt only
        #: when a propagation list grows instead of on every ``key()`` call.
        self._events_tuple: Optional[Tuple] = None
        #: Per-thread (position, event) list of barrier events, so Group-A
        #: prefix checks scan the few barriers instead of the whole list.
        self._barrier_prefix: Dict[int, List[Tuple[int, Event]]] = {
            tid: [] for tid in self.threads
        }
        #: wid -> frozenset of overlapping wids, maintained on acceptance so
        #: the hot coherence checks avoid pairwise footprint comparisons.
        self._overlaps: Dict[WriteId, FrozenSet[WriteId]] = {}
        #: Per-thread list of propagated writes; rebuilt on invalidation,
        #: never mutated in place (so clones may share list objects).
        self._writes_prop: Dict[int, Optional[List[Write]]] = {
            tid: [] for tid in self.threads
        }
        #: Per-thread read-response memo, replaced (never cleared in place)
        #: when a write propagates, so clones can share the inner dicts.
        self._read_cache: Dict[int, Dict[Tuple[int, int], tuple]] = {
            tid: {} for tid in self.threads
        }
        #: Sorted write/barrier ids, for deterministic enumeration loops.
        self._sorted_wids: Optional[List[WriteId]] = None
        self._sorted_bids: Optional[List[BarrierId]] = None
        #: Memoised storage-side transition options (see SystemState): a
        #: pure function of this object's state, dropped on any mutation.
        self._transitions_cache: Optional[list] = None
        #: Memoised ``key()`` and its components; mutators drop exactly the
        #: slices they touch (per-tid event keys live in ``_events_keys``).
        self._key_cache: Optional[CachedKey] = None
        self._writes_key: Optional[CachedKey] = None
        self._coh_key: Optional[CachedKey] = None
        self._syncs_key: Optional[CachedKey] = None
        self._atomic_key: Optional[CachedKey] = None
        self._cp_key: Optional[CachedKey] = None

    def _append_event(self, tid: int, event: Event) -> None:
        """Append to a propagation list, maintaining the derived indexes.

        Like every mutator, this *replaces* the structures it changes
        instead of updating them in place: ``clone`` shares everything, so
        in-place mutation would leak into sibling states.
        """
        events = self.events_propagated_to[tid]
        self.events_propagated_to = {
            **self.events_propagated_to, tid: events + [event]
        }
        self._events_pos = {
            **self._events_pos,
            tid: {**self._events_pos[tid], event: len(events)},
        }
        if event[0] == "w":
            self._writes_prop = {**self._writes_prop, tid: None}
            self._read_cache = {**self._read_cache, tid: {}}
        else:
            self._barrier_prefix = {
                **self._barrier_prefix,
                tid: self._barrier_prefix[tid] + [(len(events), event)],
            }
        # Interned: equal propagation lists reached along different
        # interleavings yield the *same* chain-key object, so seen-set
        # equality on storage keys short-circuits on identity.
        self._events_keys = {
            **self._events_keys,
            tid: intern_key((self._events_keys[tid], event)),
        }
        self._events_tuple = None
        self._key_cache = None
        self._transitions_cache = None

    # ------------------------------------------------------------------
    # Cloning and memoisation keys
    # ------------------------------------------------------------------

    def clone(self) -> "StorageSubsystem":
        """O(1) clone: every structure is shared with the original.

        Sound because mutators replace the structures they change rather
        than updating them in place (see ``_append_event``); the only
        in-place writes anywhere are pure-memo fill-ins (``read_response``,
        ``writes_propagated_to``), which are consistent across sharers by
        construction.
        """
        other = StorageSubsystem.__new__(StorageSubsystem)
        other.threads = self.threads
        other.writes_seen = self.writes_seen
        other.coherence_after = self.coherence_after
        other.events_propagated_to = self.events_propagated_to
        other.barriers_seen = self.barriers_seen
        other.unacknowledged_syncs = self.unacknowledged_syncs
        other.acknowledged_syncs = self.acknowledged_syncs
        other.atomic_pairs = self.atomic_pairs
        other.coherence_points = self.coherence_points
        other._events_pos = self._events_pos
        other._barrier_prefix = self._barrier_prefix
        other._overlaps = self._overlaps
        other._writes_prop = self._writes_prop
        other._read_cache = self._read_cache
        other._sorted_wids = self._sorted_wids
        other._sorted_bids = self._sorted_bids
        other._transitions_cache = self._transitions_cache
        other._key_cache = self._key_cache
        other._writes_key = self._writes_key
        other._coh_key = self._coh_key
        other._events_keys = self._events_keys
        other._events_tuple = self._events_tuple
        other._syncs_key = self._syncs_key
        other._atomic_key = self._atomic_key
        other._cp_key = self._cp_key
        return other

    def key(self) -> CachedKey:
        """Memoised state key, assembled from per-component cached keys.

        Each component caches its own tuple and hash, so a transition that
        (say) propagates one write re-keys only that thread's event list
        instead of re-walking and re-hashing the whole storage state.
        """
        cached = self._key_cache
        if cached is not None:
            return cached
        if self._writes_key is None:
            self._writes_key = intern_key(tuple(sorted(self.writes_seen)))
        if self._coh_key is None:
            self._coh_key = intern_key(tuple(
                (wid, tuple(sorted(succ)))
                for wid, succ in sorted(self.coherence_after.items())
                if succ
            ))
        events_tuple = self._events_tuple
        if events_tuple is None:
            events_keys = self._events_keys
            events_tuple = tuple(
                (tid, events_keys[tid]) for tid in self.threads
            )
            self._events_tuple = events_tuple
        self.syncs_key()
        if self._atomic_key is None:
            self._atomic_key = intern_key(tuple(sorted(self.atomic_pairs)))
        if self._cp_key is None:
            self._cp_key = intern_key(tuple(sorted(self.coherence_points)))
        # The composite is nearly unique per state (propagation lists move
        # every transition): plain CachedKey, no interning, so the bounded
        # intern table keeps the recurring component keys instead.
        cached = CachedKey((
            self._writes_key,
            self._coh_key,
            events_tuple,
            self._syncs_key,
            self._atomic_key,
            self._cp_key,
        ))
        self._key_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Coherence bookkeeping
    # ------------------------------------------------------------------

    def coherence_before(self, first: WriteId, second: WriteId) -> bool:
        return second in self.coherence_after.get(first, ())

    def _would_cycle(self, first: WriteId, second: WriteId) -> bool:
        return first == second or self.coherence_before(second, first)

    def _breaks_atomic_pair(self, first: WriteId, second: WriteId) -> bool:
        """Would adding first < second wedge a write into an atomic pair?

        For each recorded pair (r, c) -- meaning no write may satisfy
        r < w < c -- reject any new edge that would complete such a
        sandwiching for some existing write.
        """
        for read_wid, cond_wid in self.atomic_pairs:
            for wid in self.writes_seen:
                if wid in (read_wid, cond_wid):
                    continue
                if not self.writes_seen[wid].overlaps_write(
                    self.writes_seen[cond_wid]
                ):
                    continue
                after_read = self.coherence_before(read_wid, wid) or (
                    first == read_wid and second == wid
                )
                before_cond = self.coherence_before(wid, cond_wid) or (
                    first == wid and second == cond_wid
                )
                if after_read and before_cond:
                    return True
        return False

    def add_coherence(self, first: WriteId, second: WriteId) -> None:
        """Commit ``first`` coherence-before ``second`` (with closure)."""
        if self.coherence_before(first, second):
            return
        if self._would_cycle(first, second):
            raise CoherenceViolation(f"coherence cycle: {first} <-> {second}")
        if self._breaks_atomic_pair(first, second):
            raise CoherenceViolation("edge violates store-conditional atomicity")
        self._key_cache = None
        self._transitions_cache = None
        self._coh_key = None
        befores = [
            wid for wid, succ in self.coherence_after.items() if first in succ
        ] + [first]
        afters = frozenset(self.coherence_after.get(second, ())) | {second}
        coherence = dict(self.coherence_after)
        for before in befores:
            existing = coherence.get(before)
            coherence[before] = afters if existing is None else existing | afters
        self.coherence_after = coherence

    def can_add_coherence(self, first: WriteId, second: WriteId) -> bool:
        if self.coherence_before(first, second):
            return True
        return not (
            self._would_cycle(first, second)
            or self._breaks_atomic_pair(first, second)
        )

    # ------------------------------------------------------------------
    # Propagation-list helpers
    # ------------------------------------------------------------------

    def writes_propagated_to(self, tid: int) -> List[Write]:
        """Writes visible to ``tid``, in propagation order.

        The returned list is a shared cache: callers must not mutate it.
        """
        cached = self._writes_prop[tid]
        if cached is None:
            cached = [
                self.writes_seen[payload]
                for kind, payload in self.events_propagated_to[tid]
                if kind == "w"
            ]
            self._writes_prop[tid] = cached
        return cached

    def is_propagated_to(self, event: Event, tid: int) -> bool:
        return event in self._events_pos[tid]

    def sorted_wids(self) -> List[WriteId]:
        """All seen write ids in sorted order (cached; do not mutate)."""
        cached = self._sorted_wids
        if cached is None:
            cached = sorted(self.writes_seen)
            self._sorted_wids = cached
        return cached

    def sorted_bids(self) -> List[BarrierId]:
        """All seen barrier ids in sorted order (cached; do not mutate)."""
        cached = self._sorted_bids
        if cached is None:
            cached = sorted(self.barriers_seen)
            self._sorted_bids = cached
        return cached

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def accept_write(self, write: Write) -> None:
        """Accept a write request from its thread (thread-side store commit)."""
        if write.wid in self.writes_seen:
            raise ValueError(f"duplicate write {write.wid}")
        self._key_cache = None
        self._transitions_cache = None
        self._writes_key = None
        self._sorted_wids = None
        self.writes_seen = {**self.writes_seen, write.wid: write}
        self._record_overlaps(write)
        overlapping = self._overlaps[write.wid]
        for prior in self.writes_propagated_to(write.tid):
            if prior.wid in overlapping:
                self.add_coherence(prior.wid, write.wid)
        self._append_event(write.tid, ("w", write.wid))

    def _record_overlaps(self, write: Write) -> None:
        """Extend the wid-overlap map with a newly seen write."""
        wid = write.wid
        overlapping = frozenset(
            other_wid
            for other_wid, other in self.writes_seen.items()
            if other_wid != wid and other.overlaps_write(write)
        )
        overlaps = dict(self._overlaps)
        overlaps[wid] = overlapping
        for other_wid in overlapping:
            overlaps[other_wid] = overlaps[other_wid] | {wid}
        self._overlaps = overlaps

    def accept_initial_writes(self, writes: Iterable[Write]) -> None:
        """Install the initial memory state, propagated to every thread."""
        self._key_cache = None
        self._transitions_cache = None
        self._writes_key = None
        self._cp_key = None
        self._sorted_wids = None
        for write in writes:
            self.writes_seen = {**self.writes_seen, write.wid: write}
            self._record_overlaps(write)
            self.coherence_points = self.coherence_points | {write.wid}
            for tid in self.threads:
                self._append_event(tid, ("w", write.wid))

    def accept_barrier(self, barrier: BarrierEvent) -> None:
        self._key_cache = None
        self._transitions_cache = None
        self._sorted_bids = None
        self.barriers_seen = {**self.barriers_seen, barrier.bid: barrier}
        self._append_event(barrier.tid, ("b", barrier.bid))
        if barrier.kind == "sync":
            self._syncs_key = None
            self.unacknowledged_syncs = self.unacknowledged_syncs | {
                barrier.bid
            }

    # -- propagate write -------------------------------------------------

    def _barriers_before_event_in_origin(self, event: Event) -> List[Event]:
        """Barrier events preceding ``event`` in its origin thread's list."""
        kind, payload = event
        tid = payload.tid
        position = self._events_pos[tid].get(event)
        if position is None:
            return [e for e in self.events_propagated_to[tid] if e[0] == "b"]
        return [
            entry
            for entry in self.events_propagated_to[tid][:position]
            if entry[0] == "b"
        ]

    def can_propagate_write(self, wid: WriteId, target: int) -> bool:
        write = self.writes_seen.get(wid)
        if write is None or write.tid == target:
            return False
        event = ("w", wid)
        target_pos = self._events_pos[target]
        if event in target_pos:
            return False
        position = self._events_pos[write.tid].get(event)
        if position is None:
            return False
        # Group-A / cumulativity condition: every barrier that precedes the
        # write in its origin thread's list must already be at the target.
        for barrier_position, entry in self._barrier_prefix[write.tid]:
            if barrier_position >= position:
                break
            if entry not in target_pos:
                return False
        # Coherence: the write must be placeable after every overlapping
        # write already propagated to the target.
        overlapping = self._overlaps[wid]
        for prior in self.writes_propagated_to(target):
            if prior.wid in overlapping:
                if not self.can_add_coherence(prior.wid, wid):
                    return False
        return True

    def propagate_write(
        self, wid: WriteId, target: int, checked: bool = False
    ) -> None:
        if not checked and not self.can_propagate_write(wid, target):
            raise CoherenceViolation(f"cannot propagate {wid} to thread {target}")
        overlapping = self._overlaps[wid]
        for prior in self.writes_propagated_to(target):
            if prior.wid in overlapping:
                self.add_coherence(prior.wid, wid)
        self._append_event(target, ("w", wid))

    # -- propagate barrier -------------------------------------------------

    def write_effectively_propagated(self, wid: WriteId, target: int) -> bool:
        """Is ``wid`` visible at ``target``, possibly as a superseded version?

        A write that is coherence-before a write already propagated to the
        target (covering all its bytes) can never itself propagate there --
        the target already holds a newer version of the data -- so barrier
        Group-A conditions must count it as done.  Without this rule, tests
        like 2+2W+syncs would wedge: the old write can neither propagate
        (coherence cycle) nor be waived (sync never acknowledges).
        """
        if ("w", wid) in self._events_pos[target]:
            return True
        write = self.writes_seen[wid]
        for offset in range(write.size):
            addr = write.addr + offset
            covered = any(
                other.overlaps(addr, 1)
                and self.coherence_before(wid, other.wid)
                for other in self.writes_propagated_to(target)
            )
            if not covered:
                return False
        return True

    def can_propagate_barrier(self, bid: BarrierId, target: int) -> bool:
        barrier = self.barriers_seen.get(bid)
        if barrier is None or barrier.tid == target:
            return False
        event = ("b", bid)
        target_pos = self._events_pos[target]
        if event in target_pos:
            return False
        # All of the barrier's Group A (events before it in its origin
        # thread's list) must already have reached the target; superseded
        # writes count as effectively there.
        origin = self.events_propagated_to[barrier.tid]
        position = self._events_pos[barrier.tid].get(event, len(origin))
        for entry in origin[:position]:
            if entry[0] == "w":
                if not self.write_effectively_propagated(entry[1], target):
                    return False
            elif entry not in target_pos:
                return False
        return True

    def propagate_barrier(
        self, bid: BarrierId, target: int, checked: bool = False
    ) -> None:
        if not checked and not self.can_propagate_barrier(bid, target):
            raise CoherenceViolation(f"cannot propagate {bid} to thread {target}")
        self._append_event(target, ("b", bid))

    # -- coherence points ----------------------------------------------------

    def _has_cp_blocker(self, wid: WriteId) -> bool:
        """Must some other write reach its coherence point before ``wid``?

        Blockers, in every propagation list containing ``wid``: (a) earlier
        overlapping writes; (b) any write separated from ``wid`` by a
        barrier (this is the barriers' write-write cumulative force -- sync,
        lwsync and eieio all order coherence points of the writes around
        them).  Short-circuits on the first blocker not yet at its
        coherence point.
        """
        cps = self.coherence_points
        overlapping = self._overlaps[wid]
        event = ("w", wid)
        for tid in self.threads:
            position = self._events_pos[tid].get(event)
            if position is None:
                continue
            events = self.events_propagated_to[tid]
            last_barrier_index = -1
            for i in range(position - 1, -1, -1):
                if events[i][0] == "b":
                    last_barrier_index = i
                    break
            for i in range(position):
                kind, payload = events[i]
                if kind != "w" or payload in cps:
                    continue
                if i < last_barrier_index or payload in overlapping:
                    return True
        return False

    def can_reach_coherence_point(self, wid: WriteId) -> bool:
        if wid in self.coherence_points or wid not in self.writes_seen:
            return False
        if self._has_cp_blocker(wid):
            return False
        # The coherence edges this step commits must be consistent.
        for other_wid in self._overlaps[wid]:
            if other_wid in self.coherence_points:
                if not self.can_add_coherence(other_wid, wid):
                    return False
            else:
                if not self.can_add_coherence(wid, other_wid):
                    return False
        return True

    def reach_coherence_point(self, wid: WriteId, checked: bool = False) -> None:
        """Commit ``wid``'s coherence position (the PLDI12-style transition).

        The write becomes coherence-after every overlapping write already
        past its coherence point, and coherence-before every overlapping
        write that has not reached it yet.
        """
        if not checked and not self.can_reach_coherence_point(wid):
            raise CoherenceViolation(f"{wid} cannot reach its coherence point")
        self._key_cache = None
        self._transitions_cache = None
        self._cp_key = None
        for other_wid in sorted(self._overlaps[wid]):
            if other_wid in self.coherence_points:
                self.add_coherence(other_wid, wid)
            else:
                self.add_coherence(wid, other_wid)
        self.coherence_points = self.coherence_points | {wid}

    def all_writes_past_coherence_point(self) -> bool:
        # coherence_points only ever holds seen write ids, so comparing
        # cardinalities is equivalent to the per-write membership test.
        return len(self.coherence_points) == len(self.writes_seen)

    def syncs_key(self) -> CachedKey:
        """Cached key of the sync-acknowledgement state (unacked + acked).

        Used by the system state as the storage-side context of its
        per-thread transition-option cache.
        """
        cached = self._syncs_key
        if cached is None:
            cached = intern_key((
                tuple(sorted(self.unacknowledged_syncs)),
                tuple(sorted(self.acknowledged_syncs)),
            ))
            self._syncs_key = cached
        return cached

    # -- sync acknowledgement ----------------------------------------------

    def can_acknowledge_sync(self, bid: BarrierId) -> bool:
        if bid not in self.unacknowledged_syncs:
            return False
        event = ("b", bid)
        return all(
            event in self._events_pos[tid]
            for tid in self.threads
        )

    def acknowledge_sync(self, bid: BarrierId, checked: bool = False) -> None:
        if not checked and not self.can_acknowledge_sync(bid):
            raise CoherenceViolation(f"cannot acknowledge {bid}")
        self._key_cache = None
        self._transitions_cache = None
        self._syncs_key = None
        self.unacknowledged_syncs = self.unacknowledged_syncs - {bid}
        self.acknowledged_syncs = self.acknowledged_syncs | {bid}

    def record_atomic_pair(self, read_wid: WriteId, cond_wid: WriteId) -> None:
        """Record a load-reserve/store-conditional atomicity constraint."""
        self._key_cache = None
        self._transitions_cache = None
        self._atomic_key = None
        self.atomic_pairs = self.atomic_pairs | {(read_wid, cond_wid)}

    # -- read responses -----------------------------------------------------

    def read_response(
        self, tid: int, addr: int, size: int
    ) -> Tuple[Bits, Tuple[Tuple[WriteId, int, int], ...]]:
        """Assemble a read response per byte from the propagation list.

        Returns the value plus the per-byte-run provenance: tuples of
        (write id, first byte offset within the read, length).

        Responses are memoised per thread and invalidated when a write
        propagates to it, since identical reads recur along sibling
        interleavings that share the thread's propagation list.
        """
        cache = self._read_cache[tid]
        cached = cache.get((addr, size))
        if cached is not None:
            return cached
        propagated = self.writes_propagated_to(tid)
        byte_sources: List[Optional[Write]] = [None] * size
        for write in propagated:  # list order; later entries win
            for i in range(size):
                if write.overlaps(addr + i, 1):
                    byte_sources[i] = write
        if any(source is None for source in byte_sources):
            missing = [hex(addr + i) for i, s in enumerate(byte_sources) if s is None]
            raise CoherenceViolation(
                f"read of uninitialised memory at {missing} by thread {tid}"
            )
        value = Bits(0)
        provenance: List[Tuple[WriteId, int, int]] = []
        for i, source in enumerate(byte_sources):
            value = value.concat(source.byte(addr + i))
            if provenance and provenance[-1][0] == source.wid and (
                provenance[-1][1] + provenance[-1][2] == i
            ):
                wid, start, length = provenance[-1]
                provenance[-1] = (wid, start, length + 1)
            else:
                provenance.append((source.wid, i, 1))
        result = (value, tuple(provenance))
        cache[(addr, size)] = result
        return result

    # ------------------------------------------------------------------
    # Final memory values
    # ------------------------------------------------------------------

    def final_memory_values(self, addresses: Iterable[Tuple[int, int]]):
        """Enumerate possible final values for the given (addr, size) cells.

        Writes never co-propagated may be coherence-unrelated at the end of
        an execution; each linear extension of the established coherence
        order yields one possible final memory state.  Returns a list of
        dicts mapping (addr, size) -> int.
        """
        cells = list(addresses)
        relevant: List[Write] = [
            w
            for w in self.writes_seen.values()
            if any(w.overlaps(addr, size) for addr, size in cells)
        ]
        results = []
        seen_results = set()
        # Bounded enumeration: litmus tests have a handful of writes per cell.
        for order in permutations(sorted(relevant, key=lambda w: w.wid)):
            if not self._order_consistent(order):
                continue
            memory: Dict[int, Bits] = {}
            for write in order:
                for i in range(write.size):
                    memory[write.addr + i] = write.byte(write.addr + i)
            state = {}
            for addr, size in cells:
                value = Bits(0)
                for i in range(size):
                    value = value.concat(memory.get(addr + i, Bits.zeros(8)))
                state[(addr, size)] = value.to_int() if value.is_known else None
            frozen = tuple(sorted(state.items()))
            if frozen not in seen_results:
                seen_results.add(frozen)
                results.append(state)
        return results

    def _order_consistent(self, order: Tuple[Write, ...]) -> bool:
        position = {w.wid: i for i, w in enumerate(order)}
        for wid, successors in self.coherence_after.items():
            if wid not in position:
                continue
            for succ in successors:
                if succ in position and position[succ] < position[wid]:
                    return False
        # Store-conditional atomicity: nothing may sit between the write the
        # load-reserve read and the conditional write in coherence order.
        for read_wid, cond_wid in self.atomic_pairs:
            if cond_wid not in position:
                continue
            upper = position[cond_wid]
            lower = position.get(read_wid, -1)
            cond_write = self.writes_seen[cond_wid]
            for write in order[lower + 1 : upper]:
                if write.wid != read_wid and write.overlaps_write(cond_write):
                    return False
        # Initial writes are coherence-before everything overlapping.
        for write in order:
            if write.tid == INITIAL_TID:
                for other in order:
                    if (
                        other.tid != INITIAL_TID
                        and other.overlaps_write(write)
                        and position[other.wid] < position[write.wid]
                    ):
                        return False
        return True

    # ------------------------------------------------------------------
    # Rendering (Fig. 3-style state display)
    # ------------------------------------------------------------------

    def render(self, symbol_of=None) -> str:
        def name(addr: int) -> str:
            if symbol_of is None:
                return ""
            symbol = symbol_of(addr)
            return f"({symbol})" if symbol else ""

        lines = ["Storage subsystem state:"]
        shown = ", ".join(
            f"{w}{name(w.addr)}" for w in sorted(
                self.writes_seen.values(), key=lambda w: w.wid
            )
        )
        lines.append(f"  writes seen = {{ {shown} }}")
        edges = []
        for wid, succs in sorted(self.coherence_after.items()):
            for succ in sorted(succs):
                edges.append(f"{wid} -> {succ}")
        lines.append("  coherence = { " + ", ".join(edges) + " }")
        lines.append("  events propagated to:")
        for tid in self.threads:
            events = ", ".join(
                str(self.writes_seen[p]) + name(self.writes_seen[p].addr)
                if k == "w"
                else str(self.barriers_seen[p])
                for k, p in self.events_propagated_to[tid]
            )
            lines.append(f"    Thread {tid}: [ {events} ]")
        lines.append(
            "  unacknowledged sync requests = "
            + "{ "
            + ", ".join(str(b) for b in sorted(self.unacknowledged_syncs))
            + " }"
        )
        return "\n".join(lines)
