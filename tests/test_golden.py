"""Direct tests of the golden emulator (the hardware stand-in)."""

import pytest

from repro.golden.emulator import (
    GoldenError,
    GoldenMachine,
    UNDEF_FILL32,
    execute,
)
from repro.isa.assembler import Assembler
from repro.isa.model import default_model

MODEL = default_model()
ASM = Assembler(MODEL)


def run(machine, text, address=0x1000):
    word = ASM.assemble_instruction(text, address=address)
    machine.cia = address
    return execute(machine, MODEL.decode_or_raise(word))


class TestBasics:
    def test_addi(self):
        machine = GoldenMachine()
        nia = run(machine, "addi r1,r0,42")
        assert machine.gpr[1] == 42
        assert nia == 0x1004

    def test_memory_big_endian(self):
        machine = GoldenMachine()
        machine.gpr[1] = 0x2000
        machine.gpr[2] = 0x11223344
        run(machine, "stw r2,0(r1)")
        assert machine.memory[0x2000] == 0x11
        assert machine.memory[0x2003] == 0x44

    def test_cr_field_helpers(self):
        machine = GoldenMachine()
        machine.set_cr_field(0, 0b1010)
        assert machine.cr_field(0) == 0b1010
        assert machine.cr_bit(32) == 1  # LT
        assert machine.cr_bit(33) == 0  # GT
        machine.set_cr_bit(35, 1)
        assert machine.cr_field(0) == 0b1011

    def test_record_sets_cr0(self):
        machine = GoldenMachine()
        machine.gpr[1] = 5
        run(machine, "add. r3,r1,r1")
        assert machine.cr_field(0) == 0b0100  # GT

    def test_xer_view(self):
        machine = GoldenMachine()
        machine.xer = 0xE0000000
        assert (machine.so, machine.ov, machine.ca) == (1, 1, 1)
        machine.ca = 0
        assert machine.xer == 0xC0000000

    def test_undefined_results_use_fill_pattern(self):
        machine = GoldenMachine()
        machine.gpr[1] = 3
        machine.gpr[2] = 5
        run(machine, "mulhw r3,r1,r2")
        assert machine.gpr[3] >> 32 == UNDEF_FILL32

    def test_branch_link(self):
        machine = GoldenMachine()
        nia = run(machine, "bl 0x2000", address=0x1000)
        assert nia == 0x2000
        assert machine.lr == 0x1004

    def test_bdnz_decrements(self):
        machine = GoldenMachine()
        machine.ctr = 2
        nia = run(machine, "bdnz 0x900", address=0x1000)
        assert machine.ctr == 1
        assert nia == 0x900

    def test_reservation_protocol(self):
        machine = GoldenMachine()
        machine.gpr[1] = 0x2000
        machine.gpr[2] = 7
        run(machine, "lwarx r3,r0,r1")
        assert machine.reservation is not None
        run(machine, "stwcx. r2,r0,r1")
        assert machine.reservation is None
        assert machine.load(0x2000, 4) == 7
        assert (machine.cr_field(0) >> 1) & 1 == 1  # EQ = success

    def test_unknown_instruction_raises(self):
        machine = GoldenMachine()

        class Fake:
            name = "NotAnInstruction"
            fields = ()

        with pytest.raises(GoldenError):
            execute(machine, Fake())

    def test_unsupported_spr_raises(self):
        machine = GoldenMachine()
        from repro.golden.emulator import HANDLERS
        with pytest.raises(GoldenError):
            HANDLERS["Mtspr"](machine, {"RS": 1, "SPR": (268 & 0x1F) << 5 | (268 >> 5)})


class TestIndependenceFromSailModel:
    """The golden emulator must not share semantic code with the model."""

    def test_no_sail_imports(self):
        import repro.golden.emulator as golden
        import inspect

        source = inspect.getsource(golden)
        assert "from ..sail" not in source
        assert "import repro.sail" not in source

    def test_handler_coverage_complete(self):
        from repro.golden.emulator import HANDLERS

        missing = [
            spec.name
            for spec in MODEL.table.all_specs()
            if spec.name not in HANDLERS
        ]
        assert not missing
