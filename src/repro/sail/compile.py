"""Ahead-of-time compilation of Sail instruction descriptions to Python.

The CEK interpreter (``repro.sail.interp``) re-walks an instruction's AST
one small step at a time on every fetch and resume.  PR 1 memoised that
stepping, but every *first* execution of a state still pays the full
AST-walking machinery, and every interpreter state carries a deep
(control, environment, continuation) structure that the concurrency
model's state keys must hash and compare.

This module removes both costs: each ``FunctionClause`` body is translated
once into a specialised Python function (via ``compile()``d source, the way
openpower-isa's ``pywriter`` makes the vendor pseudocode executable), and
instruction states become flat *replay records*.

The outcome protocol of section 2.2 of the paper is preserved exactly:

  * ``run_to_outcome`` executes the compiled body until it reaches the next
    ``ReadReg`` / ``WriteReg`` / ``ReadMem`` / ``WriteMem`` / ``Barrier``
    outcome, then suspends;
  * the returned outcome's ``state`` is resumable: ``resume(state, value)``
    supplies the value the outcome was waiting for;
  * states are immutable and hashable, so ``IsaModel``'s ``run_to_outcome``
    / ``resume`` memos and the concurrency model's state keys
    (``concurrency/keys.py``) keep hitting.

A ``CompiledState`` is ``(code, opcode word, resume values so far)``: the
compiled body is deterministic given the instruction fields and the
sequence of values fed to its outcome sites, so the value tuple *is* the
continuation.  ``run_to_outcome`` re-executes the body from the start,
answering outcome sites from the recorded values, and suspends (by
exception) at the first site past the record.  Replays are cheap -- bodies
are a handful of operations -- and the model memoises per state, so each
distinct state replays once.  Equality and hashing are over the flat
``(word, values)`` record instead of the interpreter's nested
control/env/kont structure, which is what makes compiled states cheaper
to key than interpreter states.

The interpreter remains the reference implementation and the engine for
exhaustive footprint analysis (the ``_UnknownInt`` / ``fork_on_lifted``
mode): ``to_interp_state`` converts a compiled state back into the
equivalent ``InterpState`` by replaying its recorded values through the
interpreter, and ``IsaModel.footprint`` delegates there.

Compiled sources are cached process-wide, keyed on the spec definition
(name + pseudocode + field names), so every ``IsaModel`` instance shares
the codegen work; registry-dependent constants are linked per model.
"""

from __future__ import annotations

import builtins
import keyword
from typing import Dict, Optional, Tuple

from . import ast
from .interp import (
    Interp,
    InterpState,
    SailRuntimeError,
    _BUILTINS,
    _binop,
    _unop,
    as_bits,
    as_int,
    initial_state as interp_initial_state,
    resume as interp_resume,
)
from .outcomes import (
    Barrier,
    Done,
    Outcome,
    ReadMem,
    ReadReg,
    WriteMem,
    WriteReg,
)
from .values import Bits, bool_to_bit, truth

__all__ = [
    "CompiledBackend",
    "CompiledCode",
    "CompiledState",
    "SailCompileError",
    "compile_clause_source",
]


class SailCompileError(Exception):
    """The translator met a construct it cannot compile (a model bug)."""


_DONE = Done()


# ----------------------------------------------------------------------
# Compiled states
# ----------------------------------------------------------------------


class CompiledState:
    """An immutable instruction state of the compiled backend.

    ``values`` is the tuple of values fed to the body's outcome sites so
    far; ``pending`` marks a state suspended *at* an outcome site (the
    ``state`` carried by a pending outcome), mirroring the interpreter's
    ``_PENDING`` control.  Execution is deterministic given ``fields`` (a
    pure function of ``word``), so ``(code, word, values, pending)`` is a
    complete, canonical description of the state: two compiled states are
    equal exactly when the corresponding interpreter states would be.
    """

    __slots__ = ("code", "word", "fields", "values", "pending",
                 "_hash", "_twin", "_interp_twin")

    def __init__(self, code, word, fields, values, pending):
        self.code = code
        self.word = word
        self.fields = fields
        self.values = values
        self.pending = pending
        self._hash = None
        self._twin = None
        self._interp_twin = None

    def pending_twin(self) -> "CompiledState":
        """The suspended-at-an-outcome variant of this state (cached, so
        outcome identity is stable across memo rebuilds)."""
        twin = self._twin
        if twin is None:
            twin = CompiledState(
                self.code, self.word, self.fields, self.values, True
            )
            self._twin = twin
        return twin

    def resumed(self, value) -> "CompiledState":
        if not self.pending:
            raise SailRuntimeError("resume on a state that is not pending")
        return CompiledState(
            self.code, self.word, self.fields, self.values + (value,), False
        )

    def __hash__(self):
        cached = self._hash
        if cached is None:
            cached = hash((self.word, self.pending, self.values))
            self._hash = cached
        return cached

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, CompiledState):
            return NotImplemented
        return (
            self.code is other.code
            and self.word == other.word
            and self.pending == other.pending
            and self.values == other.values
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        tag = "pending" if self.pending else "plain"
        return (
            f"<CompiledState {self.code.name} word=0x{self.word:08x} "
            f"{tag} fed={len(self.values)}>"
        )


class CompiledCode:
    """One compiled instruction body, linked against a model's registry."""

    __slots__ = ("name", "fn", "source", "clause")

    def __init__(self, name, fn, source, clause):
        self.name = name
        self.fn = fn
        self.source = source
        self.clause = clause


# ----------------------------------------------------------------------
# The replay runtime
# ----------------------------------------------------------------------


class _Suspend(Exception):
    """Signals that execution reached an outcome site past the replay record."""

    __slots__ = ("outcome",)

    def __init__(self, outcome: Outcome):
        self.outcome = outcome


class _Runtime:
    """Per-execution cursor over a state's recorded outcome values.

    Outcome sites call one of the methods below; sites within the recorded
    region return their recorded value, the first site past it raises
    ``_Suspend`` carrying the outcome (with the pending twin as its
    resumable state).  Coercions replicate the interpreter's
    ``_apply_collected`` exactly; they are skipped on replay because they
    succeeded when the value was first recorded.
    """

    __slots__ = ("values", "count", "index", "state")

    def __init__(self, state: CompiledState):
        self.values = state.values
        self.count = len(state.values)
        self.index = 0
        self.state = state

    def read_reg(self, reg_slice):
        i = self.index
        if i < self.count:
            self.index = i + 1
            return self.values[i]
        raise _Suspend(ReadReg(reg_slice, self.state.pending_twin()))

    def write_reg(self, reg_slice, value):
        i = self.index
        if i < self.count:
            self.index = i + 1
            return self.values[i]
        value = (
            as_bits(value, reg_slice.width)
            if isinstance(value, Bits)
            else Bits.from_int(value, reg_slice.width)
        )
        raise _Suspend(WriteReg(reg_slice, value, self.state.pending_twin()))

    def read_mem(self, kind, addr, size):
        i = self.index
        if i < self.count:
            self.index = i + 1
            return self.values[i]
        addr = (
            as_bits(addr, 64)
            if isinstance(addr, Bits)
            else Bits.from_int(addr, 64)
        )
        raise _Suspend(
            ReadMem(kind, addr, as_int(size), self.state.pending_twin())
        )

    def write_mem(self, kind, addr, size, value):
        i = self.index
        if i < self.count:
            self.index = i + 1
            return self.values[i]
        addr = (
            as_bits(addr, 64)
            if isinstance(addr, Bits)
            else Bits.from_int(addr, 64)
        )
        size = as_int(size)
        value = (
            as_bits(value, 8 * size)
            if isinstance(value, Bits)
            else Bits.from_int(value, 8 * size)
        )
        raise _Suspend(
            WriteMem(kind, addr, size, value, self.state.pending_twin())
        )

    def barrier(self, kind):
        i = self.index
        if i < self.count:
            self.index = i + 1
            return self.values[i]
        raise _Suspend(Barrier(kind, self.state.pending_twin()))


# ----------------------------------------------------------------------
# Value helpers shared by all generated bodies (semantics mirror interp.py)
# ----------------------------------------------------------------------


def _cond(value):
    """Branch-condition truth, as the interpreter's concrete ``_condition``."""
    if isinstance(value, int):
        return bool(value)
    if isinstance(value, Bits):
        if value.width != 1:
            raise SailRuntimeError(f"condition has width {value.width}")
        return truth(value)
    raise SailRuntimeError(f"bad condition value {value!r}")


def _assign(old, value):
    """Variable assignment keeps the declared width (``_F_ASSIGNVAR``)."""
    if isinstance(old, Bits) and isinstance(value, int):
        return Bits.from_int(value, old.width)
    return value


def _upd_slice(name, old, lo, hi, update):
    """In-place bit-range update of a local (``writevarslice``)."""
    lo, hi = as_int(lo), as_int(hi)
    if not isinstance(old, Bits):
        raise SailRuntimeError(f"slice assignment to non-vector {name}")
    if isinstance(update, int):
        update = Bits.from_int(update, hi - lo + 1)
    return old.update_slice(lo, hi, update)


def _slice_val(operand, lo, hi):
    return as_bits(operand).slice(as_int(lo), as_int(hi))


def _index_val(operand, index):
    return as_bits(operand).bit(as_int(index))


def _decl_bits(value, width):
    if isinstance(value, int):
        return Bits.from_int(value, width)
    return as_bits(value, width)


def _decl_int(value):
    return as_int(value)


def _decl_bool(value):
    if isinstance(value, Bits):
        return value
    return bool_to_bit(bool(value))


def _unknown_builtin(func, _args):
    raise SailRuntimeError(f"unknown builtin {func}")


def _make_reg_resolver(registry):
    """A ``RegSpec -> RegSlice`` resolver bound to one model's registry,
    with the interpreter's ``_resolve_regspec`` normalisation (missing
    ``hi`` means the single bit ``lo``)."""

    def _reg(name, index, lo, hi):
        if index is not None:
            index = as_int(index)
        if lo is not None:
            lo = as_int(lo)
            hi = as_int(hi) if hi is not None else lo
        try:
            return registry.slice_of(name, index, lo, hi)
        except KeyError as exc:
            raise SailRuntimeError(str(exc))

    return _reg


#: Globals shared by every generated body (registry-independent).
_SHARED_GLOBALS = {
    "__builtins__": {"isinstance": builtins.isinstance},
    "_binop": _binop,
    "_unop": _unop,
    "_as_int": as_int,
    "_as_bits": as_bits,
    "_cond": _cond,
    "_assign": _assign,
    "_upd_slice": _upd_slice,
    "_slice_val": _slice_val,
    "_index_val": _index_val,
    "_decl_bits": _decl_bits,
    "_decl_int": _decl_int,
    "_decl_bool": _decl_bool,
    "_unknown_builtin": _unknown_builtin,
    "Bits": Bits,
}


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------


def _mangle(name: str) -> str:
    """Sail identifier -> Python local.  The uniform ``v_`` prefix keeps
    Sail names clear of keywords and of the ``_``-prefixed runtime names."""
    if not name.isidentifier() or keyword.iskeyword(name):
        raise SailCompileError(f"cannot compile identifier {name!r}")
    return "v_" + name


def _const_expr(expr: ast.Expr) -> Optional[object]:
    """The compile-time value of a static index/range expression, if any."""
    if expr is None:
        return None
    if isinstance(expr, ast.IntLit):
        return expr.value
    return expr  # dynamic


class _CodeGen:
    """Translates one clause body into Python source plus link-time tables."""

    def __init__(self, name: str):
        self.name = name
        self.lines = []
        self.consts: Dict[str, object] = {}
        self.regconsts: Dict[str, Tuple] = {}
        self.builtins_used = set()
        self._counter = 0

    # -- small helpers -------------------------------------------------

    def _fresh(self, prefix: str = "_t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _const(self, value) -> str:
        name = f"_K{len(self.consts)}"
        self.consts[name] = value
        return name

    def emit(self, indent: int, line: str) -> None:
        self.lines.append("    " * indent + line)

    # -- expressions ---------------------------------------------------

    def regspec(self, spec: ast.RegSpec, bound) -> str:
        """A ``RegSlice``-producing expression for a register reference.

        Fully static references (constant or absent index/range) fold to a
        link-time constant; dynamic ones resolve through the registry at
        run time, coercing index/lo/hi in the interpreter's order.
        """
        parts = (spec.index, spec.lo, spec.hi)
        static = all(p is None or isinstance(p, ast.IntLit) for p in parts)
        if static:
            key = (
                spec.name,
                None if spec.index is None else spec.index.value,
                None if spec.lo is None else spec.lo.value,
                None if spec.hi is None else spec.hi.value,
            )
            for rname, rkey in self.regconsts.items():
                if rkey == key:
                    return rname
            rname = f"_KS{len(self.regconsts)}"
            self.regconsts[rname] = key
            return rname
        index = "None" if spec.index is None else self.expr(spec.index, bound)
        lo = "None" if spec.lo is None else self.expr(spec.lo, bound)
        hi = "None" if spec.hi is None else self.expr(spec.hi, bound)
        return f"_reg({spec.name!r}, {index}, {lo}, {hi})"

    def expr(self, e: ast.Expr, bound) -> str:
        if isinstance(e, ast.Lit):
            return self._const(e.value)
        if isinstance(e, ast.IntLit):
            return repr(e.value)
        if isinstance(e, ast.Var):
            return _mangle(e.name)
        if isinstance(e, ast.RegRead):
            return f"_rt.read_reg({self.regspec(e.reg, bound)})"
        if isinstance(e, ast.MemRead):
            return (
                f"_rt.read_mem({e.kind!r}, {self.expr(e.addr, bound)}, "
                f"{self.expr(e.size, bound)})"
            )
        if isinstance(e, ast.StoreConditional):
            return (
                f"_rt.write_mem('conditional', {self.expr(e.addr, bound)}, "
                f"{self.expr(e.size, bound)}, {self.expr(e.value, bound)})"
            )
        if isinstance(e, ast.Unop):
            return f"_unop({e.op!r}, {self.expr(e.operand, bound)})"
        if isinstance(e, ast.Binop):
            return (
                f"_binop({e.op!r}, {self.expr(e.left, bound)}, "
                f"{self.expr(e.right, bound)})"
            )
        if isinstance(e, ast.SliceExpr):
            return (
                f"_slice_val({self.expr(e.operand, bound)}, "
                f"{self.expr(e.lo, bound)}, {self.expr(e.hi, bound)})"
            )
        if isinstance(e, ast.IndexExpr):
            return (
                f"_index_val({self.expr(e.operand, bound)}, "
                f"{self.expr(e.index, bound)})"
            )
        if isinstance(e, ast.Call):
            args = ", ".join(self.expr(a, bound) for a in e.args)
            args = f"({args},)" if e.args else "()"
            if e.func not in _BUILTINS:
                return f"_unknown_builtin({e.func!r}, {args})"
            self.builtins_used.add(e.func)
            return f"_B_{e.func}({args})"
        if isinstance(e, ast.IfExpr):
            return (
                f"(({self.expr(e.then, bound)}) "
                f"if _cond({self.expr(e.cond, bound)}) "
                f"else ({self.expr(e.orelse, bound)}))"
            )
        raise SailCompileError(f"cannot compile expression {e!r}")

    # -- statements ----------------------------------------------------

    def stmt(self, s: ast.Stmt, indent: int, bound: set) -> None:
        """Emit one statement; ``bound`` tracks surely-bound locals (so
        plain-variable assignment can apply the interpreter's keep-the-
        declared-width coercion, which needs the old value)."""
        if isinstance(s, ast.Block):
            if not s.body:
                self.emit(indent, "pass")
                return
            for sub in s.body:
                self.stmt(sub, indent, bound)
            return
        if isinstance(s, ast.Decl):
            value = self.expr(s.init, bound)
            name = _mangle(s.name)
            if s.typ.kind == "bits":
                self.emit(indent, f"{name} = _decl_bits({value}, {s.typ.width})")
            elif s.typ.kind == "int":
                self.emit(indent, f"{name} = _decl_int({value})")
            elif s.typ.kind == "bool":
                self.emit(indent, f"{name} = _decl_bool({value})")
            else:
                raise SailCompileError(f"unknown type {s.typ}")
            bound.add(s.name)
            return
        if isinstance(s, ast.Assign):
            self._assign_stmt(s, indent, bound)
            return
        if isinstance(s, ast.If):
            self.emit(indent, f"if _cond({self.expr(s.cond, bound)}):")
            then_bound = set(bound)
            self.stmt(s.then, indent + 1, then_bound)
            if s.orelse is not None:
                else_bound = set(bound)
                self.emit(indent, "else:")
                self.stmt(s.orelse, indent + 1, else_bound)
                bound |= then_bound & else_bound
            return
        if isinstance(s, ast.Foreach):
            self._foreach_stmt(s, indent, bound)
            return
        if isinstance(s, ast.BarrierStmt):
            self.emit(indent, f"_rt.barrier({s.kind!r})")
            return
        if isinstance(s, ast.Nop):
            self.emit(indent, "pass")
            return
        raise SailCompileError(f"cannot compile statement {s!r}")

    def _assign_stmt(self, s: ast.Assign, indent: int, bound: set) -> None:
        lhs = s.lhs
        if isinstance(lhs, ast.VarLHS):
            name = _mangle(lhs.name)
            value = self.expr(s.value, bound)
            if lhs.name in bound:
                self.emit(indent, f"{name} = _assign({name}, {value})")
            else:
                self.emit(indent, f"{name} = {value}")
                bound.add(lhs.name)
            return
        if isinstance(lhs, ast.VarSliceLHS):
            name = _mangle(lhs.name)
            old = name if lhs.name in bound else "None"
            self.emit(
                indent,
                f"{name} = _upd_slice({lhs.name!r}, {old}, "
                f"{self.expr(lhs.lo, bound)}, {self.expr(lhs.hi, bound)}, "
                f"{self.expr(s.value, bound)})",
            )
            bound.add(lhs.name)
            return
        if isinstance(lhs, ast.RegLHS):
            self.emit(
                indent,
                f"_rt.write_reg({self.regspec(lhs.reg, bound)}, "
                f"{self.expr(s.value, bound)})",
            )
            return
        if isinstance(lhs, ast.MemLHS):
            self.emit(
                indent,
                f"_rt.write_mem('plain', {self.expr(lhs.addr, bound)}, "
                f"{self.expr(lhs.size, bound)}, {self.expr(s.value, bound)})",
            )
            return
        raise SailCompileError(f"cannot compile l-value {lhs!r}")

    def _foreach_stmt(self, s: ast.Foreach, indent: int, bound: set) -> None:
        """``foreach`` mirrors the interpreter's ``_F_LOOP`` exactly: the
        loop variable is read back (coerced) after each iteration -- a body
        that assigns it steers the loop -- and stays unbound when the range
        is empty."""
        var = _mangle(s.var)
        start = self._fresh()
        stop = self._fresh()
        nxt = self._fresh()
        self.emit(indent, f"{start} = {self.expr(s.start, bound)}")
        self.emit(indent, f"{stop} = {self.expr(s.stop, bound)}")
        self.emit(indent, f"{start} = _as_int({start})")
        self.emit(indent, f"{stop} = _as_int({stop})")
        empty = f"{start} < {stop}" if s.downto else f"{start} > {stop}"
        self.emit(indent, f"if not ({empty}):")
        self.emit(indent + 1, f"{var} = {start}")
        self.emit(indent + 1, "while True:")
        body_bound = set(bound)
        body_bound.add(s.var)
        self.stmt(s.body, indent + 2, body_bound)
        step = "- 1" if s.downto else "+ 1"
        finished = f"{nxt} < {stop}" if s.downto else f"{nxt} > {stop}"
        self.emit(indent + 2, f"{nxt} = _as_int({var}) {step}")
        self.emit(indent + 2, f"if {finished}:")
        self.emit(indent + 3, "break")
        self.emit(indent + 2, f"{var} = {nxt}")


def compile_clause_source(clause: ast.FunctionClause, field_names):
    """Translate a clause body into (source, consts, regconsts, builtins).

    Registry-independent: the returned tables are linked against a concrete
    registry by ``CompiledBackend``.
    """
    gen = _CodeGen(clause.ast_name)
    gen.emit(0, "def _exec(_rt, _f):")
    bound = set()
    for name in field_names:
        gen.emit(1, f"{_mangle(name)} = _f[{name!r}]")
        bound.add(name)
    body_mark = len(gen.lines)
    gen.stmt(clause.body, 1, bound)
    if len(gen.lines) == body_mark and not field_names:
        gen.emit(1, "pass")
    source = "\n".join(gen.lines) + "\n"
    return source, gen.consts, gen.regconsts, gen.builtins_used


#: Process-wide codegen cache keyed on the spec definition, shared by all
#: models (``IsaModel`` instances re-parse clauses, but identical pseudocode
#: compiles to identical source).
_SOURCE_CACHE: Dict[Tuple, Tuple] = {}


class CompiledBackend:
    """Per-model compiled execution engine, linked to its registry."""

    def __init__(self, registry, interp: Interp):
        self._registry = registry
        self._interp = interp
        self._reg = _make_reg_resolver(registry)
        self._codes: Dict[str, CompiledCode] = {}
        self._interp_states: Dict[CompiledState, InterpState] = {}

    # -- compilation ---------------------------------------------------

    def code_for(self, spec, clause: ast.FunctionClause) -> CompiledCode:
        """The compiled body for one instruction spec (compiled lazily,
        source shared process-wide across models)."""
        code = self._codes.get(spec.name)
        if code is not None:
            return code
        field_names = tuple(f.name for f in spec.operand_fields())
        key = (spec.name, spec.pseudocode, field_names)
        cached = _SOURCE_CACHE.get(key)
        if cached is None:
            source, consts, regconsts, builtins_used = compile_clause_source(
                clause, field_names
            )
            code_obj = builtins.compile(
                source, f"<sail:{spec.name}>", "exec"
            )
            cached = (source, code_obj, consts, regconsts, builtins_used)
            _SOURCE_CACHE[key] = cached
        source, code_obj, consts, regconsts, builtins_used = cached
        namespace = dict(_SHARED_GLOBALS)
        namespace.update(consts)
        namespace["_reg"] = self._reg
        for name in builtins_used:
            namespace[f"_B_{name}"] = _BUILTINS[name]
        for rname, (reg, index, lo, hi) in regconsts.items():
            if lo is not None and hi is None:
                hi = lo
            try:
                namespace[rname] = self._registry.slice_of(reg, index, lo, hi)
            except KeyError as exc:
                raise SailRuntimeError(str(exc))
        exec(code_obj, namespace)
        code = CompiledCode(spec.name, namespace["_exec"], source, clause)
        self._codes[spec.name] = code
        return code

    # -- the outcome protocol ------------------------------------------

    def initial_state(self, spec, clause, word: int, fields) -> CompiledState:
        code = self.code_for(spec, clause)
        return CompiledState(code, word, fields, (), False)

    def run_to_outcome(self, state: CompiledState) -> Outcome:
        """Execute to the next externally visible outcome (cf. interp)."""
        if state.pending:
            raise SailRuntimeError(
                "cannot step a pending state; resume it first"
            )
        rt = _Runtime(state)
        try:
            state.code.fn(rt, state.fields)
        except _Suspend as suspend:
            return suspend.outcome
        except (NameError, UnboundLocalError) as exc:
            raise SailRuntimeError(f"unbound variable ({exc})")
        return _DONE

    def resume(self, state: CompiledState, value) -> CompiledState:
        return state.resumed(value)

    # -- interpreter delegation (footprint analysis) --------------------

    def to_interp_state(self, state: CompiledState) -> InterpState:
        """The equivalent ``InterpState``, for exhaustive footprint analysis.

        Rebuilt by replaying the recorded values through the reference
        interpreter: the values are concrete except possibly the final one
        (a ``Bits.unknown`` injected by ``remaining_state``), and the
        interpreter never steps past the final value here, so the replay
        stays in concrete (non-forking) mode.
        """
        cached = state._interp_twin
        if cached is not None:
            return cached
        current = interp_initial_state(state.code.clause.body, state.fields)
        for value in state.values:
            outcome = self._interp.run_to_outcome(current)
            current = interp_resume(outcome.state, value)
        if state.pending:
            current = self._interp.run_to_outcome(current).state
        state._interp_twin = current
        return current
