"""Exhaustive exploration: compute the set of all allowed executions.

This is the test-oracle mode of section 6: a memoised depth-first search
over the system-state transition graph.  Final states are summarised as
*outcomes* -- per-thread final register values plus possible final memory
values (one outcome per linearisation of residual coherence freedom).

This module is now a thin facade over the pluggable search subsystem
(``repro.concurrency.search``): the historical ``explore`` and
``find_witness`` entry points delegate to a ``SearchStrategy`` backend
(``SequentialDFS`` by default, which is bit-identical -- states visited,
transitions taken, outcomes -- to the pre-refactor loops).  Pass
``strategy`` (an instance or registry name) to search differently:
``ShardedParallel`` forks the frontier across worker processes inside a
single test, ``BoundedIterative`` trades completeness for a bounded,
flagged partial result.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from .search import apply_reduction, resolve_strategy
from .search.core import (  # noqa: F401  (re-exported compatibility surface)
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    Frontier as _Frontier,
    Outcome,
    Witness,
    outcome_of as _outcome_of,
    registers_of_interest as _registers_of_interest,
)
from .system import SystemState, Transition
from .thread import ModelError


def explore(
    initial: SystemState,
    memory_cells: Iterable[Tuple[int, int]] = (),
    max_states: Optional[int] = None,
    collect_deadlocks: bool = False,
    strategy=None,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
) -> ExplorationResult:
    """Exhaustively enumerate all reachable final states.

    ``memory_cells`` lists (addr, size) memory locations whose final values
    the caller cares about (from the litmus test's final condition);
    ``strategy`` picks the search backend (default: sequential DFS);
    ``reduction``/``context_bound`` apply the partial-order reduction
    options to it (``"sleep"`` preserves the outcome envelope, a context
    bound may truncate it -- reported via ``ExplorationResult.complete``;
    ``"dpor"`` layers source sets and canonical state keys on top, and
    ``symmetry=True`` additionally folds permutation-equivalent threads).
    """
    return apply_reduction(
        resolve_strategy(strategy), reduction, context_bound, symmetry
    ).explore(
        initial,
        memory_cells=memory_cells,
        max_states=max_states,
        collect_deadlocks=collect_deadlocks,
    )


def find_witness(
    initial: SystemState,
    predicate,
    memory_cells: Iterable[Tuple[int, int]] = (),
    max_states: Optional[int] = None,
    strategy=None,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
) -> Optional[Witness]:
    """Search for one execution whose outcome satisfies ``predicate``.

    Returns a ``Witness`` (unpackable as ``(trace, final_state)``, with
    ``.stats`` carrying the same accounting as ``explore``) for the first
    witnessing execution found, or None if the predicate is unsatisfiable.
    The trace is the abstract-machine run behind the outcome -- the
    executable counterpart of the paper's execution diagrams.
    ``reduction``/``context_bound``/``symmetry`` behave as in
    ``explore`` (a context-truncated witness search raises instead of
    returning an unsupported ``None``; witness searches run ``dpor`` as
    sleep sets so the returned trace is a concrete execution).
    """
    return apply_reduction(
        resolve_strategy(strategy), reduction, context_bound, symmetry
    ).find_witness(
        initial,
        predicate,
        memory_cells=memory_cells,
        max_states=max_states,
    )


def run_one(initial: SystemState, choose=None, max_steps: int = 100000):
    """Run a single (pseudo-random or guided) execution to completion.

    ``choose(state, transitions)`` picks one transition; the default takes
    the first.  Used by the interactive front-end and the emulator mode.
    """
    state = initial
    last: Optional[Transition] = None
    for step in range(max_steps):
        if state.is_final():
            return state
        transitions = state.enumerate_transitions()
        if not transitions:
            raise ModelError(
                f"deadlock in single execution after {step} steps "
                f"(last transition: {last if last is not None else 'none'})\n"
                + state.render()
            )
        transition = transitions[0] if choose is None else choose(
            state, transitions
        )
        state = state.apply(transition)
        last = transition
    raise ModelError(
        f"execution did not terminate within the step budget "
        f"({max_steps} steps; last transition: "
        f"{last if last is not None else 'none'})"
    )
