"""The storage subsystem of the concurrency model (section 5).

This is the paper's

    type storage_subsystem_state = <|
      threads: set thread_id;
      writes_seen: set write;
      coherence: rel write write;
      events_propagated_to: thread_id -> list event;
      unacknowledged_sync_requests: set barrier; |>

extended for mixed-size accesses: coherence relates *overlapping* writes with
distinct footprints, and read responses are assembled per byte from the most
recent covering write in the reader's propagation list.

It abstracts from cache protocol and storage hierarchy: a coherence
commitment here corresponds to, e.g., one write winning a race for cache-line
ownership in an implementation.  Coherence edges are established when writes
are accepted and when propagation forces an ordering; the residual freedom
(writes never co-propagated) is enumerated when final memory values are
evaluated (see ``final_memory_values``).

Store-conditional success additionally records an *atomicity constraint*: no
other write may ever be coherence-ordered between the write read by the
load-reserve and the conditional write (section 5's treatment of the
load-reserve/store-conditional primitives).
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..sail.values import Bits
from .events import INITIAL_TID, BarrierEvent, BarrierId, Write, WriteId

#: An entry of a propagation list: ("w", WriteId) or ("b", BarrierId).
Event = Tuple[str, object]


class CoherenceViolation(Exception):
    """A transition would create a coherence cycle or break an atomic pair."""


class StorageSubsystem:
    """Mutable storage-subsystem state with explicit transition methods.

    The explorer clones the state before applying branching transitions;
    ``clone`` and ``key`` are therefore part of the core interface.
    """

    def __init__(self, threads: Iterable[int]):
        self.threads: Tuple[int, ...] = tuple(threads)
        self.writes_seen: Dict[WriteId, Write] = {}
        #: coherence successors: wid -> set of wids coherence-after it
        #: (kept transitively closed).
        self.coherence_after: Dict[WriteId, Set[WriteId]] = {}
        self.events_propagated_to: Dict[int, List[Event]] = {
            tid: [] for tid in self.threads
        }
        self.barriers_seen: Dict[BarrierId, BarrierEvent] = {}
        self.unacknowledged_syncs: Set[BarrierId] = set()
        self.acknowledged_syncs: Set[BarrierId] = set()
        #: (w_read, w_conditional) pairs that must stay coherence-adjacent.
        self.atomic_pairs: Set[Tuple[WriteId, WriteId]] = set()
        #: Writes past their coherence point (initial writes start there).
        #: Coherence points give barriers their write-write cumulative force
        #: (e.g. forbidding 2+2W+lwsyncs): a write separated from earlier
        #: writes by a barrier in some propagation list cannot reach its
        #: coherence point before they do.
        self.coherence_points: Set[WriteId] = set()

    # ------------------------------------------------------------------
    # Cloning and memoisation keys
    # ------------------------------------------------------------------

    def clone(self) -> "StorageSubsystem":
        other = StorageSubsystem(self.threads)
        other.writes_seen = dict(self.writes_seen)
        other.coherence_after = {
            wid: set(succ) for wid, succ in self.coherence_after.items()
        }
        other.events_propagated_to = {
            tid: list(events) for tid, events in self.events_propagated_to.items()
        }
        other.barriers_seen = dict(self.barriers_seen)
        other.unacknowledged_syncs = set(self.unacknowledged_syncs)
        other.acknowledged_syncs = set(self.acknowledged_syncs)
        other.atomic_pairs = set(self.atomic_pairs)
        other.coherence_points = set(self.coherence_points)
        return other

    def key(self):
        return (
            tuple(sorted(self.writes_seen)),
            tuple(
                (wid, tuple(sorted(succ)))
                for wid, succ in sorted(self.coherence_after.items())
                if succ
            ),
            tuple(
                (tid, tuple(events))
                for tid, events in sorted(self.events_propagated_to.items())
            ),
            tuple(sorted(self.unacknowledged_syncs)),
            tuple(sorted(self.acknowledged_syncs)),
            tuple(sorted(self.atomic_pairs)),
            tuple(sorted(self.coherence_points)),
        )

    # ------------------------------------------------------------------
    # Coherence bookkeeping
    # ------------------------------------------------------------------

    def coherence_before(self, first: WriteId, second: WriteId) -> bool:
        return second in self.coherence_after.get(first, ())

    def _would_cycle(self, first: WriteId, second: WriteId) -> bool:
        return first == second or self.coherence_before(second, first)

    def _breaks_atomic_pair(self, first: WriteId, second: WriteId) -> bool:
        """Would adding first < second wedge a write into an atomic pair?

        For each recorded pair (r, c) -- meaning no write may satisfy
        r < w < c -- reject any new edge that would complete such a
        sandwiching for some existing write.
        """
        for read_wid, cond_wid in self.atomic_pairs:
            for wid in self.writes_seen:
                if wid in (read_wid, cond_wid):
                    continue
                if not self.writes_seen[wid].overlaps_write(
                    self.writes_seen[cond_wid]
                ):
                    continue
                after_read = self.coherence_before(read_wid, wid) or (
                    first == read_wid and second == wid
                )
                before_cond = self.coherence_before(wid, cond_wid) or (
                    first == wid and second == cond_wid
                )
                if after_read and before_cond:
                    return True
        return False

    def add_coherence(self, first: WriteId, second: WriteId) -> None:
        """Commit ``first`` coherence-before ``second`` (with closure)."""
        if self.coherence_before(first, second):
            return
        if self._would_cycle(first, second):
            raise CoherenceViolation(f"coherence cycle: {first} <-> {second}")
        if self._breaks_atomic_pair(first, second):
            raise CoherenceViolation("edge violates store-conditional atomicity")
        befores = [
            wid for wid, succ in self.coherence_after.items() if first in succ
        ] + [first]
        afters = list(self.coherence_after.get(second, ())) + [second]
        for before in befores:
            successors = self.coherence_after.setdefault(before, set())
            successors.update(afters)

    def can_add_coherence(self, first: WriteId, second: WriteId) -> bool:
        if self.coherence_before(first, second):
            return True
        return not (
            self._would_cycle(first, second)
            or self._breaks_atomic_pair(first, second)
        )

    # ------------------------------------------------------------------
    # Propagation-list helpers
    # ------------------------------------------------------------------

    def writes_propagated_to(self, tid: int) -> List[Write]:
        return [
            self.writes_seen[payload]
            for kind, payload in self.events_propagated_to[tid]
            if kind == "w"
        ]

    def is_propagated_to(self, event: Event, tid: int) -> bool:
        return event in self.events_propagated_to[tid]

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def accept_write(self, write: Write) -> None:
        """Accept a write request from its thread (thread-side store commit)."""
        if write.wid in self.writes_seen:
            raise ValueError(f"duplicate write {write.wid}")
        self.writes_seen[write.wid] = write
        for prior in self.writes_propagated_to(write.tid):
            if prior.overlaps_write(write):
                self.add_coherence(prior.wid, write.wid)
        self.events_propagated_to[write.tid].append(("w", write.wid))

    def accept_initial_writes(self, writes: Iterable[Write]) -> None:
        """Install the initial memory state, propagated to every thread."""
        for write in writes:
            self.writes_seen[write.wid] = write
            self.coherence_points.add(write.wid)
            for tid in self.threads:
                self.events_propagated_to[tid].append(("w", write.wid))

    def accept_barrier(self, barrier: BarrierEvent) -> None:
        self.barriers_seen[barrier.bid] = barrier
        self.events_propagated_to[barrier.tid].append(("b", barrier.bid))
        if barrier.kind == "sync":
            self.unacknowledged_syncs.add(barrier.bid)

    # -- propagate write -------------------------------------------------

    def _barriers_before_event_in_origin(self, event: Event) -> List[Event]:
        """Barrier events preceding ``event`` in its origin thread's list."""
        kind, payload = event
        tid = payload.tid
        result = []
        for entry in self.events_propagated_to[tid]:
            if entry == event:
                break
            if entry[0] == "b":
                result.append(entry)
        return result

    def can_propagate_write(self, wid: WriteId, target: int) -> bool:
        write = self.writes_seen.get(wid)
        if write is None or write.tid == target:
            return False
        event = ("w", wid)
        if event in self.events_propagated_to[target]:
            return False
        if event not in self.events_propagated_to[write.tid]:
            return False
        # Group-A / cumulativity condition: every barrier that precedes the
        # write in its origin thread's list must already be at the target.
        for barrier_event in self._barriers_before_event_in_origin(event):
            if barrier_event not in self.events_propagated_to[target]:
                return False
        # Coherence: the write must be placeable after every overlapping
        # write already propagated to the target.
        for prior in self.writes_propagated_to(target):
            if prior.wid != wid and prior.overlaps_write(write):
                if not self.can_add_coherence(prior.wid, wid):
                    return False
        return True

    def propagate_write(self, wid: WriteId, target: int) -> None:
        if not self.can_propagate_write(wid, target):
            raise CoherenceViolation(f"cannot propagate {wid} to thread {target}")
        write = self.writes_seen[wid]
        for prior in self.writes_propagated_to(target):
            if prior.wid != wid and prior.overlaps_write(write):
                self.add_coherence(prior.wid, wid)
        self.events_propagated_to[target].append(("w", wid))

    # -- propagate barrier -------------------------------------------------

    def write_effectively_propagated(self, wid: WriteId, target: int) -> bool:
        """Is ``wid`` visible at ``target``, possibly as a superseded version?

        A write that is coherence-before a write already propagated to the
        target (covering all its bytes) can never itself propagate there --
        the target already holds a newer version of the data -- so barrier
        Group-A conditions must count it as done.  Without this rule, tests
        like 2+2W+syncs would wedge: the old write can neither propagate
        (coherence cycle) nor be waived (sync never acknowledges).
        """
        if ("w", wid) in self.events_propagated_to[target]:
            return True
        write = self.writes_seen[wid]
        for offset in range(write.size):
            addr = write.addr + offset
            covered = any(
                other.overlaps(addr, 1)
                and self.coherence_before(wid, other.wid)
                for other in self.writes_propagated_to(target)
            )
            if not covered:
                return False
        return True

    def can_propagate_barrier(self, bid: BarrierId, target: int) -> bool:
        barrier = self.barriers_seen.get(bid)
        if barrier is None or barrier.tid == target:
            return False
        event = ("b", bid)
        if event in self.events_propagated_to[target]:
            return False
        # All of the barrier's Group A (events before it in its origin
        # thread's list) must already have reached the target; superseded
        # writes count as effectively there.
        for entry in self.events_propagated_to[barrier.tid]:
            if entry == event:
                break
            if entry[0] == "w":
                if not self.write_effectively_propagated(entry[1], target):
                    return False
            elif entry not in self.events_propagated_to[target]:
                return False
        return True

    def propagate_barrier(self, bid: BarrierId, target: int) -> None:
        if not self.can_propagate_barrier(bid, target):
            raise CoherenceViolation(f"cannot propagate {bid} to thread {target}")
        self.events_propagated_to[target].append(("b", bid))

    # -- coherence points ----------------------------------------------------

    def _cp_blockers(self, wid: WriteId) -> List[WriteId]:
        """Writes that must reach their coherence point before ``wid`` can.

        In every propagation list containing ``wid``: (a) earlier overlapping
        writes; (b) any write separated from ``wid`` by a barrier (this is
        the barriers' write-write cumulative force -- sync, lwsync and eieio
        all order coherence points of the writes around them).
        """
        write = self.writes_seen[wid]
        blockers: Set[WriteId] = set()
        event = ("w", wid)
        for tid in self.threads:
            events = self.events_propagated_to[tid]
            if event not in events:
                continue
            position = events.index(event)
            last_barrier_index = -1
            for i in range(position - 1, -1, -1):
                if events[i][0] == "b":
                    last_barrier_index = i
                    break
            for i in range(position):
                kind, payload = events[i]
                if kind != "w":
                    continue
                other = self.writes_seen[payload]
                if other.overlaps_write(write) and payload != wid:
                    blockers.add(payload)
                elif i < last_barrier_index:
                    blockers.add(payload)
        return [b for b in blockers if b not in self.coherence_points]

    def can_reach_coherence_point(self, wid: WriteId) -> bool:
        if wid in self.coherence_points or wid not in self.writes_seen:
            return False
        if self._cp_blockers(wid):
            return False
        # The coherence edges this step commits must be consistent.
        write = self.writes_seen[wid]
        for other_wid, other in self.writes_seen.items():
            if other_wid == wid or not other.overlaps_write(write):
                continue
            if other_wid in self.coherence_points:
                if not self.can_add_coherence(other_wid, wid):
                    return False
            else:
                if not self.can_add_coherence(wid, other_wid):
                    return False
        return True

    def reach_coherence_point(self, wid: WriteId) -> None:
        """Commit ``wid``'s coherence position (the PLDI12-style transition).

        The write becomes coherence-after every overlapping write already
        past its coherence point, and coherence-before every overlapping
        write that has not reached it yet.
        """
        if not self.can_reach_coherence_point(wid):
            raise CoherenceViolation(f"{wid} cannot reach its coherence point")
        write = self.writes_seen[wid]
        for other_wid, other in self.writes_seen.items():
            if other_wid == wid or not other.overlaps_write(write):
                continue
            if other_wid in self.coherence_points:
                self.add_coherence(other_wid, wid)
            else:
                self.add_coherence(wid, other_wid)
        self.coherence_points.add(wid)

    def all_writes_past_coherence_point(self) -> bool:
        return all(wid in self.coherence_points for wid in self.writes_seen)

    # -- sync acknowledgement ----------------------------------------------

    def can_acknowledge_sync(self, bid: BarrierId) -> bool:
        if bid not in self.unacknowledged_syncs:
            return False
        event = ("b", bid)
        return all(
            event in self.events_propagated_to[tid]
            for tid in self.threads
        )

    def acknowledge_sync(self, bid: BarrierId) -> None:
        if not self.can_acknowledge_sync(bid):
            raise CoherenceViolation(f"cannot acknowledge {bid}")
        self.unacknowledged_syncs.discard(bid)
        self.acknowledged_syncs.add(bid)

    # -- read responses -----------------------------------------------------

    def read_response(
        self, tid: int, addr: int, size: int
    ) -> Tuple[Bits, Tuple[Tuple[WriteId, int, int], ...]]:
        """Assemble a read response per byte from the propagation list.

        Returns the value plus the per-byte-run provenance: tuples of
        (write id, first byte offset within the read, length).
        """
        propagated = self.writes_propagated_to(tid)
        byte_sources: List[Optional[Write]] = [None] * size
        for write in propagated:  # list order; later entries win
            for i in range(size):
                if write.overlaps(addr + i, 1):
                    byte_sources[i] = write
        if any(source is None for source in byte_sources):
            missing = [hex(addr + i) for i, s in enumerate(byte_sources) if s is None]
            raise CoherenceViolation(
                f"read of uninitialised memory at {missing} by thread {tid}"
            )
        value = Bits(0)
        provenance: List[Tuple[WriteId, int, int]] = []
        for i, source in enumerate(byte_sources):
            value = value.concat(source.byte(addr + i))
            if provenance and provenance[-1][0] == source.wid and (
                provenance[-1][1] + provenance[-1][2] == i
            ):
                wid, start, length = provenance[-1]
                provenance[-1] = (wid, start, length + 1)
            else:
                provenance.append((source.wid, i, 1))
        return value, tuple(provenance)

    # ------------------------------------------------------------------
    # Final memory values
    # ------------------------------------------------------------------

    def final_memory_values(self, addresses: Iterable[Tuple[int, int]]):
        """Enumerate possible final values for the given (addr, size) cells.

        Writes never co-propagated may be coherence-unrelated at the end of
        an execution; each linear extension of the established coherence
        order yields one possible final memory state.  Returns a list of
        dicts mapping (addr, size) -> int.
        """
        cells = list(addresses)
        relevant: List[Write] = [
            w
            for w in self.writes_seen.values()
            if any(w.overlaps(addr, size) for addr, size in cells)
        ]
        results = []
        seen_results = set()
        # Bounded enumeration: litmus tests have a handful of writes per cell.
        for order in permutations(sorted(relevant, key=lambda w: w.wid)):
            if not self._order_consistent(order):
                continue
            memory: Dict[int, Bits] = {}
            for write in order:
                for i in range(write.size):
                    memory[write.addr + i] = write.byte(write.addr + i)
            state = {}
            for addr, size in cells:
                value = Bits(0)
                for i in range(size):
                    value = value.concat(memory.get(addr + i, Bits.zeros(8)))
                state[(addr, size)] = value.to_int() if value.is_known else None
            frozen = tuple(sorted(state.items()))
            if frozen not in seen_results:
                seen_results.add(frozen)
                results.append(state)
        return results

    def _order_consistent(self, order: Tuple[Write, ...]) -> bool:
        position = {w.wid: i for i, w in enumerate(order)}
        for wid, successors in self.coherence_after.items():
            if wid not in position:
                continue
            for succ in successors:
                if succ in position and position[succ] < position[wid]:
                    return False
        # Store-conditional atomicity: nothing may sit between the write the
        # load-reserve read and the conditional write in coherence order.
        for read_wid, cond_wid in self.atomic_pairs:
            if cond_wid not in position:
                continue
            upper = position[cond_wid]
            lower = position.get(read_wid, -1)
            cond_write = self.writes_seen[cond_wid]
            for write in order[lower + 1 : upper]:
                if write.wid != read_wid and write.overlaps_write(cond_write):
                    return False
        # Initial writes are coherence-before everything overlapping.
        for write in order:
            if write.tid == INITIAL_TID:
                for other in order:
                    if (
                        other.tid != INITIAL_TID
                        and other.overlaps_write(write)
                        and position[other.wid] < position[write.wid]
                    ):
                        return False
        return True

    # ------------------------------------------------------------------
    # Rendering (Fig. 3-style state display)
    # ------------------------------------------------------------------

    def render(self, symbol_of=None) -> str:
        def name(addr: int) -> str:
            if symbol_of is None:
                return ""
            symbol = symbol_of(addr)
            return f"({symbol})" if symbol else ""

        lines = ["Storage subsystem state:"]
        shown = ", ".join(
            f"{w}{name(w.addr)}" for w in sorted(
                self.writes_seen.values(), key=lambda w: w.wid
            )
        )
        lines.append(f"  writes seen = {{ {shown} }}")
        edges = []
        for wid, succs in sorted(self.coherence_after.items()):
            for succ in sorted(succs):
                edges.append(f"{wid} -> {succ}")
        lines.append("  coherence = { " + ", ".join(edges) + " }")
        lines.append("  events propagated to:")
        for tid in self.threads:
            events = ", ".join(
                str(self.writes_seen[p]) + name(self.writes_seen[p].addr)
                if k == "w"
                else str(self.barriers_seen[p])
                for k, p in self.events_propagated_to[tid]
            )
            lines.append(f"    Thread {tid}: [ {events} ]")
        lines.append(
            "  unacknowledged sync requests = "
            + "{ "
            + ", ".join(str(b) for b in sorted(self.unacknowledged_syncs))
            + " }"
        )
        return "\n".join(lines)
