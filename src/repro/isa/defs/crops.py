"""Compare instructions, condition-register logic, and CR/SPR moves.

These are where the register-granularity questions of section 2.1.4 live:
CR-logical instructions and ``mtocrf``/``mfocrf`` read and write individual
CR bits / 4-bit fields, and the model's bit-granular register slices make
``MP+sync+addr-cr`` architecturally allowed, matching hardware.
"""

from __future__ import annotations

from typing import List

from ..spec import InstructionSpec, spec
from .common import execute_clause

SPECS: List[InstructionSpec] = []


def _add(s: InstructionSpec) -> None:
    SPECS.append(s)


# ----------------------------------------------------------------------
# Compares (the cmp pseudocode appears in the paper's Fig. 3 screenshot)
# ----------------------------------------------------------------------

_CMP_TAIL = (
    "  (bit[3]) c := 0b000;\n"
    "  if a {lt} b then c := 0b100 else if a {gt} b then c := 0b010 "
    "else c := 0b001;\n"
    "  CR[4*to_num(BF)+32 .. 4*to_num(BF)+35] := c : XER.SO"
)

_add(
    spec(
        "Cmp",
        "cmp",
        "X",
        "fixed-point",
        "31 BF:3 0:1 L:1 RA:5 RB:5 0:10 0:1",
        "BF, L, RA, RB",
        execute_clause(
            "Cmp",
            "BF, L, RA, RB",
            "(bit[64]) a := 0;\n"
            "  (bit[64]) b := 0;\n"
            "  if L == 0 then { a := EXTS(64, (GPR[RA])[32..63]); "
            "b := EXTS(64, (GPR[RB])[32..63]) } "
            "else { a := GPR[RA]; b := GPR[RB] };\n"
            + _CMP_TAIL.format(lt="<", gt=">"),
        ),
        category="compare",
    )
)

_add(
    spec(
        "Cmpl",
        "cmpl",
        "X",
        "fixed-point",
        "31 BF:3 0:1 L:1 RA:5 RB:5 32:10 0:1",
        "BF, L, RA, RB",
        execute_clause(
            "Cmpl",
            "BF, L, RA, RB",
            "(bit[64]) a := 0;\n"
            "  (bit[64]) b := 0;\n"
            "  if L == 0 then { a := EXTZ(64, (GPR[RA])[32..63]); "
            "b := EXTZ(64, (GPR[RB])[32..63]) } "
            "else { a := GPR[RA]; b := GPR[RB] };\n"
            + _CMP_TAIL.format(lt="<u", gt=">u"),
        ),
        category="compare",
    )
)

_add(
    spec(
        "Cmpi",
        "cmpi",
        "D",
        "fixed-point",
        "11 BF:3 0:1 L:1 RA:5 SI:16",
        "BF, L, RA, SI",
        execute_clause(
            "Cmpi",
            "BF, L, RA, SI",
            "(bit[64]) a := 0;\n"
            "  if L == 0 then a := EXTS(64, (GPR[RA])[32..63]) "
            "else a := GPR[RA];\n"
            "  (bit[64]) b := EXTS(SI);\n"
            + _CMP_TAIL.format(lt="<", gt=">"),
        ),
        category="compare",
    )
)

_add(
    spec(
        "Cmpli",
        "cmpli",
        "D",
        "fixed-point",
        "10 BF:3 0:1 L:1 RA:5 UI:16",
        "BF, L, RA, UI",
        execute_clause(
            "Cmpli",
            "BF, L, RA, UI",
            "(bit[64]) a := 0;\n"
            "  if L == 0 then a := EXTZ(64, (GPR[RA])[32..63]) "
            "else a := GPR[RA];\n"
            "  (bit[64]) b := EXTZ(UI);\n"
            + _CMP_TAIL.format(lt="<u", gt=">u"),
        ),
        category="compare",
    )
)

# ----------------------------------------------------------------------
# Condition-register logical (XL-form) -- single-bit footprints
# ----------------------------------------------------------------------

_CR_LOGICAL = [
    ("Crand", "crand", 257, "CR[to_num(BA)+32] & CR[to_num(BB)+32]"),
    ("Cror", "cror", 449, "CR[to_num(BA)+32] | CR[to_num(BB)+32]"),
    ("Crxor", "crxor", 193, "CR[to_num(BA)+32] ^ CR[to_num(BB)+32]"),
    ("Crnand", "crnand", 225, "~(CR[to_num(BA)+32] & CR[to_num(BB)+32])"),
    ("Crnor", "crnor", 33, "~(CR[to_num(BA)+32] | CR[to_num(BB)+32])"),
    ("Creqv", "creqv", 289, "~(CR[to_num(BA)+32] ^ CR[to_num(BB)+32])"),
    ("Crandc", "crandc", 129, "CR[to_num(BA)+32] & ~CR[to_num(BB)+32]"),
    ("Crorc", "crorc", 417, "CR[to_num(BA)+32] | ~CR[to_num(BB)+32]"),
]

for name, mnemonic, xo, expr in _CR_LOGICAL:
    _add(
        spec(
            name,
            mnemonic,
            "XL",
            "fixed-point",
            f"19 BT:5 BA:5 BB:5 {xo}:10 0:1",
            "BT, BA, BB",
            execute_clause(
                name, "BT, BA, BB", f"CR[to_num(BT)+32] := {expr}"
            ),
            category="cr-logical",
        )
    )

_add(
    spec(
        "Mcrf",
        "mcrf",
        "XL",
        "fixed-point",
        "19 BF:3 0:2 BFA:3 0:2 0:5 0:10 0:1",
        "BF, BFA",
        execute_clause(
            "Mcrf",
            "BF, BFA",
            "CR[4*to_num(BF)+32 .. 4*to_num(BF)+35] := "
            "CR[4*to_num(BFA)+32 .. 4*to_num(BFA)+35]",
        ),
        category="cr-logical",
    )
)

# ----------------------------------------------------------------------
# Move to/from special-purpose registers (XER=1, LR=8, CTR=9)
# ----------------------------------------------------------------------

#: The 10-bit SPR field is encoded with its halves swapped:
#: spr number = SPR[5..9] || SPR[0..4].
_SPR_NUM = "(int) n := to_num(SPR[5..9] : SPR[0..4])"

_add(
    spec(
        "Mtspr",
        "mtspr",
        "XFX",
        "fixed-point",
        "31 RS:5 SPR:10 467:10 0:1",
        "spr, RS",
        execute_clause(
            "Mtspr",
            "RS, SPR",
            f"{_SPR_NUM};\n"
            "  if n == 1 then XER := EXTZ(32, 0b0) : (GPR[RS])[32..34] : EXTZ(29, 0b0) "
            "else if n == 8 then LR := GPR[RS] "
            "else if n == 9 then CTR := GPR[RS] else NOP()",
        ),
        invalid_when="((SPR & 0x1F) << 5 | (SPR >> 5)) not in (1, 8, 9)",
        category="spr-move",
    )
)

_add(
    spec(
        "Mfspr",
        "mfspr",
        "XFX",
        "fixed-point",
        "31 RT:5 SPR:10 339:10 0:1",
        "RT, spr",
        execute_clause(
            "Mfspr",
            "RT, SPR",
            f"{_SPR_NUM};\n"
            "  if n == 1 then GPR[RT] := XER "
            "else if n == 8 then GPR[RT] := LR "
            "else if n == 9 then GPR[RT] := CTR else NOP()",
        ),
        invalid_when="((SPR & 0x1F) << 5 | (SPR >> 5)) not in (1, 8, 9)",
        category="spr-move",
    )
)

# ----------------------------------------------------------------------
# Move to/from the condition register (field-granular, section 2.1.4)
# ----------------------------------------------------------------------

_MTCRF_BODY = (
    "foreach (i from 0 to 7)\n"
    "    if FXM[i] == 0b1 then "
    "CR[4*i+32 .. 4*i+35] := (GPR[RS])[4*i+32 .. 4*i+35]"
)

_add(
    spec(
        "Mtcrf",
        "mtcrf",
        "XFX",
        "fixed-point",
        "31 RS:5 0:1 FXM:8 0:1 144:10 0:1",
        "fxm, RS",
        execute_clause("Mtcrf", "RS, FXM", _MTCRF_BODY),
        category="cr-move",
    )
)

_add(
    spec(
        "Mtocrf",
        "mtocrf",
        "XFX",
        "fixed-point",
        "31 RS:5 1:1 FXM:8 0:1 144:10 0:1",
        "fxm, RS",
        execute_clause("Mtocrf", "RS, FXM", _MTCRF_BODY),
        invalid_when="not (FXM != 0 and (FXM & (FXM - 1)) == 0)",
        category="cr-move",
    )
)

_add(
    spec(
        "Mfcr",
        "mfcr",
        "XFX",
        "fixed-point",
        "31 RT:5 0:1 0:8 0:1 19:10 0:1",
        "RT",
        execute_clause("Mfcr", "RT", "GPR[RT] := EXTZ(64, CR)"),
        category="cr-move",
    )
)

# mfocrf reads only the selected CR field; the rest of RT is undefined.
_add(
    spec(
        "Mfocrf",
        "mfocrf",
        "XFX",
        "fixed-point",
        "31 RT:5 1:1 FXM:8 0:1 19:10 0:1",
        "RT, fxm",
        execute_clause(
            "Mfocrf",
            "RT, FXM",
            "(bit[64]) r := UNDEFINED(64);\n"
            "  foreach (i from 0 to 7)\n"
            "    if FXM[i] == 0b1 then "
            "r[4*i+32 .. 4*i+35] := CR[4*i+32 .. 4*i+35];\n"
            "  GPR[RT] := r",
        ),
        invalid_when="not (FXM != 0 and (FXM & (FXM - 1)) == 0)",
        category="cr-move",
    )
)
