"""Sequential execution of the Sail model ("the model run in sequential mode").

Section 7 of the paper validates instruction semantics by running the model
sequentially and comparing register/memory state against POWER 7 hardware.
``SequentialMachine`` is that sequential mode: a single hardware thread,
architected register state, flat byte memory, instructions executed one at a
time by driving the Sail interpreter's outcomes.

Memory is byte-granular and lifted (each byte a ``Bits(8)``), so undef bits
flow through exactly as in the concurrent model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sail.outcomes import (
    Barrier,
    Done,
    ReadMem,
    ReadReg,
    RegSlice,
    WriteMem,
    WriteReg,
)
from ..sail.values import Bits, FALSE, TRUE
from .model import DecodedInstruction, IsaModel, default_model


class SequentialError(Exception):
    """Execution failed (undecodable opcode, invalid form, bad address...)."""


@dataclass
class RegisterFile:
    """Architected register state, bit-granular via ``RegSlice`` accesses."""

    values: Dict[str, Bits] = field(default_factory=dict)

    def _shape_width(self, machine: "SequentialMachine", reg: str) -> Bits:
        info = machine.model.registry.shape_of_instance(reg)
        return Bits.zeros(info.width)

    def read(self, machine: "SequentialMachine", reg_slice: RegSlice) -> Bits:
        info = machine.model.registry.shape_of_instance(reg_slice.reg)
        value = self.values.get(reg_slice.reg)
        if value is None:
            value = Bits.zeros(info.width)
        return value.slice(reg_slice.lo - info.start, reg_slice.hi - info.start)

    def write(
        self, machine: "SequentialMachine", reg_slice: RegSlice, value: Bits
    ) -> None:
        info = machine.model.registry.shape_of_instance(reg_slice.reg)
        old = self.values.get(reg_slice.reg)
        if old is None:
            old = Bits.zeros(info.width)
        self.values[reg_slice.reg] = old.update_slice(
            reg_slice.lo - info.start, reg_slice.hi - info.start, value
        )

    def snapshot(self) -> Dict[str, Bits]:
        return dict(self.values)


class Memory:
    """Flat byte-addressed memory of lifted bytes (default zero)."""

    def __init__(self):
        self._bytes: Dict[int, Bits] = {}

    def read(self, addr: int, size: int) -> Bits:
        value = Bits(0)
        for i in range(size):
            value = value.concat(self._bytes.get(addr + i, Bits.zeros(8)))
        return value

    def write(self, addr: int, size: int, value: Bits) -> None:
        if value.width != 8 * size:
            raise SequentialError(
                f"write width {value.width} != 8*{size}"
            )
        for i in range(size):
            self._bytes[addr + i] = value.slice(8 * i, 8 * i + 7)

    def load_bytes(self, addr: int, data: bytes) -> None:
        for i, byte in enumerate(data):
            self._bytes[addr + i] = Bits.from_int(byte, 8)

    def snapshot(self) -> Dict[int, Bits]:
        return dict(self._bytes)


class SequentialMachine:
    """One thread, executing instructions in program order."""

    def __init__(self, model: Optional[IsaModel] = None):
        self.model = model if model is not None else default_model()
        self.registers = RegisterFile()
        self.memory = Memory()
        self.reservation: Optional[int] = None
        self.cia = 0
        self.instructions_retired = 0
        self.barriers_seen = []

    # -- register conveniences -----------------------------------------

    def set_gpr(self, index: int, value: int) -> None:
        self.registers.values[f"GPR{index}"] = Bits.from_int(value, 64)

    def gpr(self, index: int) -> Bits:
        return self.registers.read(
            self, self.model.registry.full_slice(f"GPR{index}")
        )

    def set_reg(self, name: str, value: int) -> None:
        info = self.model.registry.shape_of_instance(name)
        self.registers.values[name] = Bits.from_int(value, info.width)

    def reg(self, name: str) -> Bits:
        return self.registers.read(self, self.model.registry.full_slice(name))

    # -- execution -------------------------------------------------------

    def execute(self, instruction: DecodedInstruction) -> int:
        """Execute one instruction; returns the next instruction address."""
        if instruction.is_invalid_form:
            raise SequentialError(f"invalid form: {instruction}")
        # Route stepping through the model so the configured Sail backend
        # (compiled or interpreter) drives sequential execution too, and
        # the golden-emulator co-execution path exercises the same engine
        # as the concurrent explorer.
        model = self.model
        state = model.initial_state(instruction)
        nia: Optional[int] = None
        outcome = model.run_to_outcome(state)
        while not isinstance(outcome, Done):
            if isinstance(outcome, ReadReg):
                if outcome.slice.reg == "CIA":
                    value = Bits.from_int(self.cia, 64)
                else:
                    value = self.registers.read(self, outcome.slice)
                next_state = model.resume(outcome.state, value)
            elif isinstance(outcome, WriteReg):
                if outcome.slice.reg == "NIA":
                    if not outcome.value.is_known:
                        raise SequentialError("branch target has lifted bits")
                    nia = outcome.value.to_int()
                else:
                    self.registers.write(self, outcome.slice, outcome.value)
                next_state = model.resume(outcome.state, None)
            elif isinstance(outcome, ReadMem):
                addr = outcome.addr.to_int()
                if outcome.kind == "reserve":
                    self.reservation = addr
                value = self.memory.read(addr, outcome.size)
                next_state = model.resume(outcome.state, value)
            elif isinstance(outcome, WriteMem):
                addr = outcome.addr.to_int()
                if outcome.kind == "conditional":
                    success = self.reservation is not None
                    if success:
                        self.memory.write(addr, outcome.size, outcome.value)
                    self.reservation = None
                    next_state = model.resume(outcome.state, TRUE if success else FALSE)
                else:
                    self.memory.write(addr, outcome.size, outcome.value)
                    self.reservation = None
                    next_state = model.resume(outcome.state, None)
            elif isinstance(outcome, Barrier):
                self.barriers_seen.append(outcome.kind)
                next_state = model.resume(outcome.state, None)
            else:  # pragma: no cover - exhaustive over outcome union
                raise SequentialError(f"unexpected outcome {outcome!r}")
            outcome = model.run_to_outcome(next_state)
        self.instructions_retired += 1
        return nia if nia is not None else self.cia + 4

    def step(self) -> bool:
        """Fetch/decode/execute at CIA; False when no instruction is mapped."""
        word_bits = self.memory.read(self.cia, 4)
        if not word_bits.is_known:
            return False
        word = word_bits.to_int()
        if word == 0:
            return False
        instruction = self.model.decode(word)
        if instruction is None:
            raise SequentialError(f"cannot decode 0x{word:08x} at 0x{self.cia:x}")
        self.cia = self.execute(instruction)
        return True

    def run(self, entry: int, max_instructions: int = 100000) -> int:
        """Run from ``entry`` until an unmapped/zero word; returns final CIA."""
        self.cia = entry
        for _ in range(max_instructions):
            if not self.step():
                return self.cia
        raise SequentialError("instruction budget exhausted")
