"""Differential validation of the Sail model against the golden emulator.

This is the unit-test slice of the section-7 sequential validation: a
handful of seeded random tests per instruction, run on both implementations
and compared up to undef.  The full-scale run (the paper's 6984 tests) lives
in benchmarks/test_e2_sequential_validation.py.
"""

import pytest

from repro.isa.model import default_model
from repro.testgen.compare import run_differential
from repro.testgen.sequential import generate_tests

MODEL = default_model()
SPEC_NAMES = sorted(s.name for s in MODEL.table.all_specs())


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_instruction_matches_golden(spec_name):
    spec = MODEL.table.by_name(spec_name)
    for test in generate_tests(MODEL, spec, count=4, seed=2015):
        result = run_differential(MODEL, test)
        assert result.passed, (
            f"{spec_name} word=0x{test.word:08x} seed={test.seed}: "
            + "; ".join(str(m) for m in result.mismatches[:5])
        )


def test_generated_words_decode_to_their_spec():
    for spec in MODEL.table.all_specs():
        for test in generate_tests(MODEL, spec, count=2, seed=7):
            decoded = MODEL.decode(test.word)
            assert decoded is not None
            assert decoded.spec.name == spec.name


def test_generation_is_deterministic():
    spec = MODEL.table.by_name("Add")
    first = generate_tests(MODEL, spec, count=3, seed=11)
    second = generate_tests(MODEL, spec, count=3, seed=11)
    assert [t.word for t in first] == [t.word for t in second]
    assert [t.setup.gprs for t in first] == [t.setup.gprs for t in second]


def test_different_seeds_differ():
    spec = MODEL.table.by_name("Add")
    a = generate_tests(MODEL, spec, count=8, seed=1)
    b = generate_tests(MODEL, spec, count=8, seed=2)
    assert [t.setup.gprs for t in a] != [t.setup.gprs for t in b]


def test_invalid_forms_are_avoided():
    spec = MODEL.table.by_name("Lwzu")  # invalid when RA==0 or RA==RT
    for test in generate_tests(MODEL, spec, count=20, seed=3):
        decoded = MODEL.decode(test.word)
        assert not decoded.is_invalid_form
