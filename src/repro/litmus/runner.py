"""Run litmus tests through the exhaustive concurrency model.

Builds a ``SystemState`` from a parsed test (allocating addresses for the
symbolic variables, assembling each thread's program), explores all
executions, and evaluates the final condition over every outcome --
the test-oracle workflow of section 6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..concurrency.exhaustive import ExplorationResult
from ..concurrency.params import DEFAULT_PARAMS, ModelParams
from ..concurrency.search import build_strategy
from ..concurrency.system import SystemState
from ..isa.assembler import Assembler
from ..isa.model import IsaModel, default_model
from ..sail.values import Bits
from .test import LitmusTest, evaluate_condition

#: Data segment layout for symbolic variables.
DATA_BASE = 0x0000_1000
DATA_STRIDE = 0x10

#: Per-thread code segments.
CODE_BASE = 0x0005_0000
CODE_STRIDE = 0x0001_0000


@dataclass
class LitmusResult:
    """Everything the oracle reports for one test."""

    test: LitmusTest
    outcomes: Set[Tuple[Tuple, Tuple]]
    witnessed: bool  # did some outcome satisfy the (existential) condition
    holds_always: bool  # did every outcome satisfy it (for forall)
    exploration: ExplorationResult
    addresses: Dict[str, int]

    @property
    def status(self) -> str:
        """The model's verdict in litmus terms.

        A partial outcome set (budget-bounded search) is a sound
        *under*-approximation of the envelope: outcomes in it are
        genuinely reachable, so existential verdicts -- a witness was
        found, or a forall condition has a concrete counterexample --
        survive incompleteness.  Universal claims (nothing witnesses /
        every outcome satisfies) need the whole envelope and degrade to
        "StateLimit".
        """
        if self.exploration.complete:
            if self.test.quantifier == "exists":
                return "Allowed" if self.witnessed else "Forbidden"
            if self.test.quantifier == "not exists":
                return "Forbidden" if self.witnessed else "Validated"
            return "Always" if self.holds_always else "Sometimes"
        if self.test.quantifier == "exists" and self.witnessed:
            return "Allowed"
        if self.test.quantifier == "not exists" and self.witnessed:
            return "Forbidden"
        if (
            self.test.quantifier not in ("exists", "not exists")
            and self.outcomes
            and not self.holds_always
        ):
            return "Sometimes"
        return "StateLimit"

    def outcome_table(self) -> List[Tuple[str, bool]]:
        """Human-readable outcome lines plus condition verdicts."""
        lines = []
        for registers, memory in sorted(self.outcomes):
            regs, mem = self._decode_outcome(registers, memory)
            text = " ".join(
                f"{tid}:{name.lower().replace('gpr', 'r')}={value}"
                for (tid, name), value in sorted(regs.items())
                if value is not None
            )
            mem_text = " ".join(
                f"[{var}]={value}" for var, value in sorted(mem.items())
            )
            satisfied = evaluate_condition(self.test.condition, regs, mem)
            lines.append(((text + " " + mem_text).strip(), satisfied))
        return lines

    def _decode_outcome(self, registers, memory):
        regs = {(tid, name): value for tid, name, value in registers}
        addr_to_var = {addr: var for var, addr in self.addresses.items()}
        mem = {}
        for addr, _size, value in memory:
            var = addr_to_var.get(addr)
            if var is not None:
                mem[var] = value
        return regs, mem


def addresses_for(test: LitmusTest) -> Dict[str, int]:
    """The deterministic data-segment layout of a test's variables.

    Shared by ``build_system`` and the service engine (which decodes
    cached outcome sets back to variable names without rebuilding the
    system state).
    """
    return {
        var: DATA_BASE + i * DATA_STRIDE
        for i, var in enumerate(test.locations())
    }


def build_system(
    test: LitmusTest,
    model: Optional[IsaModel] = None,
    params: ModelParams = DEFAULT_PARAMS,
) -> Tuple[SystemState, Dict[str, int]]:
    """Construct the initial system state for a litmus test."""
    model = model if model is not None else default_model()
    assembler = Assembler(model)
    cell_size = 8 if test.doubleword else 4

    addresses = addresses_for(test)

    program_memory: Dict[int, int] = {}
    entries: Dict[int, int] = {}
    for tid, program in enumerate(test.programs):
        base = CODE_BASE + tid * CODE_STRIDE
        words, _labels = assembler.assemble_program(program, base)
        entries[tid] = base
        for i, word in enumerate(words):
            program_memory[base + 4 * i] = word

    initial_registers: Dict[int, Dict[str, Bits]] = {}
    for tid in range(test.thread_count):
        regs: Dict[str, Bits] = {}
        for name, value in test.init_registers.get(tid, {}).items():
            if isinstance(value, str):
                concrete = addresses[value]
            else:
                concrete = value
            width = model.registry.shape_of_instance(name).width
            regs[name] = Bits.from_int(concrete, width)
        initial_registers[tid] = regs

    initial_memory = []
    for var, addr in sorted(addresses.items()):
        value = test.init_memory.get(var, 0)
        initial_memory.append(
            (addr, cell_size, Bits.from_int(value, 8 * cell_size))
        )

    symbols = {addr: var for var, addr in addresses.items()}
    system = SystemState(
        model,
        program_memory,
        entries,
        initial_registers,
        initial_memory,
        params=params,
        symbols=symbols,
    )
    return system, addresses


def run_litmus(
    test: LitmusTest,
    model: Optional[IsaModel] = None,
    params: ModelParams = DEFAULT_PARAMS,
    max_states: Optional[int] = None,
    strategy=None,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
) -> LitmusResult:
    """Exhaustively run one litmus test and evaluate its condition.

    ``strategy`` picks the search backend (a ``SearchStrategy`` instance
    or registry name; default sequential DFS) -- e.g.
    ``ShardedParallel(jobs=4)`` forks the test's own frontier across
    worker processes.  ``reduction``/``context_bound`` apply the
    partial-order reduction options to whichever backend runs
    (``reduction="sleep"`` preserves the outcome envelope; a context
    bound may truncate it, reported through ``exploration.complete`` /
    the ``StateLimit`` status; ``reduction="dpor"`` layers source sets
    and canonical state keys on top, with ``symmetry=True`` also folding
    permutation-equivalent threads into orbit representatives).
    """
    model = model if model is not None else default_model()
    system, addresses = build_system(test, model, params)
    cell_size = 8 if test.doubleword else 4
    from .test import condition_locations

    cells = [
        (addresses[var], cell_size)
        for var in sorted(set(condition_locations(test.condition)))
    ]
    engine = build_strategy(
        strategy, reduction=reduction, context_bound=context_bound,
        symmetry=symmetry,
    )
    result = engine.explore(
        system, memory_cells=cells, max_states=max_states
    )

    witnessed = False
    holds_always = bool(result.outcomes)
    addr_to_var = {addr: var for var, addr in addresses.items()}
    for registers, memory in result.outcomes:
        regs = {(tid, name): value for tid, name, value in registers}
        mem = {
            addr_to_var[addr]: value
            for addr, _size, value in memory
            if addr in addr_to_var
        }
        if evaluate_condition(test.condition, regs, mem):
            witnessed = True
        else:
            holds_always = False

    return LitmusResult(
        test=test,
        outcomes=result.outcomes,
        witnessed=witnessed,
        holds_always=holds_always,
        exploration=result,
        addresses=addresses,
    )


def run_corpus(
    entries=None,
    jobs: Optional[int] = None,
    params: ModelParams = DEFAULT_PARAMS,
    max_states: Optional[int] = None,
    strategy=None,
    reduction: str = "none",
    context_bound: Optional[int] = None,
    symmetry: bool = False,
):
    """Exhaustively run a corpus of litmus tests across worker processes.

    ``entries`` may hold ``CorpusEntry``-like objects (anything with
    ``name``/``source`` attributes) or plain ``(name, source)`` pairs;
    ``None`` runs the built-in corpus.  ``jobs`` is the total worker
    budget (default: usable CPU count), split between per-test sharding
    and -- for a single test with a ``ShardedParallel`` strategy --
    intra-test frontier workers; ``strategy`` picks each test's search
    backend.  Returns a ``repro.concurrency.parallel.CorpusReport`` with
    per-test verdicts and merged ``ExplorationStats``.
    ``reduction``/``context_bound`` apply the partial-order reduction
    options to every test's backend.
    """
    from ..concurrency.parallel import explore_corpus

    if entries is None:
        from .library import corpus

        entries = corpus()
    items = []
    for entry in entries:
        if isinstance(entry, tuple):
            items.append(entry)
        else:
            items.append((entry.name, entry.source))
    return explore_corpus(
        items,
        jobs=jobs,
        params=params,
        max_states=max_states,
        strategy=build_strategy(
            strategy, reduction=reduction, context_bound=context_bound,
            symmetry=symmetry,
        ),
    )
