"""Service layer: engine façade, verdict cache, daemon, graceful shutdown.

The acceptance bar for the cache is *bit-identity*: a cache hit must be
indistinguishable (outcome sets, outcome lines, verdict, error text)
from the exploration it memoised, across processes and
``PYTHONHASHSEED`` values.  These tests pin that, plus the service
round-trip over real HTTP and the terminate-and-join pool cleanup the
daemon's SIGTERM path relies on.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.litmus.diy import generate
from repro.litmus.emit import emit_litmus
from repro.litmus.library import by_name
from repro.litmus.parser import parse_litmus
from repro.service import (
    EngineRequest,
    EnvelopeEngine,
    SCHEMA_VERSION,
    VerdictCache,
    cache_key,
)

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _canonical(name):
    return emit_litmus(parse_litmus(by_name(name).source))


def _comparable(payload):
    """A verdict payload minus fields a *fresh* run may legitimately vary.

    ``stats`` records wall-clock seconds, so two independent cold
    explorations differ there; everything else -- status, outcome sets,
    outcome lines, condition fields, error text, key -- must match
    exactly.
    """
    return {k: v for k, v in payload.items() if k != "stats"}


class TestCacheKey:
    """The key is a pure, process-independent function of the query."""

    _SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.litmus.emit import emit_litmus
from repro.litmus.library import by_name
from repro.litmus.parser import parse_litmus
from repro.service import cache_key
canonical = emit_litmus(parse_litmus(by_name("MP").source))
print(cache_key(canonical))
print(cache_key(canonical, strategy="sharded", reduction="sleep",
                context_bound=3, max_states=1000, sail_backend="interp"))
"""

    def test_key_identical_across_hash_seeds(self, tmp_path):
        script = tmp_path / "key_probe.py"
        script.write_text(self._SCRIPT.format(src=_SRC))
        outputs = []
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
        assert outputs[0]  # non-empty: the probe really ran
        # And the in-process value matches the subprocess values.
        assert outputs[0].splitlines()[0] == cache_key(_canonical("MP"))

    def test_every_parameter_changes_the_key(self):
        canonical = _canonical("MP")
        base = cache_key(canonical)
        variants = [
            cache_key(_canonical("SB")),
            cache_key(canonical, strategy="sharded"),
            cache_key(canonical, reduction="sleep"),
            cache_key(canonical, context_bound=2),
            cache_key(canonical, max_states=100),
            cache_key(canonical, sail_backend="interp"),
        ]
        keys = [base] + variants
        assert len(set(keys)) == len(keys)

    def test_formatting_differences_do_not_split_entries(self):
        engine = EnvelopeEngine()
        source = by_name("MP").source
        mangled = (
            "\n".join(line + "   " for line in source.splitlines())
            + "\n\n\n"
        )
        assert engine.request_key(
            EngineRequest(source=source)
        ) == engine.request_key(EngineRequest(source=mangled))

    def test_request_parameters_reach_the_key(self):
        engine = EnvelopeEngine()
        source = by_name("MP").source
        base = engine.request_key(EngineRequest(source=source))
        assert base != engine.request_key(
            EngineRequest(source=source, max_states=50)
        )
        assert base != engine.request_key(
            EngineRequest(source=source, reduction="sleep")
        )
        assert base != engine.request_key(
            EngineRequest(source=source, strategy="bounded", context_bound=2)
        )


class TestVerdictCachePersistence:
    def test_round_trip_survives_reopen(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        payload = {"status": "Allowed", "outcomes": [], "key": "k"}
        cache = VerdictCache(path)
        cache.put("k", "MP", payload)
        cache.close()

        reopened = VerdictCache(path)
        assert len(reopened) == 1
        assert "k" in reopened
        assert reopened.get("k") == payload
        stats = reopened.stats()
        assert stats["hits"] == 1 and stats["schema"] == SCHEMA_VERSION
        reopened.close()

    def test_stale_schema_rows_miss(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "verdicts.sqlite")
        cache = VerdictCache(path)
        cache.put("k", "MP", {"status": "Allowed"})
        cache.close()
        with sqlite3.connect(path) as connection:
            connection.execute("UPDATE verdicts SET schema = schema - 1")
            connection.commit()
        reopened = VerdictCache(path)
        assert reopened.get("k") is None
        assert reopened.stats()["misses"] == 1
        reopened.close()


class TestEngineCacheEquivalence:
    """Every cache hit is compared against a fresh exploration."""

    def _requests(self):
        requests = [
            EngineRequest(source=by_name(name).source, name=name)
            for name in ("MP", "MP+syncs", "SB", "LB+addrs")
        ]
        requests += [
            EngineRequest(source=test.source, name=test.name)
            for test in generate(0, 3, max_threads=2)
        ]
        return requests

    def test_hits_bit_identical_to_cold_and_fresh_runs(self):
        cached_engine = EnvelopeEngine(cache=VerdictCache())
        fresh_engine = EnvelopeEngine()
        for request in self._requests():
            cold = cached_engine.run_request(request)
            warm = cached_engine.run_request(request)
            assert not cold.cached and warm.cached
            # Hit vs the exploration it memoised: bit-identical,
            # stats included (the hit replays the stored record).
            assert warm.to_payload() == cold.to_payload()
            # Hit vs an independent cache-less exploration: identical
            # up to wall-clock stats.
            fresh = fresh_engine.run_request(request)
            assert _comparable(warm.to_payload()) == _comparable(
                fresh.to_payload()
            )
            assert warm.outcomes == fresh.outcomes

    def test_state_budget_verdicts_cached_under_their_own_key(self):
        cache = VerdictCache()
        engine = EnvelopeEngine(cache=cache)
        source = by_name("SB+syncs").source
        limited = EngineRequest(source=source, max_states=50)
        full = EngineRequest(source=source)

        cold = engine.run_request(limited)
        assert cold.status == "StateLimit" and not cold.complete
        warm = engine.run_request(limited)
        assert warm.cached and warm.to_payload() == cold.to_payload()

        unlimited = engine.run_request(full)
        assert not unlimited.cached  # different key: budget is hashed in
        assert unlimited.status in ("Allowed", "Forbidden", "Observed")
        assert len(cache) == 2


class TestRunBatch:
    def test_batch_matches_single_requests_and_reports_hits(self):
        requests = [
            EngineRequest(source=by_name(name).source, name=name)
            for name in ("MP", "SB", "LB+addrs")
        ]
        engine = EnvelopeEngine(cache=VerdictCache())
        cold = engine.run_batch(requests)
        assert (cold.hits, cold.misses) == (0, 3)
        assert [v.name for v in cold.verdicts] == ["MP", "SB", "LB+addrs"]

        warm = engine.run_batch(requests)
        assert (warm.hits, warm.misses) == (3, 0)
        assert all(v.cached for v in warm.verdicts)

        # The corpus-runner path (batch misses) and the single-request
        # path must produce identical verdicts, outcome lines included.
        single = EnvelopeEngine()
        for request, batched in zip(requests, cold.verdicts):
            alone = single.run_request(request)
            assert _comparable(batched.to_payload()) == _comparable(
                alone.to_payload()
            )


class TestDaemonRoundTrip:
    @pytest.fixture()
    def service(self):
        import threading

        from repro.service.client import ServiceClient
        from repro.service.daemon import ServiceDaemon

        daemon = ServiceDaemon(port=0)
        daemon.start_scheduler()
        thread = threading.Thread(
            target=daemon._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        host, port = daemon.address
        try:
            yield ServiceClient(url=f"http://{host}:{port}")
        finally:
            daemon.shutdown()
            thread.join(timeout=10)

    def test_query_twice_second_from_cache(self, service):
        source = by_name("MP").source
        first = service.query(source, name="MP")
        second = service.query(source, name="MP")
        assert first["status"] == "Allowed" and not first["cached"]
        assert second["cached"]
        assert _comparable(
            {k: v for k, v in second.items() if k != "cached"}
        ) == _comparable({k: v for k, v in first.items() if k != "cached"})

    def test_submit_generated_batch_and_wait(self, service):
        submitted = service.submit(
            gen={"seed": 0, "size": 2, "max_threads": 2}
        )
        assert submitted["state"] == "queued" and submitted["tests"] >= 1
        results = service.wait(submitted["job"], timeout=300)
        assert results["state"] == "done"
        assert len(results["verdicts"]) == submitted["tests"]
        assert results["cache_misses"] == submitted["tests"]
        for verdict in results["verdicts"]:
            assert verdict["status"] in (
                "Allowed", "Forbidden", "Observed", "StateLimit",
            )

    def test_errors_are_structured(self, service):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            service.query(by_name("MP").source, options={"bogus": 1})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            service.results("job-999")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            service.submit(tests=())  # empty job
        assert excinfo.value.status == 400


class TestPoolShutdown:
    def test_shutdown_active_pools_terminates_children(self):
        import multiprocessing

        from repro.concurrency.parallel import (
            _PoolHandle,
            _register_pool,
            shutdown_active_pools,
        )

        context = multiprocessing.get_context()
        pool = context.Pool(processes=1)
        children = list(pool._pool)
        pool.apply_async(time.sleep, (60,))
        _register_pool(_PoolHandle(pool=pool))

        assert shutdown_active_pools() == 1
        deadline = time.monotonic() + 10
        while any(p.is_alive() for p in children):
            assert time.monotonic() < deadline, "worker child leaked"
            time.sleep(0.05)
        # Registry is drained: a second sweep has nothing to do.
        assert shutdown_active_pools() == 0
