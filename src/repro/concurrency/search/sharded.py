"""Intra-test parallel exploration: sharded-frontier multiprocessing DFS.

One litmus test's state graph is explored by several OS processes:

1. *Prefix expansion.*  The parent runs a breadth-first expansion of the
   graph down to ``shard_depth`` levels, deduplicating against a shared
   seen-set and summarising any final/deadlocked states it meets.  The
   surviving leaves are the *subtree roots*.
2. *Key-hash partitioning.*  Each root is assigned to the worker that
   owns its state key's hash partition (``hash(key) % jobs``), so
   ownership is a pure function of the state, not of scheduling order.
3. *Worker DFS.*  Workers are forked (the ``fork`` start method is
   required: subtree root states and the prefix seen-set are inherited
   by memory, never pickled), and each runs the ordinary sequential
   driver over its roots with ONE worker-local seen-set seeded from the
   prefix, so duplicates *within* a partition are explored once.
4. *Join.*  Outcome sets (plain picklable tuples) and
   ``ExplorationStats`` come back over per-worker pipes (EOF on a pipe
   means the worker died without reporting -- a loud failure, not a
   hang) and are merged; a state reachable from roots owned by two
   different workers is explored by both, which costs time but never
   changes the result because outcomes merge as sets.

Determinism argument: the prefix expansion and every worker DFS are
deterministic, and the only cross-worker effects are set unions and
commutative counter merges, so verdicts and outcome sets are identical
to ``SequentialDFS`` regardless of scheduling (and of the hash seed,
which only moves work between partitions).  Work *accounting* is not
bit-stable: cross-partition duplicates and scheduling skew make
``states_visited``/``transitions_taken`` an honest measure of work done,
not of unique states.

The state budget is enforced per shard: the prefix charges the shared
budget, and each worker may visit up to the remaining budget in its own
partition, so a sharded run can do up to ``jobs`` times the sequential
work before giving up -- budget exhaustion still raises
``ExplorationLimit`` (with merged partial stats attached).

Witness searches ship transition-*index* paths back from workers and
replay them in the parent (enumeration is deterministic), so traces
never need to be picklable.  When sharding is impossible -- one job,
no ``fork`` start method, already inside a daemonic pool worker, or
deadlock-state collection requested -- the strategy degrades to
``SequentialDFS``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

from .base import SearchStrategy
from .core import (
    CollectOutcomes,
    ExplorationLimit,
    ExplorationResult,
    ExplorationStats,
    StopOnWitness,
    Witness,
    extend_index_path,
    extend_trace,
    replay_index_path,
    run_search,
)
from .sequential import SequentialDFS
from ..system import SystemState, Transition
from ..thread import ModelError

#: Parent-side exploration context inherited by forked workers:
#: (roots, prefix seen-set, cells, per-worker limit, predicate).
_SHARD_CONTEXT = None


def _shard_worker(worker_id: int, root_indexes: List[int], mode: str,
                  connection):
    """Worker body: DFS over the owned subtree roots, one local seen-set.

    The report is the worker's last act; the connection's write end then
    closes with the process, so the parent sees EOF -- not a hang -- if
    the worker dies before (or while) reporting.
    """
    roots, prefix_seen, cells, limit, predicate = _SHARD_CONTEXT
    stats = ExplorationStats()
    seen = set(prefix_seen)
    if mode == "explore":
        visitor = CollectOutcomes(cells)
        try:
            for index in root_indexes:
                run_search(
                    roots[index][1],
                    visitor,
                    limit=limit,
                    stats=stats,
                    strict_deadlocks=True,
                    seen=seen,
                )
            connection.send(("ok", visitor.outcomes, stats, None))
        except ExplorationLimit as exc:
            connection.send(("limit", visitor.outcomes, stats, str(exc)))
        except BaseException as exc:
            connection.send(("error", visitor.outcomes, stats, repr(exc)))
        return
    visitor = StopOnWitness(predicate, cells)
    try:
        for index in root_indexes:
            found = run_search(
                roots[index][1],
                visitor,
                limit=limit,
                stats=stats,
                strict_deadlocks=False,
                payload=(),
                extend=extend_index_path,
                seen=seen,
            )
            if found is not None:
                _state, path = found
                connection.send(("witness", (index, path), stats, None))
                return
        connection.send(("ok", None, stats, None))
    except ExplorationLimit as exc:
        connection.send(("limit", None, stats, str(exc)))
    except BaseException as exc:
        connection.send(("error", None, stats, repr(exc)))


@dataclass(frozen=True)
class ShardedParallel(SearchStrategy):
    """Fork-based intra-test parallel search over a sharded frontier.

    ``jobs=None`` resolves to the machine's usable CPU count at search
    time; ``shard_depth`` is how many transition levels the parent
    expands before handing subtrees to workers (deeper = more, smaller
    shards = better load balance, more prefix work).
    """

    jobs: Optional[int] = None
    shard_depth: int = 3

    name = "sharded"

    # -- plumbing ---------------------------------------------------------

    def effective_jobs(self) -> int:
        """The worker count a search would actually use (public: the
        benchmark harness records it to keep entries comparable)."""
        if self.jobs is not None:
            return max(1, self.jobs)
        from ..parallel import default_job_count

        return default_job_count()

    @staticmethod
    def can_fork() -> bool:
        """Whether sharding is possible here (public: see effective_jobs)."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        # Daemonic pool workers (the corpus runner's) may not fork
        # children; degrade to the sequential engine there.
        return not multiprocessing.current_process().daemon

    def _expand(
        self,
        initial: SystemState,
        visitor,
        limit: int,
        stats: ExplorationStats,
        strict_deadlocks: bool,
    ):
        """Breadth-first prefix expansion to ``shard_depth`` levels.

        Returns ``(roots, seen, found)`` where ``roots`` are
        ``(prefix-trace, state)`` leaves still to be searched, ``seen``
        is the prefix dedup set, and ``found`` is a non-``None`` visitor
        stop value (an early witness) if the prefix already decided the
        search.

        The per-state handling (final summarisation, deadlock
        accounting, strict-deadlock ModelError, seen-keyed push, budget
        check) mirrors ``core.run_search`` in breadth-first order and
        must stay semantically in lock-step with it; the cross-strategy
        equivalence tests pin the observable agreement.
        """
        roots: List[Tuple[Tuple[Transition, ...], SystemState]] = [
            ((), initial)
        ]
        seen: Set = {initial.key()}
        for _level in range(max(0, self.shard_depth)):
            next_roots: List[Tuple[Tuple[Transition, ...], SystemState]] = []
            for trace, state in roots:
                stats.max_frontier = max(
                    stats.max_frontier, len(roots) + len(next_roots)
                )
                stats.states_visited += 1
                if stats.states_visited > limit:
                    raise ExplorationLimit(
                        f"exceeded {limit} states; "
                        "increase params.max_states",
                        stats,
                    )
                if state.is_final():
                    stats.final_states += 1
                    found = visitor.on_final(state, trace)
                    if found is not None:
                        return [], seen, found
                    continue
                transitions = state.enumerate_transitions()
                if not transitions:
                    if state.threads_finished():
                        stats.deadlocks += 1
                        visitor.on_deadlock(state)
                        continue
                    if strict_deadlocks:
                        raise ModelError(
                            "deadlock: no transitions from a non-final "
                            "state\n" + state.render()
                        )
                    continue
                for transition in transitions:
                    successor = state.apply(transition)
                    stats.transitions_taken += 1
                    key = successor.key()
                    if key not in seen:
                        seen.add(key)
                        next_roots.append((trace + (transition,), successor))
            roots = next_roots
            if not roots:
                break
        return roots, seen, None

    def _partition(self, roots, jobs: int) -> List[List[int]]:
        """Key-hash-partitioned ownership: root -> worker by state key."""
        bundles: List[List[int]] = [[] for _ in range(jobs)]
        for index, (_trace, state) in enumerate(roots):
            bundles[hash(state.key()) % jobs].append(index)
        return [bundle for bundle in bundles if bundle]

    @staticmethod
    def _collect(workers):
        """Yield one report per worker, detecting dead workers as EOF.

        Each worker has a dedicated pipe whose write end only the worker
        holds (the parent closes its copy right after the fork), so a
        worker that dies before -- or in the middle of -- sending its
        report delivers EOF instead of leaving the parent blocked on a
        half-written message.  ``connection.wait`` multiplexes the
        still-pending pipes.
        """
        from multiprocessing.connection import wait

        pending = {
            connection: process for process, connection in workers
        }
        while pending:
            for connection in wait(list(pending)):
                process = pending.pop(connection)
                try:
                    yield connection.recv()
                except EOFError:
                    process.join()
                    raise ModelError(
                        "sharded worker died without reporting "
                        f"(exit code {process.exitcode})"
                    ) from None

    @staticmethod
    def _terminate(workers):
        """Stop every still-running worker (the search is decided)."""
        for process, _connection in workers:
            if process.is_alive():
                process.terminate()

    @staticmethod
    def _reap(workers):
        """Close the read ends, then join every worker.

        Closing first matters on error paths: a sibling worker blocked
        in ``connection.send`` (payload larger than the pipe buffer)
        gets ``BrokenPipeError`` and exits instead of deadlocking the
        ``join``; on the normal path every pipe is already drained and
        the close is a no-op.
        """
        for _process, connection in workers:
            connection.close()
        for process, _connection in workers:
            process.join()

    def _dispatch(self, roots, seen, cells, limit, predicate, mode):
        """Fork one worker per non-empty partition; return the workers.

        Each entry is a ``(process, read-connection)`` pair; the parent
        drops its copy of the write end immediately so worker death is
        observable as EOF on the read end.
        """
        import multiprocessing

        global _SHARD_CONTEXT
        context = multiprocessing.get_context("fork")
        bundles = self._partition(roots, self.effective_jobs())
        _SHARD_CONTEXT = (roots, seen, cells, limit, predicate)
        workers = []
        try:
            for worker_id, bundle in enumerate(bundles):
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_shard_worker,
                    args=(worker_id, bundle, mode, sender),
                    daemon=False,
                )
                process.start()
                sender.close()
                workers.append((process, receiver))
        finally:
            _SHARD_CONTEXT = None
        return workers

    # -- the strategy API -------------------------------------------------

    def explore(
        self,
        initial: SystemState,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
        collect_deadlocks: bool = False,
    ) -> ExplorationResult:
        jobs = self.effective_jobs()
        if jobs <= 1 or collect_deadlocks or not self.can_fork():
            return SequentialDFS().explore(
                initial, memory_cells, max_states, collect_deadlocks
            )
        limit = self.resolve_limit(initial, max_states)
        cells = tuple(memory_cells)
        stats = ExplorationStats()
        visitor = CollectOutcomes(cells)
        started = time.perf_counter()
        try:
            roots, seen, _found = self._expand(
                initial, visitor, limit, stats, strict_deadlocks=True
            )
            if len(roots) <= 1:
                # Graph too shallow to shard: finish inline on the shared
                # seen-set -- same traversal a one-partition worker would do.
                for _trace, state in roots:
                    run_search(
                        state,
                        visitor,
                        limit=limit,
                        stats=stats,
                        strict_deadlocks=True,
                        seen=seen,
                    )
                return ExplorationResult(visitor.outcomes, stats, [])
        finally:
            # Also on ExplorationLimit from the prefix or the inline
            # search: the exception carries this stats object, and its
            # partial work must not report zero seconds.
            stats.seconds = time.perf_counter() - started

        worker_limit = max(1, limit - stats.states_visited)
        workers = self._dispatch(
            roots, seen, cells, worker_limit, None, "explore"
        )
        outcomes = visitor.outcomes
        limit_error = None
        worker_error = None
        try:
            for kind, payload, wstats, error in self._collect(workers):
                stats.merge(wstats)
                if payload:
                    outcomes |= payload
                if kind == "limit" and limit_error is None:
                    limit_error = error
                elif kind == "error" and worker_error is None:
                    worker_error = error
                    # A worker error decides the whole explore; don't
                    # let the surviving shards burn CPU for a result
                    # that will be discarded (stop collecting too --
                    # terminated workers would only report as EOF).
                    self._terminate(workers)
                    break
        except BaseException:
            self._terminate(workers)
            raise
        finally:
            self._reap(workers)
        stats.seconds = time.perf_counter() - started
        if worker_error is not None:
            raise ModelError(f"sharded worker failed: {worker_error}")
        if limit_error is not None:
            raise ExplorationLimit(limit_error, stats)
        return ExplorationResult(outcomes, stats, [])

    def find_witness(
        self,
        initial: SystemState,
        predicate,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
    ) -> Optional[Witness]:
        jobs = self.effective_jobs()
        if jobs <= 1 or not self.can_fork():
            return SequentialDFS().find_witness(
                initial, predicate, memory_cells, max_states
            )
        limit = self.resolve_limit(initial, max_states)
        cells = tuple(memory_cells)
        stats = ExplorationStats()
        visitor = StopOnWitness(predicate, cells)
        started = time.perf_counter()
        try:
            roots, seen, found = self._expand(
                initial, visitor, limit, stats, strict_deadlocks=False
            )
            if found is not None:
                state, trace = found
                return Witness(list(trace), state, stats)
            if len(roots) <= 1:
                for trace, state in roots:
                    found = run_search(
                        state,
                        visitor,
                        limit=limit,
                        stats=stats,
                        strict_deadlocks=False,
                        payload=trace,
                        extend=extend_trace,
                        seen=seen,
                    )
                    if found is not None:
                        final_state, full_trace = found
                        return Witness(list(full_trace), final_state, stats)
                return None
        finally:
            # Also on ExplorationLimit: see explore() above.
            stats.seconds = time.perf_counter() - started

        worker_limit = max(1, limit - stats.states_visited)
        workers = self._dispatch(
            roots, seen, cells, worker_limit, predicate, "witness"
        )
        witness_payload = None
        limit_error = None
        worker_error = None
        try:
            for kind, payload, wstats, error in self._collect(workers):
                stats.merge(wstats)
                if kind == "witness":
                    witness_payload = payload
                    # A witness decides the search; stop the other shards.
                    self._terminate(workers)
                    break
                if kind == "limit" and limit_error is None:
                    limit_error = error
                elif kind == "error" and worker_error is None:
                    # Keep collecting: another shard may still produce a
                    # witness, which decides the search despite the error.
                    worker_error = error
        except BaseException:
            self._terminate(workers)
            raise
        finally:
            self._reap(workers)
        stats.seconds = time.perf_counter() - started
        if witness_payload is not None:
            root_index, index_path = witness_payload
            prefix_trace, root_state = roots[root_index]
            subtree_trace, final_state = replay_index_path(
                root_state, index_path
            )
            return Witness(
                list(prefix_trace) + subtree_trace, final_state, stats
            )
        if worker_error is not None:
            raise ModelError(f"sharded worker failed: {worker_error}")
        if limit_error is not None:
            # No shard found a witness but one gave up: inconclusive.
            raise ExplorationLimit(limit_error, stats)
        return None
