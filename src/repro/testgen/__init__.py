"""Sequential test generation and differential validation (section 7)."""

from .compare import ComparisonResult, SuiteReport, run_differential, run_suite
from .sequential import SequentialTest, generate_suite, generate_tests

__all__ = [
    "ComparisonResult",
    "SequentialTest",
    "SuiteReport",
    "generate_suite",
    "generate_tests",
    "run_differential",
    "run_suite",
]
