"""ELF64 big-endian executable reader (the paper's binary front-end).

Parses statically linked Power64 ELF executables: header validation,
loadable segments, and the symbol table (used to initialise the tool's data
memory and the user-interface symbol pretty-printer, section 6).
"""

from __future__ import annotations

import struct
from typing import List

from .format import (
    EHDR_SIZE,
    ELFCLASS64,
    ELFDATA2MSB,
    ELF_MAGIC,
    EM_PPC64,
    ET_EXEC,
    ElfError,
    ElfImage,
    PHDR_SIZE,
    PT_LOAD,
    Segment,
    SHDR_SIZE,
    SHT_STRTAB,
    SHT_SYMTAB,
    SYM_SIZE,
    Symbol,
)

_BE = ">"


def read_elf(blob: bytes) -> ElfImage:
    """Parse an ELF64BE executable into an ``ElfImage``."""
    if len(blob) < EHDR_SIZE:
        raise ElfError("file shorter than an ELF header")
    (
        magic,
        ei_class,
        ei_data,
        ei_version,
        _osabi,
        _abiversion,
        e_type,
        e_machine,
        _e_version,
        e_entry,
        e_phoff,
        e_shoff,
        _e_flags,
        _e_ehsize,
        e_phentsize,
        e_phnum,
        e_shentsize,
        e_shnum,
        e_shstrndx,
    ) = struct.unpack(_BE + "4sBBBBB7xHHIQQQIHHHHHH", blob[:EHDR_SIZE])
    if magic != ELF_MAGIC:
        raise ElfError("bad ELF magic")
    if ei_class != ELFCLASS64:
        raise ElfError("not a 64-bit ELF (POWER64 required)")
    if ei_data != ELFDATA2MSB:
        raise ElfError("not big-endian (POWER64 ABI v1 required)")
    if e_machine != EM_PPC64:
        raise ElfError(f"machine {e_machine} is not EM_PPC64")
    if e_type != ET_EXEC:
        raise ElfError("not a statically linked executable (ET_EXEC)")
    if ei_version != 1:
        raise ElfError("unsupported ELF version")

    segments = _read_segments(blob, e_phoff, e_phentsize, e_phnum)
    symbols = _read_symbols(blob, e_shoff, e_shentsize, e_shnum)
    return ElfImage(entry=e_entry, segments=segments, symbols=symbols)


def _read_segments(blob, phoff, phentsize, phnum) -> List[Segment]:
    if phentsize not in (0, PHDR_SIZE):
        raise ElfError(f"unexpected program-header size {phentsize}")
    segments: List[Segment] = []
    for i in range(phnum):
        start = phoff + i * PHDR_SIZE
        (
            p_type,
            p_flags,
            p_offset,
            p_vaddr,
            _p_paddr,
            p_filesz,
            p_memsz,
            _p_align,
        ) = struct.unpack(_BE + "IIQQQQQQ", blob[start : start + PHDR_SIZE])
        if p_type != PT_LOAD:
            continue
        if p_offset + p_filesz > len(blob):
            raise ElfError("segment data extends past end of file")
        segments.append(
            Segment(
                vaddr=p_vaddr,
                data=blob[p_offset : p_offset + p_filesz],
                memsz=p_memsz,
                flags=p_flags,
            )
        )
    return segments


def _read_symbols(blob, shoff, shentsize, shnum) -> List[Symbol]:
    if shnum == 0:
        return []
    if shentsize not in (0, SHDR_SIZE):
        raise ElfError(f"unexpected section-header size {shentsize}")
    headers = []
    for i in range(shnum):
        start = shoff + i * SHDR_SIZE
        headers.append(
            struct.unpack(_BE + "IIQQQQIIQQ", blob[start : start + SHDR_SIZE])
        )
    symbols: List[Symbol] = []
    for header in headers:
        (_name, sh_type, _flags, _addr, offset, size, link, _info, _align,
         entsize) = header
        if sh_type != SHT_SYMTAB:
            continue
        if entsize not in (0, SYM_SIZE):
            raise ElfError(f"unexpected symbol entry size {entsize}")
        if not 0 <= link < len(headers):
            raise ElfError("symbol table string-table link out of range")
        str_header = headers[link]
        if str_header[1] != SHT_STRTAB:
            raise ElfError("symbol table linked to a non-string-table")
        strtab = blob[str_header[4] : str_header[4] + str_header[5]]
        count = size // SYM_SIZE
        for index in range(count):
            start = offset + index * SYM_SIZE
            st_name, st_info, _other, _shndx, st_value, st_size = (
                struct.unpack(_BE + "IBBHQQ", blob[start : start + SYM_SIZE])
            )
            if st_name == 0:
                continue
            end = strtab.index(b"\x00", st_name)
            symbols.append(
                Symbol(
                    name=strtab[st_name:end].decode(),
                    value=st_value,
                    size=st_size,
                    kind=st_info & 0xF,
                )
            )
    return symbols
