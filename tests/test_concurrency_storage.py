"""Unit and property tests for the storage subsystem."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.concurrency.events import (
    BarrierEvent,
    BarrierId,
    Write,
    WriteId,
    initial_write,
)
from repro.concurrency.storage import CoherenceViolation, StorageSubsystem
from repro.sail.values import Bits


def _write(tid, index, addr, size, value, unit=0):
    return Write(
        WriteId(tid, (tid, index), unit), addr, size,
        Bits.from_int(value, 8 * size),
    )


def _storage(threads=(0, 1)):
    storage = StorageSubsystem(threads)
    storage.accept_initial_writes([
        initial_write(0, 0x1000, 4, Bits.zeros(32)),
        initial_write(1, 0x1010, 4, Bits.zeros(32)),
    ])
    return storage


class TestAcceptWrite:
    def test_write_joins_own_propagation_list(self):
        storage = _storage()
        write = _write(0, 0, 0x1000, 4, 1)
        storage.accept_write(write)
        assert ("w", write.wid) in storage.events_propagated_to[0]
        assert ("w", write.wid) not in storage.events_propagated_to[1]

    def test_coherence_after_initial_write(self):
        storage = _storage()
        write = _write(0, 0, 0x1000, 4, 1)
        storage.accept_write(write)
        init_wid = next(
            w for w in storage.writes_seen if w.tid == -1
        )
        init = storage.writes_seen[init_wid]
        if init.addr == 0x1000:
            assert storage.coherence_before(init_wid, write.wid)

    def test_same_thread_same_address_ordered(self):
        storage = _storage()
        first = _write(0, 0, 0x1000, 4, 1)
        second = _write(0, 1, 0x1000, 4, 2)
        storage.accept_write(first)
        storage.accept_write(second)
        assert storage.coherence_before(first.wid, second.wid)

    def test_overlapping_mixed_size_ordered(self):
        storage = _storage()
        word = _write(0, 0, 0x1000, 4, 0xAABBCCDD)
        byte = _write(0, 1, 0x1002, 1, 0xEE)
        storage.accept_write(word)
        storage.accept_write(byte)
        assert storage.coherence_before(word.wid, byte.wid)

    def test_duplicate_write_rejected(self):
        storage = _storage()
        write = _write(0, 0, 0x1000, 4, 1)
        storage.accept_write(write)
        with pytest.raises(ValueError):
            storage.accept_write(write)


class TestPropagation:
    def test_propagate_appends_and_orders(self):
        storage = _storage()
        write = _write(0, 0, 0x1000, 4, 1)
        storage.accept_write(write)
        assert storage.can_propagate_write(write.wid, 1)
        storage.propagate_write(write.wid, 1)
        assert ("w", write.wid) in storage.events_propagated_to[1]
        assert not storage.can_propagate_write(write.wid, 1)

    def test_conflicting_coherence_blocks_propagation(self):
        storage = _storage()
        w0 = _write(0, 0, 0x1000, 4, 1)
        w1 = _write(1, 0, 0x1000, 4, 2)
        storage.accept_write(w0)
        storage.accept_write(w1)
        storage.propagate_write(w0.wid, 1)  # w1 <co w0 at thread 1
        assert storage.coherence_before(w1.wid, w0.wid)
        # Now w1 can never propagate to thread 0 past w0.
        assert not storage.can_propagate_write(w1.wid, 0)

    def test_barrier_blocks_following_write(self):
        storage = _storage()
        w0 = _write(0, 0, 0x1000, 4, 1)
        barrier = BarrierEvent(BarrierId(0, (0, 1)), "sync")
        w1 = _write(0, 2, 0x1010, 4, 1)
        storage.accept_write(w0)
        storage.accept_barrier(barrier)
        storage.accept_write(w1)
        # w1 sits after the barrier: it cannot reach thread 1 before it.
        assert not storage.can_propagate_write(w1.wid, 1)
        storage.propagate_write(w0.wid, 1)
        storage.propagate_barrier(barrier.bid, 1)
        assert storage.can_propagate_write(w1.wid, 1)

    def test_barrier_group_a_accepts_superseded_writes(self):
        """A coherence-superseded Group-A write must not wedge the barrier."""
        storage = _storage()
        w_old = _write(0, 0, 0x1000, 4, 1)
        w_new = _write(1, 0, 0x1000, 4, 2)
        storage.accept_write(w_old)
        storage.accept_write(w_new)
        storage.propagate_write(w_new.wid, 0)  # w_old <co w_new
        barrier = BarrierEvent(BarrierId(0, (0, 1)), "sync")
        storage.accept_barrier(barrier)
        # w_old can never reach thread 1 (w_new is already there), but the
        # barrier may still propagate: thread 1 holds a newer version.
        assert not storage.can_propagate_write(w_old.wid, 1)
        assert storage.can_propagate_barrier(barrier.bid, 1)


class TestSyncAcknowledgement:
    def test_ack_requires_propagation_everywhere(self):
        storage = _storage()
        barrier = BarrierEvent(BarrierId(0, (0, 0)), "sync")
        storage.accept_barrier(barrier)
        assert not storage.can_acknowledge_sync(barrier.bid)
        storage.propagate_barrier(barrier.bid, 1)
        assert storage.can_acknowledge_sync(barrier.bid)
        storage.acknowledge_sync(barrier.bid)
        assert barrier.bid in storage.acknowledged_syncs
        assert barrier.bid not in storage.unacknowledged_syncs

    def test_lwsync_never_enters_ack_queue(self):
        storage = _storage()
        barrier = BarrierEvent(BarrierId(0, (0, 0)), "lwsync")
        storage.accept_barrier(barrier)
        assert not storage.unacknowledged_syncs


class TestReadResponse:
    def test_reads_latest_write_per_byte(self):
        storage = _storage()
        word = _write(0, 0, 0x1000, 4, 0x11223344)
        byte = _write(0, 1, 0x1001, 1, 0xEE)
        storage.accept_write(word)
        storage.accept_write(byte)
        value, provenance = storage.read_response(0, 0x1000, 4)
        assert value.to_int() == 0x11EE3344
        assert len(provenance) == 3  # word / byte / word runs

    def test_unwritten_memory_is_an_error(self):
        storage = _storage()
        with pytest.raises(CoherenceViolation):
            storage.read_response(0, 0x9999, 4)

    def test_only_propagated_writes_visible(self):
        storage = _storage()
        write = _write(0, 0, 0x1000, 4, 7)
        storage.accept_write(write)
        value0, _ = storage.read_response(0, 0x1000, 4)
        value1, _ = storage.read_response(1, 0x1000, 4)
        assert value0.to_int() == 7
        assert value1.to_int() == 0


class TestCoherencePoints:
    def test_initial_writes_start_past_cp(self):
        storage = _storage()
        assert storage.all_writes_past_coherence_point()

    def test_simple_cp_commits_order(self):
        storage = _storage()
        w0 = _write(0, 0, 0x1000, 4, 1)
        w1 = _write(1, 0, 0x1000, 4, 2)
        storage.accept_write(w0)
        storage.accept_write(w1)
        assert storage.can_reach_coherence_point(w0.wid)
        storage.reach_coherence_point(w0.wid)
        # w0 at its CP while w1 is not: w0 <co w1 is now committed.
        assert storage.coherence_before(w0.wid, w1.wid)
        storage.reach_coherence_point(w1.wid)
        assert storage.all_writes_past_coherence_point()

    def test_barrier_orders_coherence_points(self):
        storage = _storage()
        w0 = _write(0, 0, 0x1000, 4, 1)
        barrier = BarrierEvent(BarrierId(0, (0, 1)), "lwsync")
        w1 = _write(0, 2, 0x1010, 4, 2)
        storage.accept_write(w0)
        storage.accept_barrier(barrier)
        storage.accept_write(w1)
        # w1 is behind the barrier: its CP must wait for w0's.
        assert not storage.can_reach_coherence_point(w1.wid)
        storage.reach_coherence_point(w0.wid)
        assert storage.can_reach_coherence_point(w1.wid)


class TestAtomicPairs:
    def test_edge_through_pair_rejected(self):
        storage = _storage()
        w_sc = _write(0, 1, 0x1000, 4, 1)
        w_other = _write(1, 0, 0x1000, 4, 2)
        init_wid = next(
            wid for wid, w in storage.writes_seen.items() if w.addr == 0x1000
        )
        storage.accept_write(w_sc)
        storage.atomic_pairs.add((init_wid, w_sc.wid))
        storage.accept_write(w_other)
        # Squeezing w_other between the pair is forbidden.
        assert not storage.can_add_coherence(w_other.wid, w_sc.wid) or (
            not storage.can_add_coherence(init_wid, w_other.wid)
        )


class TestCloneAndKey:
    def test_clone_is_independent(self):
        storage = _storage()
        write = _write(0, 0, 0x1000, 4, 1)
        clone = storage.clone()
        storage.accept_write(write)
        assert write.wid in storage.writes_seen
        assert write.wid not in clone.writes_seen

    def test_key_distinguishes_states(self):
        a = _storage()
        b = _storage()
        assert a.key() == b.key()
        a.accept_write(_write(0, 0, 0x1000, 4, 1))
        assert a.key() != b.key()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from([0, 1]),
                              st.sampled_from([0x1000, 0x1010]),
                              st.integers(0, 255)),
                    min_size=0, max_size=5))
    def test_coherence_is_acyclic_invariant(self, writes):
        """After any accept/propagate sequence, coherence stays acyclic."""
        storage = _storage()
        for index, (tid, addr, value) in enumerate(writes):
            write = _write(tid, index, addr, 4, value)
            storage.accept_write(write)
            for target in (0, 1):
                if storage.can_propagate_write(write.wid, target):
                    storage.propagate_write(write.wid, target)
        for wid, successors in storage.coherence_after.items():
            assert wid not in successors  # irreflexive
            for succ in successors:
                assert wid not in storage.coherence_after.get(succ, set())


class TestFinalMemory:
    def test_unrelated_writes_enumerate_both_orders(self):
        storage = _storage()
        w0 = _write(0, 0, 0x1000, 4, 1)
        w1 = _write(1, 0, 0x1000, 4, 2)
        storage.accept_write(w0)
        storage.accept_write(w1)
        finals = storage.final_memory_values([(0x1000, 4)])
        values = {state[(0x1000, 4)] for state in finals}
        assert values == {1, 2}

    def test_committed_coherence_constrains_finals(self):
        storage = _storage()
        w0 = _write(0, 0, 0x1000, 4, 1)
        w1 = _write(1, 0, 0x1000, 4, 2)
        storage.accept_write(w0)
        storage.accept_write(w1)
        storage.add_coherence(w0.wid, w1.wid)
        finals = storage.final_memory_values([(0x1000, 4)])
        values = {state[(0x1000, 4)] for state in finals}
        assert values == {2}
