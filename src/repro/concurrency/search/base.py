"""The ``SearchStrategy`` API: interchangeable exploration backends.

A strategy answers the two oracle questions over a system-state graph --
*all* reachable outcomes (``explore``) and *one* witnessing execution
(``find_witness``) -- and is free to organise the traversal however it
likes: plain DFS, frontier-sharded multiprocessing, budget-bounded
iterative deepening.  Strategies are small frozen dataclasses so they
are picklable (corpus workers receive them by value), hashable and
cheaply replaceable (``dataclasses.replace`` retunes the worker budget).
"""

from __future__ import annotations

import abc
from typing import ClassVar, Iterable, Optional, Tuple

from .core import ExplorationResult, Witness
from ..system import SystemState


class SearchStrategy(abc.ABC):
    """One way of traversing a system-state transition graph."""

    #: Registry / CLI name of the strategy.
    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def explore(
        self,
        initial: SystemState,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
        collect_deadlocks: bool = False,
    ) -> ExplorationResult:
        """Enumerate reachable final states; collect all outcomes.

        ``memory_cells`` lists (addr, size) memory locations whose final
        values the caller cares about (from the litmus final condition).
        Raises ``ExplorationLimit`` on budget exhaustion unless the
        strategy degrades to a partial result (``result.complete`` is
        then False).
        """

    @abc.abstractmethod
    def find_witness(
        self,
        initial: SystemState,
        predicate,
        memory_cells: Iterable[Tuple[int, int]] = (),
        max_states: Optional[int] = None,
    ) -> Optional[Witness]:
        """Search for one execution whose outcome satisfies ``predicate``."""

    @staticmethod
    def resolve_limit(initial: SystemState, max_states: Optional[int]) -> int:
        return (
            max_states if max_states is not None else initial.params.max_states
        )
