#!/usr/bin/env python3
"""Sequential differential validation (section 7 of the paper).

Generates seeded random single-instruction tests across the whole corpus,
runs each on the Sail-derived model *and* on the independent golden
emulator (our stand-in for the paper's POWER 7 server), and compares the
final architected state up to undef bits.

Run:  python examples/differential_validation.py [tests-per-instruction]
"""

import sys
import time
from collections import Counter

from repro import default_model
from repro.testgen.compare import run_suite
from repro.testgen.sequential import generate_suite


def main() -> None:
    print(__doc__)
    per_instruction = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    model = default_model()

    started = time.perf_counter()
    tests = generate_suite(model, per_instruction=per_instruction, seed=2015)
    print(f"generated {len(tests)} tests "
          f"({per_instruction} per instruction, "
          f"{len(model.table.all_specs())} instructions)")

    report = run_suite(model, tests)
    elapsed = time.perf_counter() - started

    by_form = Counter()
    for spec in model.table.all_specs():
        by_form[spec.form] += report.per_instruction.get(spec.name, 0)
    print("\ntests per instruction form:")
    for form, count in sorted(by_form.items()):
        print(f"  {form:4s} {count}")

    print(f"\n{report.passed}/{report.total} tests passed "
          f"in {elapsed:.1f}s (paper: 6984 tests, all pass)")
    if report.failures:
        print("failures:")
        for failure in report.failures[:10]:
            print(f"  {failure.test.spec_name} 0x{failure.test.word:08x}")
            for mismatch in failure.mismatches[:3]:
                print(f"    {mismatch}")
        raise SystemExit(1)
    print("model and golden emulator agree up to undef on every test.")


if __name__ == "__main__":
    main()
