"""E1 -- instruction coverage (paper section 4.1).

The paper extracts decode + pseudocode for the 154 user-mode Branch and
Fixed-Point Facility instructions (counting add/add./addo/addo. as one),
plus the Book II barriers and the load-reserve/store-conditional pairs.
This bench counts our corpus per facility/category and checks the build
pipeline (parse + type-check) timing.
"""

from collections import Counter

from conftest import print_table

from repro.isa.model import IsaModel
from repro.sail.typecheck import check_corpus


def test_e1_instruction_coverage(model, benchmark):
    def build_and_check():
        fresh = IsaModel()
        return check_corpus(fresh)

    checked = benchmark(build_and_check)
    specs = model.table.all_specs()
    assert checked == len(specs)

    by_facility = Counter(spec.facility for spec in specs)
    by_category = Counter(spec.category for spec in specs)
    rows = [
        (facility, count) for facility, count in sorted(by_facility.items())
    ]
    rows.append(("TOTAL", len(specs)))
    print_table(
        "E1: instruction coverage by facility "
        "(paper: 154 user instructions + barriers/atomics)",
        ["facility", "instructions"],
        rows,
    )
    print_table(
        "E1: coverage by category",
        ["category", "instructions"],
        sorted(by_category.items()),
    )

    # The reproduction must cover every facility the paper names.
    assert by_facility["branch"] >= 4
    assert by_facility["fixed-point"] >= 100
    assert by_facility["barrier"] >= 3
    assert by_facility["atomic"] == 4
    assert len(specs) >= 130
