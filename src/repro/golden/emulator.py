"""An independent "golden" POWER emulator, standing in for hardware.

Section 7 of the paper validates the Sail-derived model against a POWER 7
server.  We have no hardware, so this module is the substitute: a second,
from-scratch implementation of the same instructions written directly
against the ISA manual in plain Python (integers and explicit masking, no
Sail, no lifted bits).  The differential harness (``repro.testgen``) runs
both and compares final state up to the model's ``undef`` bits, exactly as
the paper compares model vs hardware "up to undef".

Where the architecture leaves a value undefined, hardware returns *some*
concrete value; this emulator fills such results with the pattern
``0xA5A5...`` so that a model that wrongly claims a concrete value will be
caught by the comparison.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..isa.model import DecodedInstruction

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1

#: Deterministic filler for architecturally undefined results.
UNDEF_FILL32 = 0xA5A5A5A5
UNDEF_FILL64 = 0xA5A5A5A5A5A5A5A5


class GoldenError(Exception):
    """The golden emulator cannot execute this instruction."""


def _sext(value: int, width: int) -> int:
    """Sign-extend a ``width``-bit value to a Python int."""
    value &= (1 << width) - 1
    if value >> (width - 1):
        value -= 1 << width
    return value


def _u(value: int, width: int = 64) -> int:
    return value & ((1 << width) - 1)


def _rotl(value: int, amount: int, width: int) -> int:
    amount %= width
    value &= (1 << width) - 1
    return ((value << amount) | (value >> (width - amount))) & ((1 << width) - 1) if amount else value


def _mask(mstart: int, mstop: int) -> int:
    """POWER 64-bit rotate mask (MSB-0 numbering, wrapping)."""
    def bit(i: int) -> int:
        return 1 << (63 - i)

    mask = 0
    if mstart <= mstop:
        for i in range(mstart, mstop + 1):
            mask |= bit(i)
    else:
        for i in range(mstart, 64):
            mask |= bit(i)
        for i in range(0, mstop + 1):
            mask |= bit(i)
    return mask


class GoldenMachine:
    """Plain-integer architected state."""

    def __init__(self):
        self.gpr = [0] * 32
        self.cr = 0  # 32 bits
        self.so = 0
        self.ov = 0
        self.ca = 0
        self.lr = 0
        self.ctr = 0
        self.cia = 0
        self.memory: Dict[int, int] = {}  # byte-addressed
        self.reservation: Optional[int] = None

    # -- memory ----------------------------------------------------------

    def load(self, addr: int, size: int) -> int:
        value = 0
        for i in range(size):
            value = (value << 8) | self.memory.get(_u(addr + i), 0)
        return value

    def store(self, addr: int, size: int, value: int) -> None:
        for i in range(size):
            self.memory[_u(addr + i)] = (value >> (8 * (size - 1 - i))) & 0xFF

    # -- CR helpers --------------------------------------------------------

    def set_cr_field(self, index: int, value: int) -> None:
        shift = 4 * (7 - index)
        self.cr = (self.cr & ~(0xF << shift)) | ((value & 0xF) << shift)

    def cr_field(self, index: int) -> int:
        return (self.cr >> (4 * (7 - index))) & 0xF

    def cr_bit(self, bit_index: int) -> int:
        """CR bit in the 32..63 vendor numbering."""
        return (self.cr >> (63 - bit_index)) & 1

    def set_cr_bit(self, bit_index: int, value: int) -> None:
        mask = 1 << (63 - bit_index)
        self.cr = (self.cr & ~mask) | (mask if value & 1 else 0)

    def record(self, result64: int) -> None:
        signed = _sext(result64, 64)
        flags = 0b100 if signed < 0 else (0b010 if signed > 0 else 0b001)
        self.set_cr_field(0, (flags << 1) | self.so)

    def record_undefined(self) -> None:
        """Record form over a partially undefined result (mulhw., divw.)."""
        self.set_cr_field(0, ((UNDEF_FILL32 & 0b111) << 1) | self.so)

    def set_ov(self, flag: int) -> None:
        self.ov = flag & 1
        self.so |= self.ov

    # -- XER as a register -------------------------------------------------

    @property
    def xer(self) -> int:
        return (self.so << 31) | (self.ov << 30) | (self.ca << 29)

    @xer.setter
    def xer(self, value: int) -> None:
        self.so = (value >> 31) & 1
        self.ov = (value >> 30) & 1
        self.ca = (value >> 29) & 1


Handler = Callable[[GoldenMachine, Dict[str, int]], Optional[int]]

HANDLERS: Dict[str, Handler] = {}


def handler(name: str):
    def register(func: Handler) -> Handler:
        HANDLERS[name] = func
        return func

    return register


def execute(machine: GoldenMachine, instruction: DecodedInstruction) -> int:
    """Execute one instruction; returns the next instruction address."""
    fields = dict(instruction.fields)
    try:
        func = HANDLERS[instruction.name]
    except KeyError:
        raise GoldenError(f"no golden handler for {instruction.name}")
    nia = func(machine, fields)
    return nia if nia is not None else _u(machine.cia + 4)


# ----------------------------------------------------------------------
# Branch facility
# ----------------------------------------------------------------------


@handler("B")
def _b(m: GoldenMachine, f):
    offset = _sext(f["LI"] << 2, 26)
    target = _u(offset) if f["AA"] else _u(m.cia + offset)
    if f["LK"]:
        m.lr = _u(m.cia + 4)
    return target


def _bo_taken(m: GoldenMachine, bo: int, bi: int, decrement_ok: bool = True) -> bool:
    if decrement_ok and not (bo >> 2) & 1:  # BO[2]=0: decrement CTR
        m.ctr = _u(m.ctr - 1)
        ctr_ok = (m.ctr != 0) != bool((bo >> 1) & 1)  # BO[3]
    else:
        ctr_ok = True
    if not (bo >> 4) & 1:  # BO[0]=0: test CR bit against BO[1]
        cond_ok = m.cr_bit(bi + 32) == ((bo >> 3) & 1)
    else:
        cond_ok = True
    return ctr_ok and cond_ok


@handler("Bc")
def _bc(m: GoldenMachine, f):
    taken = _bo_taken(m, f["BO"], f["BI"])
    lr = _u(m.cia + 4)
    offset = _sext(f["BD"] << 2, 16)
    target = _u(offset) if f["AA"] else _u(m.cia + offset)
    if f["LK"]:
        m.lr = lr
    return target if taken else None


@handler("Bclr")
def _bclr(m: GoldenMachine, f):
    taken = _bo_taken(m, f["BO"], f["BI"])
    target = m.lr & ~0b11
    if f["LK"]:
        m.lr = _u(m.cia + 4)
    return target if taken else None


@handler("Bcctr")
def _bcctr(m: GoldenMachine, f):
    taken = _bo_taken(m, f["BO"], f["BI"], decrement_ok=False)
    target = m.ctr & ~0b11
    if f["LK"]:
        m.lr = _u(m.cia + 4)
    return target if taken else None


# ----------------------------------------------------------------------
# Loads and stores
# ----------------------------------------------------------------------


def _ea_d(m: GoldenMachine, f) -> int:
    base = 0 if f["RA"] == 0 else m.gpr[f["RA"]]
    return _u(base + _sext(f["D"], 16))


def _ea_ds(m: GoldenMachine, f) -> int:
    base = 0 if f["RA"] == 0 else m.gpr[f["RA"]]
    return _u(base + _sext(f["DS"] << 2, 16))


def _ea_x(m: GoldenMachine, f) -> int:
    base = 0 if f["RA"] == 0 else m.gpr[f["RA"]]
    return _u(base + m.gpr[f["RB"]])


def _ea_d_update(m: GoldenMachine, f) -> int:
    return _u(m.gpr[f["RA"]] + _sext(f["D"], 16))


def _ea_ds_update(m: GoldenMachine, f) -> int:
    return _u(m.gpr[f["RA"]] + _sext(f["DS"] << 2, 16))


def _ea_x_update(m: GoldenMachine, f) -> int:
    return _u(m.gpr[f["RA"]] + m.gpr[f["RB"]])


def _register_load(name: str, ea, size: int, signed: bool, update: bool):
    @handler(name)
    def _load(m: GoldenMachine, f):
        addr = ea(m, f)
        value = m.load(addr, size)
        if signed:
            value = _u(_sext(value, 8 * size))
        m.gpr[f["RT"]] = value
        if update:
            m.gpr[f["RA"]] = addr
        return None

    return _load


def _register_store(name: str, ea, size: int, update: bool):
    @handler(name)
    def _store(m: GoldenMachine, f):
        addr = ea(m, f)
        m.store(addr, size, _u(m.gpr[f["RS"]], 8 * size))
        if update:
            m.gpr[f["RA"]] = addr
        return None

    return _store


for _name, _ea, _size, _signed, _update in [
    ("Lbz", _ea_d, 1, False, False),
    ("Lbzu", _ea_d_update, 1, False, True),
    ("Lhz", _ea_d, 2, False, False),
    ("Lhzu", _ea_d_update, 2, False, True),
    ("Lha", _ea_d, 2, True, False),
    ("Lhau", _ea_d_update, 2, True, True),
    ("Lwz", _ea_d, 4, False, False),
    ("Lwzu", _ea_d_update, 4, False, True),
    ("Ld", _ea_ds, 8, False, False),
    ("Ldu", _ea_ds_update, 8, False, True),
    ("Lwa", _ea_ds, 4, True, False),
    ("Lbzx", _ea_x, 1, False, False),
    ("Lbzux", _ea_x_update, 1, False, True),
    ("Lhzx", _ea_x, 2, False, False),
    ("Lhzux", _ea_x_update, 2, False, True),
    ("Lhax", _ea_x, 2, True, False),
    ("Lhaux", _ea_x_update, 2, True, True),
    ("Lwzx", _ea_x, 4, False, False),
    ("Lwzux", _ea_x_update, 4, False, True),
    ("Lwax", _ea_x, 4, True, False),
    ("Lwaux", _ea_x_update, 4, True, True),
    ("Ldx", _ea_x, 8, False, False),
    ("Ldux", _ea_x_update, 8, False, True),
]:
    _register_load(_name, _ea, _size, _signed, _update)

for _name, _ea, _size, _update in [
    ("Stb", _ea_d, 1, False),
    ("Stbu", _ea_d_update, 1, True),
    ("Sth", _ea_d, 2, False),
    ("Sthu", _ea_d_update, 2, True),
    ("Stw", _ea_d, 4, False),
    ("Stwu", _ea_d_update, 4, True),
    ("Std", _ea_ds, 8, False),
    ("Stdu", _ea_ds_update, 8, True),
    ("Stbx", _ea_x, 1, False),
    ("Stbux", _ea_x_update, 1, True),
    ("Sthx", _ea_x, 2, False),
    ("Sthux", _ea_x_update, 2, True),
    ("Stwx", _ea_x, 4, False),
    ("Stwux", _ea_x_update, 4, True),
    ("Stdx", _ea_x, 8, False),
    ("Stdux", _ea_x_update, 8, True),
]:
    _register_store(_name, _ea, _size, _update)


def _register_brx_load(name: str, size: int):
    @handler(name)
    def _load(m: GoldenMachine, f):
        value = m.load(_ea_x(m, f), size)
        data = value.to_bytes(size, "big")
        m.gpr[f["RT"]] = int.from_bytes(data, "little")
        return None

    return _load


def _register_brx_store(name: str, size: int):
    @handler(name)
    def _store(m: GoldenMachine, f):
        data = _u(m.gpr[f["RS"]], 8 * size).to_bytes(size, "big")
        m.store(_ea_x(m, f), size, int.from_bytes(data, "little"))
        return None

    return _store


for _name, _size in [("Lhbrx", 2), ("Lwbrx", 4), ("Ldbrx", 8)]:
    _register_brx_load(_name, _size)
for _name, _size in [("Sthbrx", 2), ("Stwbrx", 4), ("Stdbrx", 8)]:
    _register_brx_store(_name, _size)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------


@handler("Addi")
def _addi(m: GoldenMachine, f):
    base = 0 if f["RA"] == 0 else m.gpr[f["RA"]]
    m.gpr[f["RT"]] = _u(base + _sext(f["SI"], 16))


@handler("Addis")
def _addis(m: GoldenMachine, f):
    base = 0 if f["RA"] == 0 else m.gpr[f["RA"]]
    m.gpr[f["RT"]] = _u(base + (_sext(f["SI"], 16) << 16))


@handler("Addic")
def _addic(m: GoldenMachine, f):
    a = m.gpr[f["RA"]]
    total = a + _u(_sext(f["SI"], 16))
    m.gpr[f["RT"]] = _u(total)
    m.ca = total >> 64 & 1


@handler("AddicRecord")
def _addic_record(m: GoldenMachine, f):
    _addic(m, f)
    m.record(m.gpr[f["RT"]])


@handler("Subfic")
def _subfic(m: GoldenMachine, f):
    a = m.gpr[f["RA"]]
    total = _u(~a) + _u(_sext(f["SI"], 16)) + 1
    m.gpr[f["RT"]] = _u(total)
    m.ca = total >> 64 & 1


@handler("Mulli")
def _mulli(m: GoldenMachine, f):
    m.gpr[f["RT"]] = _u(_sext(m.gpr[f["RA"]], 64) * _sext(f["SI"], 16))


def _signed_add_overflow(a: int, b: int, r: int) -> int:
    """Overflow of a 64-bit a+b(+carry) given the 64-bit truncated result."""
    sa, sb, sr = (a >> 63) & 1, (b >> 63) & 1, (r >> 63) & 1
    return 1 if (sa == sb and sr != sa) else 0


def _register_addsub(name: str, transform_a, addend_b, carry_in):
    """Shared implementation of the XO-form add/subtract family."""

    @handler(name)
    def _op(m: GoldenMachine, f):
        a = transform_a(m.gpr[f["RA"]])
        b = addend_b(m, f)
        cin = carry_in(m)
        total = a + b + cin
        r = _u(total)
        m.gpr[f["RT"]] = r
        if name not in ("Add", "Subf", "Neg"):
            m.ca = (total >> 64) & 1
        if f.get("OE"):
            m.set_ov(_signed_add_overflow(a, b, r))
        if f.get("Rc"):
            m.record(r)
        return None

    return _op


_register_addsub("Add", lambda a: a, lambda m, f: m.gpr[f["RB"]], lambda m: 0)
_register_addsub("Subf", lambda a: _u(~a), lambda m, f: m.gpr[f["RB"]], lambda m: 1)
_register_addsub("Addc", lambda a: a, lambda m, f: m.gpr[f["RB"]], lambda m: 0)
_register_addsub("Subfc", lambda a: _u(~a), lambda m, f: m.gpr[f["RB"]], lambda m: 1)
_register_addsub("Adde", lambda a: a, lambda m, f: m.gpr[f["RB"]], lambda m: m.ca)
_register_addsub("Subfe", lambda a: _u(~a), lambda m, f: m.gpr[f["RB"]], lambda m: m.ca)
_register_addsub("Addme", lambda a: a, lambda m, f: MASK64, lambda m: m.ca)
_register_addsub("Subfme", lambda a: _u(~a), lambda m, f: MASK64, lambda m: m.ca)
_register_addsub("Addze", lambda a: a, lambda m, f: 0, lambda m: m.ca)
_register_addsub("Subfze", lambda a: _u(~a), lambda m, f: 0, lambda m: m.ca)
_register_addsub("Neg", lambda a: _u(~a), lambda m, f: 0, lambda m: 1)


@handler("Mullw")
def _mullw(m: GoldenMachine, f):
    prod = _sext(m.gpr[f["RA"]], 32) * _sext(m.gpr[f["RB"]], 32)
    r = _u(prod)
    m.gpr[f["RT"]] = r
    if f.get("OE"):
        m.set_ov(0 if prod == _sext(r & MASK32, 32) else 1)
    if f.get("Rc"):
        m.record(r)


@handler("Mulld")
def _mulld(m: GoldenMachine, f):
    prod = _sext(m.gpr[f["RA"]], 64) * _sext(m.gpr[f["RB"]], 64)
    r = _u(prod)
    m.gpr[f["RT"]] = r
    if f.get("OE"):
        m.set_ov(0 if prod == _sext(r, 64) else 1)
    if f.get("Rc"):
        m.record(r)


def _register_mulh(name: str, signed: bool, word: bool):
    @handler(name)
    def _op(m: GoldenMachine, f):
        if word:
            a = _sext(m.gpr[f["RA"]], 32) if signed else m.gpr[f["RA"]] & MASK32
            b = _sext(m.gpr[f["RB"]], 32) if signed else m.gpr[f["RB"]] & MASK32
            high = (_u(a * b, 64) >> 32) & MASK32
            m.gpr[f["RT"]] = (UNDEF_FILL32 << 32) | high
        else:
            a = _sext(m.gpr[f["RA"]], 64) if signed else m.gpr[f["RA"]]
            b = _sext(m.gpr[f["RB"]], 64) if signed else m.gpr[f["RB"]]
            m.gpr[f["RT"]] = (_u(a * b, 128) >> 64) & MASK64
        if f.get("Rc"):
            if word:
                m.record_undefined()
            else:
                m.record(m.gpr[f["RT"]])
        return None

    return _op


_register_mulh("Mulhw", True, True)
_register_mulh("Mulhwu", False, True)
_register_mulh("Mulhd", True, False)
_register_mulh("Mulhdu", False, False)


def _register_div(name: str, signed: bool, word: bool):
    @handler(name)
    def _op(m: GoldenMachine, f):
        width = 32 if word else 64
        mask = (1 << width) - 1
        a_raw = m.gpr[f["RA"]] & mask
        b_raw = m.gpr[f["RB"]] & mask
        a = _sext(a_raw, width) if signed else a_raw
        b = _sext(b_raw, width) if signed else b_raw
        bad = b == 0 or (
            signed and a == -(1 << (width - 1)) and b == -1
        )
        if bad:
            quotient = UNDEF_FILL64 & mask
        else:
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            quotient = q & mask
        if word:
            m.gpr[f["RT"]] = (UNDEF_FILL32 << 32) | quotient
        else:
            m.gpr[f["RT"]] = quotient
        if f.get("OE"):
            m.set_ov(1 if bad else 0)
        if f.get("Rc"):
            if bad or word:
                m.record_undefined()
            else:
                m.record(m.gpr[f["RT"]])
        return None

    return _op


_register_div("Divw", True, True)
_register_div("Divwu", False, True)
_register_div("Divd", True, False)
_register_div("Divdu", False, False)


# ----------------------------------------------------------------------
# Compare
# ----------------------------------------------------------------------


def _compare(m: GoldenMachine, bf: int, a: int, b: int) -> None:
    flags = 0b100 if a < b else (0b010 if a > b else 0b001)
    m.set_cr_field(bf, (flags << 1) | m.so)


@handler("Cmp")
def _cmp(m: GoldenMachine, f):
    width = 64 if f["L"] else 32
    _compare(
        m,
        f["BF"],
        _sext(m.gpr[f["RA"]], width),
        _sext(m.gpr[f["RB"]], width),
    )


@handler("Cmpl")
def _cmpl(m: GoldenMachine, f):
    mask = MASK64 if f["L"] else MASK32
    _compare(m, f["BF"], m.gpr[f["RA"]] & mask, m.gpr[f["RB"]] & mask)


@handler("Cmpi")
def _cmpi(m: GoldenMachine, f):
    width = 64 if f["L"] else 32
    _compare(m, f["BF"], _sext(m.gpr[f["RA"]], width), _sext(f["SI"], 16))


@handler("Cmpli")
def _cmpli(m: GoldenMachine, f):
    mask = MASK64 if f["L"] else MASK32
    _compare(m, f["BF"], m.gpr[f["RA"]] & mask, f["UI"])


# ----------------------------------------------------------------------
# Logical
# ----------------------------------------------------------------------


def _register_dlogical(name: str, op, shifted: bool, record: bool):
    @handler(name)
    def _imm(m: GoldenMachine, f):
        imm = f["UI"] << 16 if shifted else f["UI"]
        r = _u(op(m.gpr[f["RS"]], imm))
        m.gpr[f["RA"]] = r
        if record:
            m.record(r)
        return None

    return _imm


_register_dlogical("AndiRecord", lambda a, b: a & b, False, True)
_register_dlogical("AndisRecord", lambda a, b: a & b, True, True)
_register_dlogical("Ori", lambda a, b: a | b, False, False)
_register_dlogical("Oris", lambda a, b: a | b, True, False)
_register_dlogical("Xori", lambda a, b: a ^ b, False, False)
_register_dlogical("Xoris", lambda a, b: a ^ b, True, False)


def _register_xlogical(name: str, op):
    @handler(name)
    def _op(m: GoldenMachine, f):
        r = _u(op(m.gpr[f["RS"]], m.gpr[f["RB"]]))
        m.gpr[f["RA"]] = r
        if f.get("Rc"):
            m.record(r)
        return None

    return _op


_register_xlogical("And", lambda a, b: a & b)
_register_xlogical("Or", lambda a, b: a | b)
_register_xlogical("Xor", lambda a, b: a ^ b)
_register_xlogical("Nand", lambda a, b: ~(a & b))
_register_xlogical("Nor", lambda a, b: ~(a | b))
_register_xlogical("Eqv", lambda a, b: ~(a ^ b))
_register_xlogical("Andc", lambda a, b: a & ~b)
_register_xlogical("Orc", lambda a, b: a | ~b)


def _register_xunary(name: str, op):
    @handler(name)
    def _op(m: GoldenMachine, f):
        r = _u(op(m.gpr[f["RS"]]))
        m.gpr[f["RA"]] = r
        if f.get("Rc"):
            m.record(r)
        return None

    return _op


def _clz(value: int, width: int) -> int:
    for i in range(width):
        if (value >> (width - 1 - i)) & 1:
            return i
    return width


_register_xunary("Extsb", lambda s: _sext(s, 8))
_register_xunary("Extsh", lambda s: _sext(s, 16))
_register_xunary("Extsw", lambda s: _sext(s, 32))
_register_xunary("Cntlzw", lambda s: _clz(s & MASK32, 32))
_register_xunary("Cntlzd", lambda s: _clz(s, 64))


@handler("Popcntb")
def _popcntb(m: GoldenMachine, f):
    s = m.gpr[f["RS"]]
    r = 0
    for i in range(8):
        byte = (s >> (8 * i)) & 0xFF
        r |= bin(byte).count("1") << (8 * i)
    m.gpr[f["RA"]] = r


# ----------------------------------------------------------------------
# Rotates and shifts
# ----------------------------------------------------------------------


def _rot_word(m: GoldenMachine, f, amount: int) -> int:
    s = m.gpr[f["RS"]] & MASK32
    doubled = (s << 32) | s
    return _rotl(doubled, amount, 64)


@handler("Rlwinm")
def _rlwinm(m: GoldenMachine, f):
    r = _rot_word(m, f, f["SH"]) & _mask(f["MB"] + 32, f["ME"] + 32)
    m.gpr[f["RA"]] = r
    if f.get("Rc"):
        m.record(r)


@handler("Rlwnm")
def _rlwnm(m: GoldenMachine, f):
    amount = m.gpr[f["RB"]] & 0x1F
    r = _rot_word(m, f, amount) & _mask(f["MB"] + 32, f["ME"] + 32)
    m.gpr[f["RA"]] = r
    if f.get("Rc"):
        m.record(r)


@handler("Rlwimi")
def _rlwimi(m: GoldenMachine, f):
    mask = _mask(f["MB"] + 32, f["ME"] + 32)
    r = (_rot_word(m, f, f["SH"]) & mask) | (m.gpr[f["RA"]] & ~mask & MASK64)
    m.gpr[f["RA"]] = r
    if f.get("Rc"):
        m.record(r)


def _md_sh(f) -> int:
    return (f["SHH"] << 5) | f["SHL"]


def _md_mb(f) -> int:
    return ((f["MBE"] & 1) << 5) | (f["MBE"] >> 1)


def _register_rld(name: str, mask_of, insert: bool, reg_amount: bool):
    @handler(name)
    def _op(m: GoldenMachine, f):
        amount = (m.gpr[f["RB"]] & 0x3F) if reg_amount else _md_sh(f)
        rotated = _rotl(m.gpr[f["RS"]], amount, 64)
        mask = mask_of(f, amount)
        if insert:
            r = (rotated & mask) | (m.gpr[f["RA"]] & ~mask & MASK64)
        else:
            r = rotated & mask
        m.gpr[f["RA"]] = r
        if f.get("Rc"):
            m.record(r)
        return None

    return _op


_register_rld("Rldicl", lambda f, n: _mask(_md_mb(f), 63), False, False)
_register_rld("Rldicr", lambda f, n: _mask(0, _md_mb(f)), False, False)
_register_rld("Rldic", lambda f, n: _mask(_md_mb(f), 63 - n), False, False)
_register_rld("Rldimi", lambda f, n: _mask(_md_mb(f), 63 - n), True, False)
_register_rld("Rldcl", lambda f, n: _mask(_md_mb(f), 63), False, True)
_register_rld("Rldcr", lambda f, n: _mask(0, _md_mb(f)), False, True)


@handler("Slw")
def _slw(m: GoldenMachine, f):
    rb = m.gpr[f["RB"]]
    if (rb >> 5) & 1:
        r = 0
    else:
        r = (m.gpr[f["RS"]] & MASK32) << (rb & 0x1F) & MASK32
    m.gpr[f["RA"]] = r
    if f.get("Rc"):
        m.record(r)


@handler("Srw")
def _srw(m: GoldenMachine, f):
    rb = m.gpr[f["RB"]]
    if (rb >> 5) & 1:
        r = 0
    else:
        r = (m.gpr[f["RS"]] & MASK32) >> (rb & 0x1F)
    m.gpr[f["RA"]] = r
    if f.get("Rc"):
        m.record(r)


def _sraw_common(m: GoldenMachine, f, amount: int, deep: bool) -> None:
    s = _sext(m.gpr[f["RS"]], 32)
    if deep:
        r = -1 if s < 0 else 0
        lost = s < 0
    else:
        r = s >> amount
        lost = s < 0 and (s & ((1 << amount) - 1)) != 0
    m.gpr[f["RA"]] = _u(r)
    m.ca = 1 if lost else 0
    if f.get("Rc"):
        m.record(_u(r))


@handler("Sraw")
def _sraw(m: GoldenMachine, f):
    rb = m.gpr[f["RB"]]
    _sraw_common(m, f, rb & 0x1F, bool((rb >> 5) & 1))


@handler("Srawi")
def _srawi(m: GoldenMachine, f):
    _sraw_common(m, f, f["SH"], False)


@handler("Sld")
def _sld(m: GoldenMachine, f):
    rb = m.gpr[f["RB"]]
    r = 0 if (rb >> 6) & 1 else _u(m.gpr[f["RS"]] << (rb & 0x3F))
    m.gpr[f["RA"]] = r
    if f.get("Rc"):
        m.record(r)


@handler("Srd")
def _srd(m: GoldenMachine, f):
    rb = m.gpr[f["RB"]]
    r = 0 if (rb >> 6) & 1 else m.gpr[f["RS"]] >> (rb & 0x3F)
    m.gpr[f["RA"]] = r
    if f.get("Rc"):
        m.record(r)


def _srad_common(m: GoldenMachine, f, amount: int, deep: bool) -> None:
    s = _sext(m.gpr[f["RS"]], 64)
    if deep:
        r = -1 if s < 0 else 0
        lost = s < 0
    else:
        r = s >> amount
        lost = s < 0 and (s & ((1 << amount) - 1)) != 0
    m.gpr[f["RA"]] = _u(r)
    m.ca = 1 if lost else 0
    if f.get("Rc"):
        m.record(_u(r))


@handler("Srad")
def _srad(m: GoldenMachine, f):
    rb = m.gpr[f["RB"]]
    _srad_common(m, f, rb & 0x3F, bool((rb >> 6) & 1))


@handler("Sradi")
def _sradi(m: GoldenMachine, f):
    _srad_common(m, f, _md_sh(f), False)


# ----------------------------------------------------------------------
# CR logical and moves
# ----------------------------------------------------------------------


def _register_crop(name: str, op):
    @handler(name)
    def _cr(m: GoldenMachine, f):
        a = m.cr_bit(f["BA"] + 32)
        b = m.cr_bit(f["BB"] + 32)
        m.set_cr_bit(f["BT"] + 32, op(a, b) & 1)
        return None

    return _cr


_register_crop("Crand", lambda a, b: a & b)
_register_crop("Cror", lambda a, b: a | b)
_register_crop("Crxor", lambda a, b: a ^ b)
_register_crop("Crnand", lambda a, b: ~(a & b))
_register_crop("Crnor", lambda a, b: ~(a | b))
_register_crop("Creqv", lambda a, b: ~(a ^ b))
_register_crop("Crandc", lambda a, b: a & (~b & 1))
_register_crop("Crorc", lambda a, b: a | (~b & 1))


@handler("Mcrf")
def _mcrf(m: GoldenMachine, f):
    m.set_cr_field(f["BF"], m.cr_field(f["BFA"]))


def _spr_number(raw: int) -> int:
    return ((raw & 0x1F) << 5) | (raw >> 5)


@handler("Mtspr")
def _mtspr(m: GoldenMachine, f):
    n = _spr_number(f["SPR"])
    value = m.gpr[f["RS"]]
    if n == 1:
        m.xer = value & MASK32
    elif n == 8:
        m.lr = value
    elif n == 9:
        m.ctr = value
    else:
        raise GoldenError(f"mtspr to unsupported SPR {n}")


@handler("Mfspr")
def _mfspr(m: GoldenMachine, f):
    n = _spr_number(f["SPR"])
    if n == 1:
        m.gpr[f["RT"]] = m.xer
    elif n == 8:
        m.gpr[f["RT"]] = m.lr
    elif n == 9:
        m.gpr[f["RT"]] = m.ctr
    else:
        raise GoldenError(f"mfspr from unsupported SPR {n}")


@handler("Mtcrf")
def _mtcrf(m: GoldenMachine, f):
    value = m.gpr[f["RS"]] & MASK32
    for i in range(8):
        if (f["FXM"] >> (7 - i)) & 1:
            shift = 4 * (7 - i)
            m.set_cr_field(i, (value >> shift) & 0xF)


HANDLERS["Mtocrf"] = HANDLERS["Mtcrf"]


@handler("Mfcr")
def _mfcr(m: GoldenMachine, f):
    m.gpr[f["RT"]] = m.cr


@handler("Mfocrf")
def _mfocrf(m: GoldenMachine, f):
    r = UNDEF_FILL64
    for i in range(8):
        if (f["FXM"] >> (7 - i)) & 1:
            shift = 4 * (7 - i)
            r &= ~(0xF << shift)
            r |= m.cr_field(i) << shift
    m.gpr[f["RT"]] = r


# ----------------------------------------------------------------------
# Barriers and atomics (sequential semantics)
# ----------------------------------------------------------------------


@handler("Sync")
def _sync(m: GoldenMachine, f):
    return None


@handler("Eieio")
def _eieio(m: GoldenMachine, f):
    return None


@handler("Isync")
def _isync(m: GoldenMachine, f):
    return None


@handler("Lwarx")
def _lwarx(m: GoldenMachine, f):
    addr = _ea_x(m, f)
    m.reservation = addr
    m.gpr[f["RT"]] = m.load(addr, 4)


@handler("Ldarx")
def _ldarx(m: GoldenMachine, f):
    addr = _ea_x(m, f)
    m.reservation = addr
    m.gpr[f["RT"]] = m.load(addr, 8)


@handler("StwcxRecord")
def _stwcx(m: GoldenMachine, f):
    success = m.reservation is not None
    if success:
        m.store(_ea_x(m, f), 4, m.gpr[f["RS"]] & MASK32)
    m.reservation = None
    m.set_cr_field(0, ((1 if success else 0) << 1) | m.so)


@handler("StdcxRecord")
def _stdcx(m: GoldenMachine, f):
    success = m.reservation is not None
    if success:
        m.store(_ea_x(m, f), 8, m.gpr[f["RS"]])
    m.reservation = None
    m.set_cr_field(0, ((1 if success else 0) << 1) | m.so)
