"""The operational concurrency model (sections 2 and 5 of the paper)."""

from .events import BarrierEvent, BarrierId, Write, WriteId
from .exhaustive import ExplorationLimit, ExplorationResult, explore, run_one
from .params import DEFAULT_PARAMS, ModelParams
from .storage import CoherenceViolation, StorageSubsystem
from .system import SystemState, Transition
from .thread import InstructionInstance, ModelError, ThreadState

__all__ = [
    "BarrierEvent",
    "BarrierId",
    "CoherenceViolation",
    "DEFAULT_PARAMS",
    "ExplorationLimit",
    "ExplorationResult",
    "InstructionInstance",
    "ModelError",
    "ModelParams",
    "StorageSubsystem",
    "SystemState",
    "ThreadState",
    "Transition",
    "Write",
    "WriteId",
    "explore",
    "run_one",
]
