#!/usr/bin/env python3
"""Scripted interactive exploration: watching speculation happen.

Reproduces the paper's Fig. 3 experience programmatically: build the
MP+sync+ctrl system, walk one specific path -- satisfying the reader's
second load *speculatively* before the branch's condition is known -- and
print the system state at each step.

Run:  python examples/interactive_exploration.py
"""

from repro import default_model
from repro.litmus.library import by_name
from repro.litmus.runner import build_system


def pick(transitions, phrase):
    for transition in transitions:
        if phrase in str(transition):
            return transition
    return None


def main() -> None:
    print(__doc__)
    model = default_model()
    test = by_name("MP+sync+ctrl").parse()
    system, addresses = build_system(test, model)
    print(f"variables: " + ", ".join(
        f"{name}@0x{addr:x}" for name, addr in sorted(addresses.items())
    ))

    print("\n--- initial state (after the eager closure) ---")
    print(system.render())

    # Step 1: the reader's load of x satisfies SPECULATIVELY, before the
    # load of y and before the branch resolves (section 2.1.1).
    transitions = system.enumerate_transitions()
    print("\nenabled transitions:")
    for transition in transitions:
        print(f"  {transition}")
    speculative = pick(transitions, "satisfy read x")
    assert speculative is not None, "speculative read of x must be enabled"
    print(f"\n>>> taking: {speculative}")
    system = system.apply(speculative)

    # Step 2..n: drive the writer: commit x=1, the sync, then y=1, and
    # propagate everything so the reader can see the flag.
    script = [
        "commit store",          # x=1
        "commit sync barrier",   # sync
        "propagate W 0x",        # x=1 to the reader
        "propagate B(sync)",     # sync to the reader
        "commit store",          # y=1 (after the sync acknowledges eagerly)
        "propagate W 0x",        # y=1 to the reader
        "satisfy read y",        # the reader finally reads the flag = 1
    ]
    for phrase in script:
        transitions = system.enumerate_transitions()
        transition = pick(transitions, phrase)
        if transition is None:
            continue
        print(f">>> taking: {transition}")
        system = system.apply(transition)

    print("\n--- state after the guided path ---")
    print(system.render())

    # Finish everything that remains.
    for _ in range(200):
        if system.is_final():
            break
        transitions = system.enumerate_transitions()
        if not transitions:
            break
        system = system.apply(transitions[0])

    assert system.is_final()
    r5 = system.threads[1].final_register_value(model, "GPR5")
    r4 = system.threads[1].final_register_value(model, "GPR4")
    print(f"\nfinal reader registers: r5(y)={r5.to_int()} r4(x)={r4.to_int()}")
    if (r5.to_int(), r4.to_int()) == (1, 0):
        print("the famous MP+sync+ctrl relaxed outcome, step by step:")
        print("the load of x was satisfied while the branch was speculative.")


if __name__ == "__main__":
    main()
