"""Litmus-test front-end: parser, corpus, and the exhaustive runner."""

from .library import CorpusEntry, by_name, corpus, families
from .parser import LitmusSyntaxError, parse_litmus
from .runner import LitmusResult, build_system, run_litmus
from .test import LitmusTest, evaluate_condition

__all__ = [
    "CorpusEntry",
    "LitmusResult",
    "LitmusSyntaxError",
    "LitmusTest",
    "build_system",
    "by_name",
    "corpus",
    "evaluate_condition",
    "families",
    "parse_litmus",
    "run_litmus",
]
